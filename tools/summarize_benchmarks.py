"""Summarise a pytest-benchmark JSON export into the EXPERIMENTS.md tables.

Usage::

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
    python tools/summarize_benchmarks.py bench.json

Groups benchmarks by experiment module (bench_<name>.py), prints one
markdown table per experiment with the mean time and the qualitative
extra_info each benchmark recorded (order, counts, cover degrees, game
rounds, ...), so the EXPERIMENTS.md narrative can be regenerated from a
fresh run.
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict
from pathlib import Path
from typing import Dict, List


def format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.2f} s"


def summarise(data: Dict) -> str:
    groups: Dict[str, List[Dict]] = defaultdict(list)
    for bench in data.get("benchmarks", []):
        module = bench["fullname"].split("::")[0]
        module = Path(module).stem.replace("bench_", "")
        groups[module].append(bench)

    lines: List[str] = []
    for module in sorted(groups):
        lines.append(f"\n## {module}\n")
        extra_keys: List[str] = []
        for bench in groups[module]:
            for key in bench.get("extra_info", {}):
                if key not in extra_keys:
                    extra_keys.append(key)
        header = ["benchmark", "mean"] + extra_keys
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for bench in sorted(groups[module], key=lambda b: b["fullname"]):
            name = bench["fullname"].split("::")[-1]
            row = [name, format_seconds(bench["stats"]["mean"])]
            info = bench.get("extra_info", {})
            for key in extra_keys:
                row.append(str(info.get(key, "")))
            lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def main(argv: List[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    path = Path(argv[1])
    if not path.exists():
        print(f"no such file: {path}", file=sys.stderr)
        return 2
    data = json.loads(path.read_text())
    print(summarise(data))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
