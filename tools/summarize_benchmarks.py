"""Summarise a pytest-benchmark JSON export into the EXPERIMENTS.md tables.

Usage::

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
    python tools/summarize_benchmarks.py bench.json

Groups benchmarks by experiment module (bench_<name>.py), prints one
markdown table per experiment with the mean time and the qualitative
extra_info each benchmark recorded (order, counts, cover degrees, game
rounds, ...), so the EXPERIMENTS.md narrative can be regenerated from a
fresh run.
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict
from pathlib import Path
from typing import Dict, List


def format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.2f} s"


def service_table(service: Dict) -> List[str]:
    """Render a ``service`` load-test section (``repro-load/1`` payloads,
    as embedded into ``BENCH_pr10.json`` by ``tools/bench_runner.py``)
    as one markdown table: a row per tenant-mix scenario."""
    scenarios = service.get("scenarios") or []
    lines = ["\n## service (multi-tenant load)\n"]
    if not scenarios:
        lines.append("(no load scenarios recorded)")
        return lines
    header = [
        "mix",
        "offered",
        "completed",
        "shed",
        "shed rate",
        "killed",
        "resumes",
        "degraded",
        "p50",
        "p99",
        "throughput",
    ]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    for row in scenarios:
        shed = sum((row.get("shed") or {}).values())
        p50 = row.get("latency_p50_s")
        p99 = row.get("latency_p99_s")
        rps = row.get("throughput_rps")
        lines.append(
            "| "
            + " | ".join(
                [
                    str(row.get("mix", "?")),
                    str(row.get("offered", "")),
                    str(row.get("completed", "")),
                    str(shed),
                    f"{row.get('shed_rate', 0.0):.0%}",
                    str(row.get("killed", "")),
                    str(row.get("resumes", "")),
                    str(row.get("degraded", "")),
                    format_seconds(p50) if p50 is not None else "n/a",
                    format_seconds(p99) if p99 is not None else "n/a",
                    f"{rps:.0f} rps" if rps is not None else "n/a",
                ]
            )
            + " |"
        )
    totals = service.get("totals") or {}
    if totals:
        lines.append(
            f"\ntotals: {totals.get('completed', 0)} completed of "
            f"{totals.get('offered', 0)} offered, "
            f"{totals.get('shed', 0)} shed (typed), "
            f"{totals.get('killed', 0)} killed, answers_ok="
            f"{totals.get('answers_ok')}"
        )
    return lines


def summarise(data: Dict) -> str:
    groups: Dict[str, List[Dict]] = defaultdict(list)
    for bench in data.get("benchmarks", []):
        if "fullname" not in bench:
            continue  # condensed repro-bench entries: no per-test tables
        module = bench["fullname"].split("::")[0]
        module = Path(module).stem.replace("bench_", "")
        groups[module].append(bench)

    lines: List[str] = []
    for module in sorted(groups):
        lines.append(f"\n## {module}\n")
        extra_keys: List[str] = []
        for bench in groups[module]:
            for key in bench.get("extra_info", {}):
                if key not in extra_keys:
                    extra_keys.append(key)
        header = ["benchmark", "mean"] + extra_keys
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for bench in sorted(groups[module], key=lambda b: b["fullname"]):
            name = bench["fullname"].split("::")[-1]
            row = [name, format_seconds(bench["stats"]["mean"])]
            info = bench.get("extra_info", {})
            for key in extra_keys:
                row.append(str(info.get(key, "")))
            lines.append("| " + " | ".join(row) + " |")
    if isinstance(data.get("service"), dict):
        lines.extend(service_table(data["service"]))
    return "\n".join(lines)


def main(argv: List[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    path = Path(argv[1])
    if not path.exists():
        print(f"no such file: {path}", file=sys.stderr)
        return 2
    data = json.loads(path.read_text())
    print(summarise(data))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
