"""Load-test harness for the multi-tenant query service (ISSUE 10).

Drives :class:`repro.serve.QueryService` with seeded synthetic tenant
mixes at an offered load beyond saturation, then verifies the service's
overload contract:

* every rejection is a typed :class:`~repro.errors.AdmissionError`
  (counted per reason) — nothing is silently dropped;
* **zero admitted queries are killed**: each one completes, or is
  handed back as a ``suspended`` response with its checkpoint during a
  bounded drain;
* every completed exact answer is **byte-identical** to an unloaded
  serial run (expected values are precomputed with
  :class:`~repro.core.evaluator.Foc1Evaluator`);
* degraded answers (when a scenario enables degradation) always carry
  ``approximate=true``.

Three tenant mixes ship by default (``uniform``, ``zipf``, ``hot``) —
a flat mix, a zipf-skewed heavy-hitter mix, and a hot-query mix where
every tenant hammers one formula (exercising ``count_many`` batching).
All randomness flows through seeded :class:`random.Random` instances,
so a run is reproducible from its ``--seed``.

Usage::

    python tools/load_runner.py --quick --output LOAD.json
    python tools/load_runner.py --shed-bounds 0.05,0.95   # CI gate

Exit code 1 when any scenario kills a query, mismatches an expected
answer, or (with ``--shed-bounds``) sheds outside the given band.
The report's ``service`` payload is embedded into ``BENCH_pr10.json``
by ``tools/bench_runner.py``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.evaluator import Foc1Evaluator  # noqa: E402
from repro.errors import AdmissionError  # noqa: E402
from repro.logic.parser import parse_formula, parse_term  # noqa: E402
from repro.serve import (  # noqa: E402
    QueryRequest,
    QueryService,
    TenantQuota,
)
from repro.structures.builders import graph_structure  # noqa: E402

SCHEMA_NAME = "repro-load/1"

#: The query catalogue: (operation, text, variables/variable).
QUERIES = (
    ("count", "E(x, y) & E(y, z)", ("x", "y", "z"), ""),
    ("count", "E(x, y)", ("x", "y"), ""),
    ("check", "forall x. @geq1(#(y). E(x, y))", (), ""),
    ("unary", "#(y). E(x, y)", (), "x"),
    ("term", "#(x, y). E(x, y)", (), ""),
)


def _random_graph(rng: random.Random, max_n: int = 10):
    n = rng.randint(4, max_n)
    vertices = list(range(1, n + 1))
    pairs = [(u, v) for u in vertices for v in vertices if u < v]
    edges = [pair for pair in pairs if rng.random() < 0.35]
    return graph_structure(vertices, edges)


def _zipf_index(rng: random.Random, n: int, alpha: float = 1.2) -> int:
    """A seeded zipf-ish draw in [0, n) via inverse CDF over 1/(k+1)^a."""
    weights = [1.0 / (k + 1) ** alpha for k in range(n)]
    total = sum(weights)
    point = rng.random() * total
    acc = 0.0
    for k, weight in enumerate(weights):
        acc += weight
        if point <= acc:
            return k
    return n - 1


def _expected_value(structure, operation: str, text: str, variables, variable):
    engine = Foc1Evaluator()
    if operation == "check":
        return engine.model_check(structure, parse_formula(text))
    if operation == "count":
        return engine.count(structure, parse_formula(text), list(variables))
    if operation == "term":
        return engine.ground_term_value(structure, parse_term(text))
    return dict(engine.unary_term_values(structure, parse_term(text), variable))


def build_workload(
    mix: str,
    seed: int,
    clients: int,
    rounds: int,
    tenants: int,
    structures: int,
) -> Tuple[List[QueryRequest], Dict[str, object]]:
    """Generate the scenario's requests plus an expected-answer table.

    Returns ``(requests, expected)`` where ``expected`` maps request_id
    to the serially computed exact answer.
    """
    rng = random.Random(seed)
    pool = [_random_graph(rng) for _ in range(structures)]
    expected_cache: Dict[Tuple[int, int], object] = {}
    requests: List[QueryRequest] = []
    expected: Dict[str, object] = {}
    for client in range(clients):
        for round_no in range(rounds):
            if mix == "uniform":
                tenant = f"t{rng.randrange(tenants)}"
                query_index = rng.randrange(len(QUERIES))
            elif mix == "zipf":
                tenant = f"t{_zipf_index(rng, tenants)}"
                query_index = _zipf_index(rng, len(QUERIES))
            elif mix == "hot":
                tenant = f"t{rng.randrange(tenants)}"
                query_index = 0  # everyone hammers the join count
            else:
                raise ValueError(f"unknown mix {mix!r}")
            structure_index = rng.randrange(len(pool))
            operation, text, variables, variable = QUERIES[query_index]
            request_id = f"{mix}-{client}-{round_no}"
            requests.append(
                QueryRequest(
                    tenant=tenant,
                    operation=operation,
                    structure=pool[structure_index],
                    expression=text,
                    variables=variables,
                    variable=variable,
                    request_id=request_id,
                    seed=seed,
                )
            )
            cache_key = (structure_index, query_index)
            if cache_key not in expected_cache:
                expected_cache[cache_key] = _expected_value(
                    pool[structure_index], operation, text, variables, variable
                )
            expected[request_id] = expected_cache[cache_key]
    return requests, expected


async def run_scenario(
    mix: str,
    requests: List[QueryRequest],
    expected: Dict[str, object],
    *,
    workers: int,
    clients: int,
    quantum_steps: int,
    quota: TenantQuota,
    degrade_saturation: "Optional[float]" = None,
    degrade_budget_factor: int = 8,
    epsilon: float = 0.1,
    delta: float = 0.05,
    drain_grace: "Optional[int]" = None,
) -> Dict[str, object]:
    """Replay one scenario closed-loop and fold the outcomes into a row."""
    service = QueryService(
        workers=workers,
        quantum_steps=quantum_steps,
        quota=quota,
        degrade_saturation=degrade_saturation,
        degrade_budget_factor=degrade_budget_factor,
        epsilon=epsilon,
        delta=delta,
    )
    results: List[object] = [None] * len(requests)
    cursor = 0

    async def client() -> None:
        # Closed loop with bounded retry: a shed request backs off and
        # retries a few times (deterministic exponential delays) before
        # counting as shed — sustained overload, not one burst.
        nonlocal cursor
        while cursor < len(requests):
            index = cursor
            cursor += 1
            for attempt in range(5):
                try:
                    results[index] = await service.submit(requests[index])
                    break
                except AdmissionError as error:
                    results[index] = error
                    if attempt < 4:
                        await asyncio.sleep(0.002 * (1 << attempt))

    started = time.perf_counter()
    await service.start()
    try:
        await asyncio.gather(
            *(client() for _ in range(min(clients, len(requests))))
        )
    finally:
        await service.drain(grace=drain_grace)
    wall_s = time.perf_counter() - started

    shed: Dict[str, int] = {}
    completed = degraded = suspended = errors = mismatches = 0
    resumes = batched = 0
    for request, outcome in zip(requests, results):
        if isinstance(outcome, AdmissionError):
            shed[outcome.reason] = shed.get(outcome.reason, 0) + 1
            continue
        if outcome is None or isinstance(outcome, Exception):
            errors += 1
            continue
        if outcome.status == "suspended":
            suspended += 1
            if outcome.checkpoint is None:
                errors += 1
            continue
        completed += 1
        resumes += outcome.resumes
        batched += 1 if outcome.batched else 0
        if outcome.approximate:
            degraded += 1
            continue  # estimates are flagged, not compared exactly
        if outcome.value != expected[request.request_id]:
            mismatches += 1
    admitted = len(requests) - sum(shed.values())
    killed = admitted - completed - suspended - errors
    stats = service.stats()
    latencies = sorted(
        outcome.latency_s
        for outcome in results
        if outcome is not None
        and not isinstance(outcome, Exception)
        and outcome.status == "ok"
    )

    def percentile(q: float) -> "Optional[float]":
        if not latencies:
            return None
        index = min(len(latencies) - 1, int(round(q * (len(latencies) - 1))))
        return latencies[index]

    return {
        "mix": mix,
        "offered": len(requests),
        "admitted": admitted,
        "completed": completed,
        "shed": shed,
        "shed_rate": sum(shed.values()) / len(requests) if requests else 0.0,
        "killed": killed,
        "errors": errors,
        "mismatches": mismatches,
        "answers_ok": mismatches == 0,
        "degraded": degraded,
        "drain_suspended": suspended,
        "resumes": resumes,
        "batched": batched,
        "orphaned_checkpoints": stats["orphaned_checkpoints"],
        "wall_s": wall_s,
        "throughput_rps": (completed / wall_s) if wall_s > 0 else None,
        "latency_p50_s": percentile(0.50),
        "latency_p99_s": percentile(0.99),
    }


def run_load(
    *,
    quick: bool,
    seed: int,
    workers: int,
) -> Dict[str, object]:
    """Run every scenario and assemble the ``repro-load/1`` report.

    The offered load is sized to at least 2x the service's concurrency
    (clients >> quantum slots), so the admission controller must shed —
    the point is proving the shedding is typed and the admitted work is
    never killed, not avoiding overload.
    """
    clients = 8 if quick else 32
    rounds = 3 if quick else 8
    tenants = 3 if quick else 5
    structures = 3 if quick else 5
    quantum_steps = 60
    quota = TenantQuota(max_inflight=6, max_queue=4)
    scenarios = []
    for index, mix in enumerate(("uniform", "zipf", "hot")):
        requests, expected = build_workload(
            mix,
            seed + index,
            clients,
            rounds,
            tenants,
            structures,
        )
        row = asyncio.run(
            run_scenario(
                mix,
                requests,
                expected,
                workers=workers,
                clients=clients,
                quantum_steps=quantum_steps,
                quota=quota,
                # The hot mix additionally exercises graceful
                # degradation: saturated count-only requests go to the
                # sampling tier (flagged approximate) instead of
                # queueing behind the exact path.
                degrade_saturation=2.0 if mix == "hot" else None,
                # The quantum is deliberately tiny (to force preemptions),
                # so the sampler's budget needs a large factor on top of
                # it to actually fit an estimate; overload answers are
                # allowed to be crude (that is the degradation trade),
                # so the accuracy target is loose.
                degrade_budget_factor=600 if mix == "hot" else 8,
                epsilon=0.5 if mix == "hot" else 0.1,
                delta=0.2 if mix == "hot" else 0.05,
                drain_grace=None,
            )
        )
        scenarios.append(row)
    totals = {
        "offered": sum(row["offered"] for row in scenarios),
        "admitted": sum(row["admitted"] for row in scenarios),
        "completed": sum(row["completed"] for row in scenarios),
        "shed": sum(sum(row["shed"].values()) for row in scenarios),
        "killed": sum(row["killed"] for row in scenarios),
        "errors": sum(row["errors"] for row in scenarios),
        "mismatches": sum(row["mismatches"] for row in scenarios),
        "degraded": sum(row["degraded"] for row in scenarios),
        "resumes": sum(row["resumes"] for row in scenarios),
        "answers_ok": all(row["answers_ok"] for row in scenarios),
    }
    return {
        "schema": SCHEMA_NAME,
        "quick": quick,
        "seed": seed,
        "workers": workers,
        "clients": clients,
        "quantum_steps": quantum_steps,
        "scenarios": scenarios,
        "totals": totals,
    }


def gate(report: Dict, shed_bounds: "Optional[Tuple[float, float]]") -> List[str]:
    """Return the acceptance failures (empty means the run passed)."""
    failures: List[str] = []
    totals = report["totals"]
    if totals["killed"]:
        failures.append(f"{totals['killed']} admitted quer(y/ies) killed")
    if totals["errors"]:
        failures.append(f"{totals['errors']} request(s) errored")
    if not totals["answers_ok"]:
        failures.append(
            f"{totals['mismatches']} exact answer(s) differ from the "
            "unloaded serial run"
        )
    for row in report["scenarios"]:
        if row["orphaned_checkpoints"]:
            failures.append(
                f"{row['mix']}: {row['orphaned_checkpoints']} orphaned "
                "checkpoint(s) after drain"
            )
    if shed_bounds is not None:
        low, high = shed_bounds
        for row in report["scenarios"]:
            if not (low <= row["shed_rate"] <= high):
                failures.append(
                    f"{row['mix']}: shed rate {row['shed_rate']:.1%} outside "
                    f"[{low:.1%}, {high:.1%}]"
                )
    return failures


def main(argv: "Optional[List[str]]" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Load-test the multi-tenant query service"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller client/round counts (CI smoke scale)",
    )
    parser.add_argument("--seed", type=int, default=0, metavar="N")
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="service quantum slots (default: 2)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the JSON report here (default: stdout)",
    )
    parser.add_argument(
        "--shed-bounds",
        metavar="MIN,MAX",
        help="fail unless every scenario's shed rate is within [MIN, MAX] "
        "(fractions, e.g. 0.05,0.95)",
    )
    args = parser.parse_args(argv)

    shed_bounds: "Optional[Tuple[float, float]]" = None
    if args.shed_bounds is not None:
        try:
            low_text, high_text = args.shed_bounds.split(",")
            shed_bounds = (float(low_text), float(high_text))
        except ValueError:
            parser.error("--shed-bounds must be MIN,MAX (two fractions)")
        if not (0 <= shed_bounds[0] <= shed_bounds[1] <= 1):
            parser.error("--shed-bounds must satisfy 0 <= MIN <= MAX <= 1")

    report = run_load(quick=args.quick, seed=args.seed, workers=args.workers)
    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.output:
        Path(args.output).write_text(payload)
    else:
        sys.stdout.write(payload)

    for row in report["scenarios"]:
        p50 = row["latency_p50_s"]
        p99 = row["latency_p99_s"]
        print(
            f"{row['mix']:<8} offered={row['offered']} "
            f"completed={row['completed']} shed={sum(row['shed'].values())} "
            f"({row['shed_rate']:.0%}) killed={row['killed']} "
            f"resumes={row['resumes']} degraded={row['degraded']} "
            f"p50={p50 * 1e3:.1f}ms p99={p99 * 1e3:.1f}ms"
            if p50 is not None and p99 is not None
            else f"{row['mix']:<8} offered={row['offered']} (no completions)",
            file=sys.stderr,
        )
    failures = gate(report, shed_bounds)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("load gates passed", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
