"""Headless benchmark runner: execute the ``benchmarks/`` suites and emit
a machine-readable ``BENCH_pr10.json``.

The runner drives pytest-benchmark as a subprocess, harvests its raw JSON
plus the per-benchmark engine metrics that ``benchmarks/conftest.py``
attaches to ``extra_info`` (see ``REPRO_BENCH_METRICS``), and condenses
everything into a small, stable report::

    {
      "schema": "repro-bench/6",
      "quick": true,
      "benchmarks": [
        {"name": "...", "module": "bench_covers", "mean_s": ..., ...,
         "metrics": {"counters": {...}, "histograms": {...}},
         "memo_hit_rate": 0.93,
         "plan_cache_hit_rate": 0.98, "compile_s": 0.004},
        ...
      ],
      "totals": {"benchmarks": N, "wall_s": ..., "memo_hit_rate": ...,
                 "plan_cache_hit_rate": ..., "compile_s": ...,
                 "execute_s": ...},
      "parallel": {"cpu_count": C,
                   "groups": [{"group": "per_cluster/n=100",
                               "rows": [{"workers": 1, "mean_s": ...,
                                         "speedup": 1.0}, ...]}]},
      "retry_overhead": {"groups": [{"group": "per_cluster/n=100",
                                     "rows": [{"retries": 0, "mean_s": ...,
                                               "overhead": null},
                                              {"retries": 2, "mean_s": ...,
                                               "overhead": 1.01}]}]},
      "resume_overhead": {"groups": [{"group": "unary/n=100",
                                      "rows": [{"mode": "uninterrupted",
                                                "mean_s": ..., "steps": S,
                                                "overhead": null,
                                                "wall_overhead": null},
                                               {"mode": "resumed",
                                                "mean_s": ..., "steps": S2,
                                                "overhead": 1.002,
                                                "wall_overhead": 1.31}]}]},
      "routing": {"groups": [{"group": "mixed/n=100",
                              "rows": [{"mode": "cascade", "mean_s": ...},
                                       {"mode": "auto", "mean_s": ...,
                                        "vs_cascade": 0.98}]}],
                  "route_share": {"foc1": 0.9, "baseline": 0.1},
                  "decisions": D, "auto": A, "fallback": F,
                  "mispicks": M, "mispick_rate": 0.0,
                  "predict_error": {"count": ..., "mean": ..., "max": ...}},
      "kernels": {"groups": [{"group": "unary/n=100",
                              "rows": [{"impl": "reference", "mean_s": ...},
                                       {"impl": "columnar", "mean_s": ...,
                                        "vs_reference": 0.6,
                                        "peak_rss_kb": ...}],
                              "rss_delta_kb": ...}]},
      "approx": {"groups": [{"group": "dense/n=40",
                             "rows": [{"mode": "exact", "mean_s": ...},
                                      {"mode": "approx", "mean_s": ...,
                                       "vs_exact": 0.4,
                                       "relative_error": 0.03,
                                       "epsilon": 0.1,
                                       "samples": 1500}]}],
                 "max_relative_error": 0.03,
                 "within_epsilon": true},
      "service": {"schema": "repro-load/1", "quick": true,
                  "scenarios": [{"mix": "uniform", "offered": ...,
                                 "completed": ..., "shed": {...},
                                 "killed": 0, "resumes": ...,
                                 "degraded": ...,
                                 "latency_p50_s": ..., "latency_p99_s": ...,
                                 "throughput_rps": ...}, ...],
                  "totals": {...}},
      "baseline_delta": {"file": "BENCH_pr4.json", "common": M,
                         "speedup_geomean": ..., "rows": [...]}
    }

Schema 3 added the compile-once plan layer's split: per benchmark, the
plan-cache hit rate (``plan.cache.hit`` / ``plan.cache.miss`` counters)
and the time spent compiling plans (the ``plan.compile.seconds``
histogram's total); in the totals, ``execute_s`` is the measured wall
time minus the compile share.  When a baseline report (default:
``BENCH_pr3.json``) is present, the runner also emits a per-benchmark
delta table — baseline mean vs new mean — so regressions are visible in
the artifact itself.

Schema 4 adds the ``parallel`` section: benchmarks that tag themselves
with ``extra_info["parallel_group"]`` and ``extra_info["workers"]``
(``benchmarks/bench_parallel.py``) are grouped, and each row's *speedup*
is the group's workers=1 mean over this row's mean (>1.0 is faster).
``cpu_count`` is recorded alongside because thread-backend speedups are
bounded by the core count (and, on CPython, the GIL): a ~1.0x table on a
one-core runner is the expected honest result, not a defect.

Schema 5 adds the ``retry_overhead`` section: benchmarks tagged with
``extra_info["retry_group"]`` and ``extra_info["retries"]``
(``benchmarks/bench_retry.py``) are grouped, and each row's *overhead* is
this row's mean over the group's retries=0 mean — the cost of arming the
retry machinery on a fault-free run, with < 1.05 as the acceptance
target.

Schema 6 adds the ``resume_overhead`` section: benchmarks tagged with
``extra_info["preempt_group"]`` and ``extra_info["mode"]``
(``benchmarks/bench_preempt.py``) are grouped, and each ``resumed`` row's
*overhead* is its ``extra_info["steps"]`` (engine steps across both
quanta) over the group's ``uninterrupted`` steps — the evaluation work
re-done because of the suspension.  The target is <= 1.05x: restored
strata/memo state must make the second quantum skip what the first one
paid for.  ``wall_overhead`` (resumed mean over uninterrupted mean) is
reported alongside; it additionally includes the constant checkpoint
export/save/load/restore cost, so it exceeds the step ratio on small
workloads.

Schema 7 adds the ``routing`` section: benchmarks tagged with
``extra_info["routing_group"]`` and ``extra_info["engine_mode"]``
(``benchmarks/bench_routing.py``) are grouped, and each ``auto`` row's
*vs_cascade* is its mean over the group's ``cascade`` mean — the ISSUE 7
acceptance target is <= 1.0 on the common workloads.  The section also
aggregates the router's own counters across every routing-tagged
benchmark: per-engine route share (``cost.route.engine.*``), decisions
split into reorders vs fallbacks (``cost.route.auto`` /
``cost.route.fallback``), the mispick rate (``cost.route.mispick`` over
``cost.route.auto``; gate with ``--routing-gate``) and the
predicted-vs-actual cost error distribution (the ``cost.predict.error``
histogram of |log(actual/predicted)|).

Schema 8 adds the ``kernels`` section: benchmarks tagged with
``extra_info["kernel_group"]`` and ``extra_info["impl"]``
(``benchmarks/bench_kernels.py``) are grouped, and each ``columnar``
row's *vs_reference* is its mean over the group's ``reference`` mean —
the ISSUE 8 acceptance target is <= 1.0 (the id-space kernels must not
be slower than the preserved element-space implementations they
replaced; both sides assert byte-identical answers in the bench itself).
Each row also carries ``peak_rss_kb`` (``resource.getrusage``'s
ru_maxrss after the row ran) and the group reports ``rss_delta_kb``
(columnar minus reference).  ru_maxrss is process-monotonic, so the
delta depends on execution order and is context, not a gate.

Schema 9 adds the ``approx`` section: benchmarks tagged with
``extra_info["approx_group"]`` and ``extra_info["engine_mode"]``
(``benchmarks/bench_approx.py``) are grouped, and each ``approx`` row's
*vs_exact* is its mean over the group's ``exact`` mean — the
approx-vs-exact latency ratio at a size where brute force still
terminates.  Approx rows additionally carry the observed
``relative_error`` of the sampled estimate against the exact count, the
``epsilon`` the run was planned for, and the ``samples`` drawn; the
section-level ``max_relative_error`` and ``within_epsilon`` flag feed the
ISSUE 9 acceptance gate (observed error <= epsilon on every
feasible-exact bench).

Schema 10 adds the ``service`` section: the runner invokes
``tools/load_runner.py`` (``--quick`` in quick mode) and embeds its
``repro-load/1`` report — per tenant-mix scenario (uniform, zipf, hot)
the offered/admitted/completed request counts, the typed shed breakdown
and shed rate, the killed count (must be 0: admitted work is suspended
and resumed, never killed), preemption resumes, degraded (approximate)
answer counts, latency p50/p99 and throughput.  The section is skipped
for ``-k``-filtered runs and with ``--no-service``; when present it must
gate-pass (zero killed, zero orphaned checkpoints, exact answers equal
to the unloaded serial run).

Usage::

    python tools/bench_runner.py --quick              # smoke pass (seconds)
    python tools/bench_runner.py                      # full pass (minutes)
    python tools/bench_runner.py --validate BENCH_pr3.json

``--quick`` selects the small parameter points (via ``REPRO_BENCH_QUICK``;
the ceilings live in ``benchmarks/conftest.py``) and caps rounds, so CI can
afford it on every push.  ``--validate`` checks an existing report against
the schema without running anything — the CI smoke job uses it to keep the
emitted artifact honest.  The schema validator is hand-rolled: no
``jsonschema`` dependency.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent

SCHEMA_NAME = "repro-bench/10"

#: Extra pytest flags for --quick: one round per benchmark, warmup off.
QUICK_FLAGS = (
    "--benchmark-min-rounds=1",
    "--benchmark-max-time=0.25",
    "--benchmark-warmup=off",
)


def run_benchmarks(
    quick: bool,
    select: "Optional[str]" = None,
    extra_args: "Optional[List[str]]" = None,
) -> Dict:
    """Run the suites, return the condensed report dict.

    Raises :class:`RuntimeError` when pytest fails for a reason other than
    "no tests collected for this filter".
    """
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        raw_path = Path(tmp) / "pytest-benchmark.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            "benchmarks/",
            "--benchmark-only",
            f"--benchmark-json={raw_path}",
            "-q",
            "-p",
            "no:cacheprovider",
        ]
        if quick:
            command.extend(QUICK_FLAGS)
        if select:
            command.extend(["-k", select])
        if extra_args:
            command.extend(extra_args)

        env = dict(os.environ)
        env["REPRO_BENCH_METRICS"] = "1"
        if quick:
            env["REPRO_BENCH_QUICK"] = "1"
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )

        completed = subprocess.run(
            command,
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        # Exit code 5 is "no tests collected" (an over-narrow -k filter);
        # everything else non-zero is a genuine failure.
        if completed.returncode not in (0, 5):
            sys.stderr.write(completed.stdout)
            raise RuntimeError(
                f"pytest exited with code {completed.returncode}"
            )
        raw = (
            json.loads(raw_path.read_text())
            if raw_path.exists()
            else {"benchmarks": []}
        )
    return condense(raw, quick=quick)


def condense(raw: Dict, quick: bool) -> Dict:
    """Fold a pytest-benchmark JSON payload into the repro-bench schema."""
    benchmarks: List[Dict] = []
    total_wall = 0.0
    memo_hits = 0
    memo_misses = 0
    plan_hits = 0
    plan_misses = 0
    total_compile = 0.0
    for entry in raw.get("benchmarks", []):
        stats = entry.get("stats", {})
        extra = dict(entry.get("extra_info", {}))
        metrics = extra.pop("metrics", None)
        memo_hit_rate = extra.pop("memo_hit_rate", None)
        mean = float(stats.get("mean", 0.0))
        rounds = int(stats.get("rounds", 0))
        total_wall += mean * rounds
        plan_cache_hit_rate = None
        compile_s = None
        if metrics:
            counters = metrics.get("counters", {})
            memo_hits += sum(
                v for k, v in counters.items() if k.endswith(".memo.hit")
            )
            memo_misses += sum(
                v for k, v in counters.items() if k.endswith(".memo.miss")
            )
            hits = counters.get("plan.cache.hit", 0)
            misses = counters.get("plan.cache.miss", 0)
            plan_hits += hits
            plan_misses += misses
            if hits + misses:
                plan_cache_hit_rate = hits / (hits + misses)
            histogram = (metrics.get("histograms") or {}).get(
                "plan.compile.seconds"
            )
            if histogram is not None:
                compile_s = float(histogram.get("total", 0.0))
                total_compile += compile_s
        benchmarks.append(
            {
                "name": entry.get("name", ""),
                "module": Path(entry.get("fullname", "")).name.split("::")[0]
                .removesuffix(".py"),
                "group": entry.get("group"),
                "mean_s": mean,
                "stddev_s": float(stats.get("stddev", 0.0)),
                "min_s": float(stats.get("min", 0.0)),
                "rounds": rounds,
                "extra_info": extra,
                "metrics": metrics,
                "memo_hit_rate": memo_hit_rate,
                "plan_cache_hit_rate": plan_cache_hit_rate,
                "compile_s": compile_s,
            }
        )
    total = memo_hits + memo_misses
    plan_total = plan_hits + plan_misses
    parallel = parallel_section(benchmarks)
    retry_overhead = retry_section(benchmarks)
    resume_overhead = resume_section(benchmarks)
    routing = routing_section(benchmarks)
    kernels = kernel_section(benchmarks)
    approx = approx_section(benchmarks)
    report = {
        "schema": SCHEMA_NAME,
        "quick": quick,
        "machine_info": raw.get("machine_info", {}),
        "benchmarks": benchmarks,
        "totals": {
            "benchmarks": len(benchmarks),
            "wall_s": total_wall,
            "memo_hits": memo_hits,
            "memo_misses": memo_misses,
            "memo_hit_rate": (memo_hits / total) if total else None,
            "plan_cache_hits": plan_hits,
            "plan_cache_misses": plan_misses,
            "plan_cache_hit_rate": (
                (plan_hits / plan_total) if plan_total else None
            ),
            "compile_s": total_compile,
            "execute_s": max(total_wall - total_compile, 0.0),
        },
        "parallel": parallel,
        "retry_overhead": retry_overhead,
        "resume_overhead": resume_overhead,
        "routing": routing,
        "kernels": kernels,
        "approx": approx,
    }
    return report


def parallel_section(benchmarks: List[Dict]) -> Dict:
    """Fold the worker-sweep benchmarks into a speedup table.

    Rows come from benchmarks that tagged ``extra_info`` with
    ``parallel_group`` and ``workers``; each group's workers=1 row is the
    denominator (speedup = serial mean / this mean, so >1.0 is faster).
    ``cpu_count`` contextualises the table: thread speedups cannot exceed
    the core count, so a flat table on a small runner is expected.
    """
    grouped: "Dict[str, List[Dict]]" = {}
    for bench in benchmarks:
        extra = bench.get("extra_info") or {}
        group = extra.get("parallel_group")
        workers = extra.get("workers")
        if not isinstance(group, str) or not isinstance(workers, int):
            continue
        grouped.setdefault(group, []).append(
            {"workers": workers, "mean_s": bench["mean_s"], "name": bench["name"]}
        )
    groups = []
    for group in sorted(grouped):
        rows = sorted(grouped[group], key=lambda row: row["workers"])
        serial = next(
            (row["mean_s"] for row in rows if row["workers"] == 1), None
        )
        for row in rows:
            row["speedup"] = (
                serial / row["mean_s"]
                if serial and row["mean_s"] > 0
                else None
            )
        groups.append({"group": group, "rows": rows})
    return {"cpu_count": os.cpu_count(), "groups": groups}


def parallel_table(parallel: Dict) -> List[str]:
    """A printable serial-vs-parallel speedup table."""
    lines = [f"parallel speedups (cpu_count={parallel.get('cpu_count')})"]
    for group in parallel.get("groups", []):
        cells = ", ".join(
            f"{row['workers']}w: "
            + (f"{row['speedup']:.2f}x" if row["speedup"] is not None else "n/a")
            for row in group["rows"]
        )
        lines.append(f"  {group['group']:<28} {cells}")
    if len(lines) == 1:
        lines.append("  (no worker-sweep benchmarks in this run)")
    return lines


def retry_section(benchmarks: List[Dict]) -> Dict:
    """Fold the retry-sweep benchmarks into an overhead table.

    Rows come from benchmarks that tagged ``extra_info`` with
    ``retry_group`` and ``retries``; each group's retries=0 row is the
    denominator (overhead = this mean / plain mean, so 1.0 is free and
    the PR 5 acceptance target is < 1.05 on fault-free runs).
    """
    grouped: "Dict[str, List[Dict]]" = {}
    for bench in benchmarks:
        extra = bench.get("extra_info") or {}
        group = extra.get("retry_group")
        retries = extra.get("retries")
        if not isinstance(group, str) or not isinstance(retries, int):
            continue
        grouped.setdefault(group, []).append(
            {"retries": retries, "mean_s": bench["mean_s"], "name": bench["name"]}
        )
    groups = []
    for group in sorted(grouped):
        rows = sorted(grouped[group], key=lambda row: row["retries"])
        plain = next(
            (row["mean_s"] for row in rows if row["retries"] == 0), None
        )
        for row in rows:
            row["overhead"] = (
                row["mean_s"] / plain
                if plain and row["mean_s"] > 0 and row["retries"] > 0
                else None
            )
        groups.append({"group": group, "rows": rows})
    return {"groups": groups}


def retry_table(retry_overhead: Dict) -> List[str]:
    """A printable retry-armed vs plain overhead table."""
    lines = ["retry overhead (armed vs plain, fault-free; target < 1.05x)"]
    for group in retry_overhead.get("groups", []):
        cells = ", ".join(
            f"r={row['retries']}: "
            + (
                f"{row['overhead']:.3f}x"
                if row["overhead"] is not None
                else f"{row['mean_s'] * 1e3:.3f}ms"
            )
            for row in group["rows"]
        )
        lines.append(f"  {group['group']:<28} {cells}")
    if len(lines) == 1:
        lines.append("  (no retry-sweep benchmarks in this run)")
    return lines


def resume_section(benchmarks: List[Dict]) -> Dict:
    """Fold the preemption benchmarks into a resume-overhead table.

    Rows come from benchmarks that tagged ``extra_info`` with
    ``preempt_group`` and ``mode`` (``"uninterrupted"`` or ``"resumed"``);
    each group's uninterrupted row is the denominator.  ``overhead`` is
    the step ratio (resumed steps / uninterrupted steps — the PR 6
    acceptance target is <= 1.05x); ``wall_overhead`` is the wall-clock
    ratio, which also carries the constant checkpoint I/O cost.
    """
    grouped: "Dict[str, List[Dict]]" = {}
    for bench in benchmarks:
        extra = bench.get("extra_info") or {}
        group = extra.get("preempt_group")
        mode = extra.get("mode")
        if not isinstance(group, str) or mode not in (
            "uninterrupted",
            "resumed",
        ):
            continue
        row = {"mode": mode, "mean_s": bench["mean_s"], "name": bench["name"]}
        steps = extra.get("steps")
        if isinstance(steps, int):
            row["steps"] = steps
        grouped.setdefault(group, []).append(row)
    groups = []
    for group in sorted(grouped):
        rows = sorted(grouped[group], key=lambda row: row["mode"], reverse=True)
        plain = next(
            (r for r in rows if r["mode"] == "uninterrupted"), None
        )
        for row in rows:
            row["overhead"] = None
            row["wall_overhead"] = None
            if row["mode"] != "resumed" or plain is None:
                continue
            base_steps = plain.get("steps")
            if base_steps and isinstance(row.get("steps"), int):
                row["overhead"] = row["steps"] / base_steps
            if plain["mean_s"] > 0 and row["mean_s"] > 0:
                row["wall_overhead"] = row["mean_s"] / plain["mean_s"]
        groups.append({"group": group, "rows": rows})
    return {"groups": groups}


def resume_table(resume_overhead: Dict) -> List[str]:
    """A printable resumed-vs-uninterrupted overhead table."""
    lines = ["resume overhead (re-done steps after suspend; target <= 1.05x)"]
    for group in resume_overhead.get("groups", []):
        cells = []
        for row in group["rows"]:
            if row.get("overhead") is not None:
                cell = f"{row['mode']}: {row['overhead']:.3f}x steps"
                if row.get("wall_overhead") is not None:
                    cell += f" ({row['wall_overhead']:.2f}x wall)"
            else:
                cell = f"{row['mode']}: {row['mean_s'] * 1e3:.3f}ms"
            cells.append(cell)
        lines.append(f"  {group['group']:<28} {', '.join(cells)}")
    if len(lines) == 1:
        lines.append("  (no preemption benchmarks in this run)")
    return lines


def routing_section(benchmarks: List[Dict]) -> Dict:
    """Fold the routing benchmarks into an auto-vs-cascade table plus the
    router's aggregate counters.

    Rows come from benchmarks that tagged ``extra_info`` with
    ``routing_group`` and ``engine_mode`` (``"auto"`` or ``"cascade"``);
    each group's cascade row is the denominator (``vs_cascade`` = auto
    mean over cascade mean — <= 1.0 means routing does not cost wall
    time).  The counter aggregates come from the per-benchmark metrics
    snapshots: route share per engine, reorder/fallback split, mispicks
    and the predicted-vs-actual error histogram.
    """
    grouped: "Dict[str, List[Dict]]" = {}
    engine_routes: "Dict[str, int]" = {}
    auto = fallback = mispicks = 0
    error_count = 0
    error_total = 0.0
    error_max: "Optional[float]" = None
    prefix = "cost.route.engine."
    for bench in benchmarks:
        extra = bench.get("extra_info") or {}
        group = extra.get("routing_group")
        mode = extra.get("engine_mode")
        if not isinstance(group, str) or mode not in ("auto", "cascade"):
            continue
        grouped.setdefault(group, []).append(
            {"mode": mode, "mean_s": bench["mean_s"], "name": bench["name"]}
        )
        metrics = bench.get("metrics") or {}
        counters = metrics.get("counters") or {}
        for name, value in counters.items():
            if name.startswith(prefix) and isinstance(value, int):
                engine = name[len(prefix):]
                engine_routes[engine] = engine_routes.get(engine, 0) + value
        auto += counters.get("cost.route.auto", 0)
        fallback += counters.get("cost.route.fallback", 0)
        mispicks += counters.get("cost.route.mispick", 0)
        histogram = (metrics.get("histograms") or {}).get("cost.predict.error")
        if histogram:
            error_count += int(histogram.get("count", 0) or 0)
            error_total += float(histogram.get("total", 0.0) or 0.0)
            peak = histogram.get("max")
            if peak is not None and (error_max is None or peak > error_max):
                error_max = float(peak)
    groups = []
    for group in sorted(grouped):
        rows = sorted(grouped[group], key=lambda row: row["mode"])
        cascade = next(
            (row["mean_s"] for row in rows if row["mode"] == "cascade"), None
        )
        for row in rows:
            row["vs_cascade"] = (
                row["mean_s"] / cascade
                if row["mode"] == "auto" and cascade and row["mean_s"] > 0
                else None
            )
        groups.append({"group": group, "rows": rows})
    decisions = sum(engine_routes.values())
    return {
        "groups": groups,
        "route_share": {
            engine: count / decisions
            for engine, count in sorted(engine_routes.items())
        }
        if decisions
        else {},
        "decisions": decisions,
        "auto": auto,
        "fallback": fallback,
        "mispicks": mispicks,
        "mispick_rate": (mispicks / auto) if auto else None,
        "predict_error": {
            "count": error_count,
            "mean": (error_total / error_count) if error_count else None,
            "max": error_max,
        },
    }


def routing_table(routing: Dict) -> List[str]:
    """A printable auto-vs-cascade routing summary."""
    lines = ["routing (auto vs fixed cascade; target <= 1.00x wall)"]
    for group in routing.get("groups", []):
        cells = ", ".join(
            f"{row['mode']}: "
            + (
                f"{row['vs_cascade']:.3f}x"
                if row.get("vs_cascade") is not None
                else f"{row['mean_s'] * 1e3:.3f}ms"
            )
            for row in group["rows"]
        )
        lines.append(f"  {group['group']:<28} {cells}")
    if len(lines) == 1:
        lines.append("  (no routing benchmarks in this run)")
        return lines
    share = ", ".join(
        f"{engine}: {fraction:.0%}"
        for engine, fraction in routing.get("route_share", {}).items()
    )
    rate = routing.get("mispick_rate")
    rate_text = f"{rate:.1%}" if rate is not None else "n/a"
    error = routing.get("predict_error") or {}
    mean_error = error.get("mean")
    error_text = (
        f"|log err| mean {mean_error:.2f}, max {error['max']:.2f}"
        if mean_error is not None and error.get("max") is not None
        else "no calibration samples"
    )
    lines.append(
        f"  decisions={routing.get('decisions')} "
        f"(reordered {routing.get('auto')}, fallback "
        f"{routing.get('fallback')}), mispick rate {rate_text}, {error_text}"
    )
    if share:
        lines.append(f"  route share: {share}")
    return lines


def kernel_section(benchmarks: List[Dict]) -> Dict:
    """Fold the kernel-parity benchmarks into a columnar-vs-reference table.

    Rows come from benchmarks that tagged ``extra_info`` with
    ``kernel_group`` and ``impl`` (``"columnar"`` or ``"reference"``);
    each group's reference row is the denominator (``vs_reference`` =
    columnar mean over reference mean — <= 1.0 means the id-space
    kernels pay for themselves).  ``peak_rss_kb`` is copied through per
    row and ``rss_delta_kb`` (columnar minus reference) is reported per
    group; ru_maxrss is process-monotonic, so the delta is
    ordering-dependent context, not a gate.
    """
    grouped: "Dict[str, List[Dict]]" = {}
    for bench in benchmarks:
        extra = bench.get("extra_info") or {}
        group = extra.get("kernel_group")
        impl = extra.get("impl")
        if not isinstance(group, str) or impl not in ("columnar", "reference"):
            continue
        row = {"impl": impl, "mean_s": bench["mean_s"], "name": bench["name"]}
        rss = extra.get("peak_rss_kb")
        if isinstance(rss, int):
            row["peak_rss_kb"] = rss
        grouped.setdefault(group, []).append(row)
    groups = []
    for group in sorted(grouped):
        rows = sorted(grouped[group], key=lambda row: row["impl"])
        reference = next(
            (row for row in rows if row["impl"] == "reference"), None
        )
        rss_delta = None
        for row in rows:
            row["vs_reference"] = None
            if row["impl"] != "columnar" or reference is None:
                continue
            if reference["mean_s"] > 0 and row["mean_s"] > 0:
                row["vs_reference"] = row["mean_s"] / reference["mean_s"]
            if "peak_rss_kb" in row and "peak_rss_kb" in reference:
                rss_delta = row["peak_rss_kb"] - reference["peak_rss_kb"]
        groups.append(
            {"group": group, "rows": rows, "rss_delta_kb": rss_delta}
        )
    return {"groups": groups}


def kernel_table(kernels: Dict) -> List[str]:
    """A printable columnar-vs-reference kernel table."""
    lines = ["kernels (columnar vs element-space reference; target <= 1.00x)"]
    for group in kernels.get("groups", []):
        cells = ", ".join(
            f"{row['impl']}: "
            + (
                f"{row['vs_reference']:.3f}x"
                if row.get("vs_reference") is not None
                else f"{row['mean_s'] * 1e3:.3f}ms"
            )
            for row in group["rows"]
        )
        delta = group.get("rss_delta_kb")
        if delta is not None:
            cells += f" (rss delta {delta:+d}kB)"
        lines.append(f"  {group['group']:<28} {cells}")
    if len(lines) == 1:
        lines.append("  (no kernel-parity benchmarks in this run)")
    return lines


def approx_section(benchmarks: List[Dict]) -> Dict:
    """Fold the sampling-tier benchmarks into an approx-vs-exact table.

    Rows come from benchmarks that tagged ``extra_info`` with
    ``approx_group`` and ``engine_mode`` (``"exact"`` or ``"approx"``);
    each group's exact row is the denominator (``vs_exact`` = approx mean
    over exact mean).  Approx rows copy through the observed
    ``relative_error`` against the exact count plus the planned
    ``epsilon`` and ``samples`` drawn; ``max_relative_error`` is the
    worst observed error across groups and ``within_epsilon`` is the
    acceptance flag — every observed error stayed at or below its row's
    epsilon (vacuously true with no approx rows, null when an approx row
    carried no measurable error).
    """
    grouped: "Dict[str, List[Dict]]" = {}
    for bench in benchmarks:
        extra = bench.get("extra_info") or {}
        group = extra.get("approx_group")
        mode = extra.get("engine_mode")
        if not isinstance(group, str) or mode not in ("exact", "approx"):
            continue
        row = {"mode": mode, "mean_s": bench["mean_s"], "name": bench["name"]}
        if mode == "approx":
            for key in ("relative_error", "epsilon"):
                value = extra.get(key)
                if isinstance(value, (int, float)):
                    row[key] = float(value)
            samples = extra.get("samples")
            if isinstance(samples, int):
                row["samples"] = samples
        grouped.setdefault(group, []).append(row)
    groups = []
    max_error: "Optional[float]" = None
    missing_error = False
    violated = False
    for group in sorted(grouped):
        rows = sorted(grouped[group], key=lambda row: row["mode"])
        exact = next(
            (row["mean_s"] for row in rows if row["mode"] == "exact"), None
        )
        for row in rows:
            row["vs_exact"] = (
                row["mean_s"] / exact
                if row["mode"] == "approx" and exact and row["mean_s"] > 0
                else None
            )
            if row["mode"] != "approx":
                continue
            error = row.get("relative_error")
            epsilon = row.get("epsilon")
            if error is None:
                missing_error = True
                continue
            if max_error is None or error > max_error:
                max_error = error
            if epsilon is not None and error > epsilon:
                violated = True
        groups.append({"group": group, "rows": rows})
    within: "Optional[bool]"
    if violated:
        within = False
    elif missing_error:
        within = None
    else:
        within = True
    return {
        "groups": groups,
        "max_relative_error": max_error,
        "within_epsilon": within,
    }


def approx_table(approx: Dict) -> List[str]:
    """A printable approx-vs-exact sampling-tier table."""
    lines = ["approx (sampling vs exact count; observed error target <= eps)"]
    for group in approx.get("groups", []):
        cells = []
        for row in group["rows"]:
            if row.get("vs_exact") is not None:
                cell = f"{row['mode']}: {row['vs_exact']:.3f}x"
            else:
                cell = f"{row['mode']}: {row['mean_s'] * 1e3:.3f}ms"
            error = row.get("relative_error")
            if error is not None:
                eps = row.get("epsilon")
                eps_text = f"{eps:g}" if eps is not None else "?"
                cell += f" (err {error:.1%} vs eps {eps_text})"
            cells.append(cell)
        lines.append(f"  {group['group']:<28} {', '.join(cells)}")
    if len(lines) == 1:
        lines.append("  (no sampling-tier benchmarks in this run)")
        return lines
    max_error = approx.get("max_relative_error")
    within = approx.get("within_epsilon")
    error_text = f"{max_error:.1%}" if max_error is not None else "n/a"
    within_text = (
        "yes" if within is True else "NO" if within is False else "n/a"
    )
    lines.append(
        f"  max relative error {error_text}, within epsilon: {within_text}"
    )
    return lines


def service_section(quick: bool) -> Dict:
    """Run ``tools/load_runner.py`` and return its ``repro-load/1`` report.

    The load harness is a separate process so its asyncio event loop,
    signal handling and metrics registry cannot leak into the benchmark
    process.  Gate failures (killed queries, orphaned checkpoints,
    mismatched answers) surface as a non-zero exit and raise here — a
    bench report must never embed a failing service run.
    """
    with tempfile.TemporaryDirectory(prefix="repro-load-") as tmp:
        out_path = Path(tmp) / "load.json"
        command = [
            sys.executable,
            str(REPO_ROOT / "tools" / "load_runner.py"),
            "--output",
            str(out_path),
        ]
        if quick:
            command.append("--quick")
        completed = subprocess.run(
            command,
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        if completed.returncode != 0:
            sys.stderr.write(completed.stdout)
            raise RuntimeError(
                f"load_runner exited with code {completed.returncode}"
            )
        return json.loads(out_path.read_text())


def service_table(service: Dict) -> List[str]:
    """A printable multi-tenant load table (one row per mix scenario)."""
    lines = ["service (multi-tenant load; killed must be 0)"]
    for row in service.get("scenarios", []):
        shed = sum((row.get("shed") or {}).values())
        p50 = row.get("latency_p50_s")
        p99 = row.get("latency_p99_s")
        latency = (
            f"p50 {p50 * 1e3:.1f}ms p99 {p99 * 1e3:.1f}ms"
            if p50 is not None and p99 is not None
            else "no completions"
        )
        lines.append(
            f"  {row.get('mix', '?'):<10} offered {row.get('offered', 0):>4} "
            f"completed {row.get('completed', 0):>4} "
            f"shed {shed:>4} ({row.get('shed_rate', 0.0):.0%}) "
            f"killed {row.get('killed', 0)} "
            f"resumes {row.get('resumes', 0):>3} "
            f"degraded {row.get('degraded', 0):>3} {latency}"
        )
    if len(lines) == 1:
        lines.append("  (no load scenarios in this run)")
        return lines
    totals = service.get("totals") or {}
    lines.append(
        f"  totals: {totals.get('completed', 0)}/{totals.get('offered', 0)} "
        f"completed, {totals.get('shed', 0)} shed (typed), "
        f"{totals.get('killed', 0)} killed, "
        f"answers_ok={totals.get('answers_ok')}"
    )
    return lines


# ---------------------------------------------------------------------------
# Baseline comparison
# ---------------------------------------------------------------------------


def baseline_delta(report: Dict, baseline: Dict, filename: str) -> Dict:
    """Per-benchmark deltas against an earlier report (any schema version).

    Benchmarks are matched on ``(module, name)``; ``ratio`` is new mean
    over baseline mean, so values below 1.0 are speedups.
    """
    older = {
        (bench.get("module"), bench.get("name")): bench
        for bench in baseline.get("benchmarks", [])
    }
    rows: List[Dict] = []
    ratios: List[float] = []
    for bench in report.get("benchmarks", []):
        before = older.get((bench.get("module"), bench.get("name")))
        if before is None:
            continue
        base_mean = float(before.get("mean_s", 0.0))
        mean = float(bench.get("mean_s", 0.0))
        ratio = (mean / base_mean) if base_mean > 0 and mean > 0 else None
        if ratio is not None:
            ratios.append(ratio)
        rows.append(
            {
                "name": bench.get("name"),
                "module": bench.get("module"),
                "base_mean_s": base_mean,
                "mean_s": mean,
                "ratio": ratio,
            }
        )
    geomean = None
    if ratios:
        log_sum = sum(math.log(r) for r in ratios)
        geomean = math.exp(log_sum / len(ratios))
    return {
        "file": filename,
        "baseline_schema": baseline.get("schema"),
        "common": len(rows),
        "speedup_geomean": geomean,
        "rows": rows,
    }


def delta_table(delta: Dict, limit: int = 12) -> List[str]:
    """A printable table of the largest movers (both directions)."""
    rows = [row for row in delta["rows"] if row["ratio"] is not None]
    rows.sort(key=lambda row: abs(math.log(row["ratio"])), reverse=True)
    lines = [
        f"delta vs {delta['file']} ({delta['common']} shared benchmark(s), "
        + (
            f"geomean ratio {delta['speedup_geomean']:.3f})"
            if delta["speedup_geomean"] is not None
            else "no comparable timings)"
        ),
        f"  {'benchmark':<58} {'base_ms':>9} {'new_ms':>9} {'ratio':>7}",
    ]
    for row in rows[:limit]:
        name = f"{row['module']}::{row['name']}"
        if len(name) > 58:
            name = name[:55] + "..."
        lines.append(
            f"  {name:<58} {row['base_mean_s'] * 1e3:>9.3f} "
            f"{row['mean_s'] * 1e3:>9.3f} {row['ratio']:>7.3f}"
        )
    if len(rows) > limit:
        lines.append(f"  ... {len(rows) - limit} more in the report")
    return lines


# ---------------------------------------------------------------------------
# Schema validation (hand-rolled; no jsonschema dependency)
# ---------------------------------------------------------------------------


def validate_report(report: Dict) -> List[str]:
    """Return a list of schema violations (empty means valid)."""
    problems: List[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    check(isinstance(report, dict), "report must be an object")
    if not isinstance(report, dict):
        return problems
    check(report.get("schema") == SCHEMA_NAME, f"schema must be {SCHEMA_NAME!r}")
    check(isinstance(report.get("quick"), bool), "quick must be a boolean")
    benchmarks = report.get("benchmarks")
    check(isinstance(benchmarks, list), "benchmarks must be a list")
    for i, bench in enumerate(benchmarks or []):
        where = f"benchmarks[{i}]"
        if not isinstance(bench, dict):
            problems.append(f"{where} must be an object")
            continue
        check(
            isinstance(bench.get("name"), str) and bench["name"],
            f"{where}.name must be a non-empty string",
        )
        check(isinstance(bench.get("module"), str), f"{where}.module must be a string")
        for key in ("mean_s", "stddev_s", "min_s"):
            value = bench.get(key)
            check(
                isinstance(value, (int, float)) and value >= 0,
                f"{where}.{key} must be a non-negative number",
            )
        check(
            isinstance(bench.get("rounds"), int) and bench["rounds"] >= 1,
            f"{where}.rounds must be a positive integer",
        )
        for key in ("memo_hit_rate", "plan_cache_hit_rate"):
            rate = bench.get(key)
            check(
                rate is None
                or (isinstance(rate, (int, float)) and 0 <= rate <= 1),
                f"{where}.{key} must be null or in [0, 1]",
            )
        compile_s = bench.get("compile_s")
        check(
            compile_s is None
            or (isinstance(compile_s, (int, float)) and compile_s >= 0),
            f"{where}.compile_s must be null or a non-negative number",
        )
        metrics = bench.get("metrics")
        if metrics is not None:
            check(
                isinstance(metrics, dict)
                and isinstance(metrics.get("counters"), dict)
                and isinstance(metrics.get("histograms"), dict),
                f"{where}.metrics must have counters and histograms objects",
            )
            if isinstance(metrics, dict):
                for name, value in (metrics.get("counters") or {}).items():
                    check(
                        isinstance(value, int) and value >= 0,
                        f"{where}.metrics.counters[{name!r}] must be a "
                        "non-negative integer",
                    )
    totals = report.get("totals")
    check(isinstance(totals, dict), "totals must be an object")
    if isinstance(totals, dict):
        check(
            totals.get("benchmarks") == len(benchmarks or []),
            "totals.benchmarks must equal len(benchmarks)",
        )
        for key in ("wall_s", "compile_s", "execute_s"):
            value = totals.get(key)
            check(
                isinstance(value, (int, float)) and value >= 0,
                f"totals.{key} must be a non-negative number",
            )
        for key in ("memo_hit_rate", "plan_cache_hit_rate"):
            rate = totals.get(key)
            check(
                rate is None
                or (isinstance(rate, (int, float)) and 0 <= rate <= 1),
                f"totals.{key} must be null or in [0, 1]",
            )
    parallel = report.get("parallel")
    check(isinstance(parallel, dict), "parallel must be an object")
    if isinstance(parallel, dict):
        cpu_count = parallel.get("cpu_count")
        check(
            cpu_count is None or (isinstance(cpu_count, int) and cpu_count >= 1),
            "parallel.cpu_count must be null or a positive integer",
        )
        groups = parallel.get("groups")
        check(isinstance(groups, list), "parallel.groups must be a list")
        for i, group in enumerate(groups or []):
            where = f"parallel.groups[{i}]"
            if not isinstance(group, dict):
                problems.append(f"{where} must be an object")
                continue
            check(
                isinstance(group.get("group"), str) and group["group"],
                f"{where}.group must be a non-empty string",
            )
            rows = group.get("rows")
            check(isinstance(rows, list) and rows, f"{where}.rows must be a non-empty list")
            for j, row in enumerate(rows or []):
                where_row = f"{where}.rows[{j}]"
                if not isinstance(row, dict):
                    problems.append(f"{where_row} must be an object")
                    continue
                check(
                    isinstance(row.get("workers"), int) and row["workers"] >= 1,
                    f"{where_row}.workers must be a positive integer",
                )
                mean = row.get("mean_s")
                check(
                    isinstance(mean, (int, float)) and mean >= 0,
                    f"{where_row}.mean_s must be a non-negative number",
                )
                speedup = row.get("speedup")
                check(
                    speedup is None
                    or (isinstance(speedup, (int, float)) and speedup >= 0),
                    f"{where_row}.speedup must be null or non-negative",
                )
    retry_overhead = report.get("retry_overhead")
    check(isinstance(retry_overhead, dict), "retry_overhead must be an object")
    if isinstance(retry_overhead, dict):
        groups = retry_overhead.get("groups")
        check(isinstance(groups, list), "retry_overhead.groups must be a list")
        for i, group in enumerate(groups or []):
            where = f"retry_overhead.groups[{i}]"
            if not isinstance(group, dict):
                problems.append(f"{where} must be an object")
                continue
            check(
                isinstance(group.get("group"), str) and group["group"],
                f"{where}.group must be a non-empty string",
            )
            rows = group.get("rows")
            check(
                isinstance(rows, list) and rows,
                f"{where}.rows must be a non-empty list",
            )
            for j, row in enumerate(rows or []):
                where_row = f"{where}.rows[{j}]"
                if not isinstance(row, dict):
                    problems.append(f"{where_row} must be an object")
                    continue
                check(
                    isinstance(row.get("retries"), int) and row["retries"] >= 0,
                    f"{where_row}.retries must be a non-negative integer",
                )
                mean = row.get("mean_s")
                check(
                    isinstance(mean, (int, float)) and mean >= 0,
                    f"{where_row}.mean_s must be a non-negative number",
                )
                overhead = row.get("overhead")
                check(
                    overhead is None
                    or (isinstance(overhead, (int, float)) and overhead >= 0),
                    f"{where_row}.overhead must be null or non-negative",
                )
    resume_overhead = report.get("resume_overhead")
    check(isinstance(resume_overhead, dict), "resume_overhead must be an object")
    if isinstance(resume_overhead, dict):
        groups = resume_overhead.get("groups")
        check(isinstance(groups, list), "resume_overhead.groups must be a list")
        for i, group in enumerate(groups or []):
            where = f"resume_overhead.groups[{i}]"
            if not isinstance(group, dict):
                problems.append(f"{where} must be an object")
                continue
            check(
                isinstance(group.get("group"), str) and group["group"],
                f"{where}.group must be a non-empty string",
            )
            rows = group.get("rows")
            check(
                isinstance(rows, list) and rows,
                f"{where}.rows must be a non-empty list",
            )
            for j, row in enumerate(rows or []):
                where_row = f"{where}.rows[{j}]"
                if not isinstance(row, dict):
                    problems.append(f"{where_row} must be an object")
                    continue
                check(
                    row.get("mode") in ("uninterrupted", "resumed"),
                    f"{where_row}.mode must be 'uninterrupted' or 'resumed'",
                )
                mean = row.get("mean_s")
                check(
                    isinstance(mean, (int, float)) and mean >= 0,
                    f"{where_row}.mean_s must be a non-negative number",
                )
                overhead = row.get("overhead")
                check(
                    overhead is None
                    or (isinstance(overhead, (int, float)) and overhead >= 0),
                    f"{where_row}.overhead must be null or non-negative",
                )
                wall = row.get("wall_overhead")
                check(
                    wall is None
                    or (isinstance(wall, (int, float)) and wall >= 0),
                    f"{where_row}.wall_overhead must be null or non-negative",
                )
                steps = row.get("steps")
                check(
                    steps is None or (isinstance(steps, int) and steps >= 0),
                    f"{where_row}.steps must be null or a non-negative integer",
                )
    routing = report.get("routing")
    check(isinstance(routing, dict), "routing must be an object")
    if isinstance(routing, dict):
        groups = routing.get("groups")
        check(isinstance(groups, list), "routing.groups must be a list")
        for i, group in enumerate(groups or []):
            where = f"routing.groups[{i}]"
            if not isinstance(group, dict):
                problems.append(f"{where} must be an object")
                continue
            check(
                isinstance(group.get("group"), str) and group["group"],
                f"{where}.group must be a non-empty string",
            )
            rows = group.get("rows")
            check(
                isinstance(rows, list) and rows,
                f"{where}.rows must be a non-empty list",
            )
            for j, row in enumerate(rows or []):
                where_row = f"{where}.rows[{j}]"
                if not isinstance(row, dict):
                    problems.append(f"{where_row} must be an object")
                    continue
                check(
                    row.get("mode") in ("auto", "cascade"),
                    f"{where_row}.mode must be 'auto' or 'cascade'",
                )
                mean = row.get("mean_s")
                check(
                    isinstance(mean, (int, float)) and mean >= 0,
                    f"{where_row}.mean_s must be a non-negative number",
                )
                ratio = row.get("vs_cascade")
                check(
                    ratio is None
                    or (isinstance(ratio, (int, float)) and ratio >= 0),
                    f"{where_row}.vs_cascade must be null or non-negative",
                )
        share = routing.get("route_share")
        check(isinstance(share, dict), "routing.route_share must be an object")
        if isinstance(share, dict):
            for engine, fraction in share.items():
                check(
                    isinstance(fraction, (int, float)) and 0 <= fraction <= 1,
                    f"routing.route_share[{engine!r}] must be in [0, 1]",
                )
        for key in ("decisions", "auto", "fallback", "mispicks"):
            value = routing.get(key)
            check(
                isinstance(value, int) and value >= 0,
                f"routing.{key} must be a non-negative integer",
            )
        rate = routing.get("mispick_rate")
        check(
            rate is None or (isinstance(rate, (int, float)) and 0 <= rate <= 1),
            "routing.mispick_rate must be null or in [0, 1]",
        )
        error = routing.get("predict_error")
        check(isinstance(error, dict), "routing.predict_error must be an object")
    kernels = report.get("kernels")
    check(isinstance(kernels, dict), "kernels must be an object")
    if isinstance(kernels, dict):
        groups = kernels.get("groups")
        check(isinstance(groups, list), "kernels.groups must be a list")
        for i, group in enumerate(groups or []):
            where = f"kernels.groups[{i}]"
            if not isinstance(group, dict):
                problems.append(f"{where} must be an object")
                continue
            check(
                isinstance(group.get("group"), str) and group["group"],
                f"{where}.group must be a non-empty string",
            )
            rss_delta = group.get("rss_delta_kb")
            check(
                rss_delta is None or isinstance(rss_delta, int),
                f"{where}.rss_delta_kb must be null or an integer",
            )
            rows = group.get("rows")
            check(
                isinstance(rows, list) and rows,
                f"{where}.rows must be a non-empty list",
            )
            for j, row in enumerate(rows or []):
                where_row = f"{where}.rows[{j}]"
                if not isinstance(row, dict):
                    problems.append(f"{where_row} must be an object")
                    continue
                check(
                    row.get("impl") in ("columnar", "reference"),
                    f"{where_row}.impl must be 'columnar' or 'reference'",
                )
                mean = row.get("mean_s")
                check(
                    isinstance(mean, (int, float)) and mean >= 0,
                    f"{where_row}.mean_s must be a non-negative number",
                )
                ratio = row.get("vs_reference")
                check(
                    ratio is None
                    or (isinstance(ratio, (int, float)) and ratio >= 0),
                    f"{where_row}.vs_reference must be null or non-negative",
                )
                rss = row.get("peak_rss_kb")
                check(
                    rss is None or (isinstance(rss, int) and rss >= 0),
                    f"{where_row}.peak_rss_kb must be null or a "
                    "non-negative integer",
                )
    approx = report.get("approx")
    check(isinstance(approx, dict), "approx must be an object")
    if isinstance(approx, dict):
        groups = approx.get("groups")
        check(isinstance(groups, list), "approx.groups must be a list")
        for i, group in enumerate(groups or []):
            where = f"approx.groups[{i}]"
            if not isinstance(group, dict):
                problems.append(f"{where} must be an object")
                continue
            check(
                isinstance(group.get("group"), str) and group["group"],
                f"{where}.group must be a non-empty string",
            )
            rows = group.get("rows")
            check(
                isinstance(rows, list) and rows,
                f"{where}.rows must be a non-empty list",
            )
            for j, row in enumerate(rows or []):
                where_row = f"{where}.rows[{j}]"
                if not isinstance(row, dict):
                    problems.append(f"{where_row} must be an object")
                    continue
                check(
                    row.get("mode") in ("exact", "approx"),
                    f"{where_row}.mode must be 'exact' or 'approx'",
                )
                mean = row.get("mean_s")
                check(
                    isinstance(mean, (int, float)) and mean >= 0,
                    f"{where_row}.mean_s must be a non-negative number",
                )
                ratio = row.get("vs_exact")
                check(
                    ratio is None
                    or (isinstance(ratio, (int, float)) and ratio >= 0),
                    f"{where_row}.vs_exact must be null or non-negative",
                )
                error = row.get("relative_error")
                check(
                    error is None
                    or (isinstance(error, (int, float)) and error >= 0),
                    f"{where_row}.relative_error must be null or "
                    "non-negative",
                )
                epsilon = row.get("epsilon")
                check(
                    epsilon is None
                    or (isinstance(epsilon, (int, float)) and epsilon > 0),
                    f"{where_row}.epsilon must be null or positive",
                )
                samples = row.get("samples")
                check(
                    samples is None
                    or (isinstance(samples, int) and samples >= 0),
                    f"{where_row}.samples must be null or a "
                    "non-negative integer",
                )
        max_error = approx.get("max_relative_error")
        check(
            max_error is None
            or (isinstance(max_error, (int, float)) and max_error >= 0),
            "approx.max_relative_error must be null or non-negative",
        )
        within = approx.get("within_epsilon")
        check(
            within is None or isinstance(within, bool),
            "approx.within_epsilon must be null or a boolean",
        )
    service = report.get("service")
    if service is not None:
        check(isinstance(service, dict), "service must be an object")
        if isinstance(service, dict):
            check(
                service.get("schema") == "repro-load/1",
                "service.schema must be 'repro-load/1'",
            )
            scenarios = service.get("scenarios")
            check(
                isinstance(scenarios, list) and scenarios,
                "service.scenarios must be a non-empty list",
            )
            for i, row in enumerate(scenarios or []):
                where = f"service.scenarios[{i}]"
                if not isinstance(row, dict):
                    problems.append(f"{where} must be an object")
                    continue
                check(
                    isinstance(row.get("mix"), str) and row["mix"],
                    f"{where}.mix must be a non-empty string",
                )
                for key in (
                    "offered",
                    "admitted",
                    "completed",
                    "killed",
                    "errors",
                    "resumes",
                    "degraded",
                    "orphaned_checkpoints",
                ):
                    value = row.get(key)
                    check(
                        isinstance(value, int) and value >= 0,
                        f"{where}.{key} must be a non-negative integer",
                    )
                check(
                    row.get("killed") == 0,
                    f"{where}.killed must be 0 (suspend, never kill)",
                )
                shed = row.get("shed")
                check(isinstance(shed, dict), f"{where}.shed must be an object")
                if isinstance(shed, dict):
                    for reason, count in shed.items():
                        check(
                            isinstance(count, int) and count >= 0,
                            f"{where}.shed[{reason!r}] must be a "
                            "non-negative integer",
                        )
                rate = row.get("shed_rate")
                check(
                    isinstance(rate, (int, float)) and 0 <= rate <= 1,
                    f"{where}.shed_rate must be in [0, 1]",
                )
                for key in ("latency_p50_s", "latency_p99_s", "throughput_rps"):
                    value = row.get(key)
                    check(
                        value is None
                        or (isinstance(value, (int, float)) and value >= 0),
                        f"{where}.{key} must be null or non-negative",
                    )
            service_totals = service.get("totals")
            check(
                isinstance(service_totals, dict),
                "service.totals must be an object",
            )
            if isinstance(service_totals, dict):
                check(
                    service_totals.get("killed") == 0,
                    "service.totals.killed must be 0",
                )
                check(
                    service_totals.get("answers_ok") is True,
                    "service.totals.answers_ok must be true",
                )
    delta = report.get("baseline_delta")
    if delta is not None:
        check(isinstance(delta, dict), "baseline_delta must be an object")
        if isinstance(delta, dict):
            check(
                isinstance(delta.get("file"), str),
                "baseline_delta.file must be a string",
            )
            check(
                isinstance(delta.get("common"), int) and delta["common"] >= 0,
                "baseline_delta.common must be a non-negative integer",
            )
            check(
                isinstance(delta.get("rows"), list),
                "baseline_delta.rows must be a list",
            )
    return problems


def main(argv: "Optional[List[str]]" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the benchmark suites and emit BENCH_pr10.json"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke pass: small parameter points only, one round each",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_pr10.json"),
        metavar="FILE",
        help="where to write the report (default: BENCH_pr10.json)",
    )
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / "BENCH_pr9.json"),
        metavar="FILE",
        help="earlier report to diff against (default: BENCH_pr9.json; "
        "skipped silently when the file does not exist)",
    )
    parser.add_argument(
        "--no-service",
        action="store_true",
        help="skip the multi-tenant load harness (the 'service' section); "
        "-k filtered runs skip it automatically",
    )
    parser.add_argument(
        "--routing-gate",
        type=float,
        metavar="RATE",
        help="fail (exit 1) when the report's routing mispick rate exceeds "
        "RATE (e.g. 0.10); applies to --validate too",
    )
    parser.add_argument(
        "-k",
        dest="select",
        metavar="EXPR",
        help="pytest -k selection forwarded to the suites",
    )
    parser.add_argument(
        "--validate",
        metavar="FILE",
        help="validate an existing report against the schema and exit",
    )
    args = parser.parse_args(argv)

    if args.validate:
        report = json.loads(Path(args.validate).read_text())
        problems = validate_report(report)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        print(
            f"{args.validate}: valid {SCHEMA_NAME} report with "
            f"{report['totals']['benchmarks']} benchmark(s)"
        )
        return _routing_gate(report, args.routing_gate)

    report = run_benchmarks(quick=args.quick, select=args.select)
    if not args.no_service and not args.select:
        report["service"] = service_section(quick=args.quick)
    baseline_path = Path(args.baseline) if args.baseline else None
    if baseline_path is not None and baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        report["baseline_delta"] = baseline_delta(
            report, baseline, baseline_path.name
        )
    problems = validate_report(report)
    if problems:
        for problem in problems:
            print(f"internal schema violation: {problem}", file=sys.stderr)
        return 1
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    totals = report["totals"]
    rate = totals["memo_hit_rate"]
    rate_text = f"{rate:.1%}" if rate is not None else "n/a"
    plan_rate = totals["plan_cache_hit_rate"]
    plan_text = f"{plan_rate:.1%}" if plan_rate is not None else "n/a"
    print(
        f"wrote {output}: {totals['benchmarks']} benchmark(s), "
        f"{totals['wall_s']:.2f}s measured wall time "
        f"({totals['compile_s']:.3f}s compiling plans), "
        f"memo hit rate {rate_text}, plan cache hit rate {plan_text}"
    )
    for line in parallel_table(report["parallel"]):
        print(line)
    for line in retry_table(report["retry_overhead"]):
        print(line)
    for line in resume_table(report["resume_overhead"]):
        print(line)
    for line in routing_table(report["routing"]):
        print(line)
    for line in kernel_table(report["kernels"]):
        print(line)
    for line in approx_table(report["approx"]):
        print(line)
    if "service" in report:
        for line in service_table(report["service"]):
            print(line)
    if "baseline_delta" in report:
        for line in delta_table(report["baseline_delta"]):
            print(line)
    return _routing_gate(report, args.routing_gate)


def _routing_gate(report: Dict, gate: "Optional[float]") -> int:
    """Exit-code check for CI: mispick rate must not exceed ``gate``."""
    if gate is None:
        return 0
    rate = (report.get("routing") or {}).get("mispick_rate")
    if rate is None:
        print("routing gate: no auto decisions recorded, passing trivially")
        return 0
    if rate > gate:
        print(
            f"routing gate: mispick rate {rate:.1%} exceeds {gate:.1%}",
            file=sys.stderr,
        )
        return 1
    print(f"routing gate: mispick rate {rate:.1%} <= {gate:.1%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
