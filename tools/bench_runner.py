"""Headless benchmark runner: execute the ``benchmarks/`` suites and emit
a machine-readable ``BENCH_pr2.json``.

The runner drives pytest-benchmark as a subprocess, harvests its raw JSON
plus the per-benchmark engine metrics that ``benchmarks/conftest.py``
attaches to ``extra_info`` (see ``REPRO_BENCH_METRICS``), and condenses
everything into a small, stable report::

    {
      "schema": "repro-bench/2",
      "quick": true,
      "benchmarks": [
        {"name": "...", "module": "bench_covers", "mean_s": ..., ...,
         "metrics": {"counters": {...}, "histograms": {...}},
         "memo_hit_rate": 0.93},
        ...
      ],
      "totals": {"benchmarks": N, "wall_s": ..., "memo_hit_rate": ...}
    }

Usage::

    python tools/bench_runner.py --quick              # smoke pass (seconds)
    python tools/bench_runner.py                      # full pass (minutes)
    python tools/bench_runner.py --validate BENCH_pr2.json

``--quick`` selects the small parameter points (via ``REPRO_BENCH_QUICK``;
the ceilings live in ``benchmarks/conftest.py``) and caps rounds, so CI can
afford it on every push.  ``--validate`` checks an existing report against
the schema without running anything — the CI smoke job uses it to keep the
emitted artifact honest.  The schema validator is hand-rolled: no
``jsonschema`` dependency.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent

SCHEMA_NAME = "repro-bench/2"

#: Extra pytest flags for --quick: one round per benchmark, warmup off.
QUICK_FLAGS = (
    "--benchmark-min-rounds=1",
    "--benchmark-max-time=0.25",
    "--benchmark-warmup=off",
)


def run_benchmarks(
    quick: bool,
    select: "Optional[str]" = None,
    extra_args: "Optional[List[str]]" = None,
) -> Dict:
    """Run the suites, return the condensed report dict.

    Raises :class:`RuntimeError` when pytest fails for a reason other than
    "no tests collected for this filter".
    """
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        raw_path = Path(tmp) / "pytest-benchmark.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            "benchmarks/",
            "--benchmark-only",
            f"--benchmark-json={raw_path}",
            "-q",
            "-p",
            "no:cacheprovider",
        ]
        if quick:
            command.extend(QUICK_FLAGS)
        if select:
            command.extend(["-k", select])
        if extra_args:
            command.extend(extra_args)

        env = dict(os.environ)
        env["REPRO_BENCH_METRICS"] = "1"
        if quick:
            env["REPRO_BENCH_QUICK"] = "1"
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )

        completed = subprocess.run(
            command,
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        # Exit code 5 is "no tests collected" (an over-narrow -k filter);
        # everything else non-zero is a genuine failure.
        if completed.returncode not in (0, 5):
            sys.stderr.write(completed.stdout)
            raise RuntimeError(
                f"pytest exited with code {completed.returncode}"
            )
        raw = (
            json.loads(raw_path.read_text())
            if raw_path.exists()
            else {"benchmarks": []}
        )
    return condense(raw, quick=quick)


def condense(raw: Dict, quick: bool) -> Dict:
    """Fold a pytest-benchmark JSON payload into the repro-bench schema."""
    benchmarks: List[Dict] = []
    total_wall = 0.0
    memo_hits = 0
    memo_misses = 0
    for entry in raw.get("benchmarks", []):
        stats = entry.get("stats", {})
        extra = dict(entry.get("extra_info", {}))
        metrics = extra.pop("metrics", None)
        memo_hit_rate = extra.pop("memo_hit_rate", None)
        mean = float(stats.get("mean", 0.0))
        rounds = int(stats.get("rounds", 0))
        total_wall += mean * rounds
        if metrics:
            counters = metrics.get("counters", {})
            memo_hits += sum(
                v for k, v in counters.items() if k.endswith(".memo.hit")
            )
            memo_misses += sum(
                v for k, v in counters.items() if k.endswith(".memo.miss")
            )
        benchmarks.append(
            {
                "name": entry.get("name", ""),
                "module": Path(entry.get("fullname", "")).name.split("::")[0]
                .removesuffix(".py"),
                "group": entry.get("group"),
                "mean_s": mean,
                "stddev_s": float(stats.get("stddev", 0.0)),
                "min_s": float(stats.get("min", 0.0)),
                "rounds": rounds,
                "extra_info": extra,
                "metrics": metrics,
                "memo_hit_rate": memo_hit_rate,
            }
        )
    total = memo_hits + memo_misses
    report = {
        "schema": SCHEMA_NAME,
        "quick": quick,
        "machine_info": raw.get("machine_info", {}),
        "benchmarks": benchmarks,
        "totals": {
            "benchmarks": len(benchmarks),
            "wall_s": total_wall,
            "memo_hits": memo_hits,
            "memo_misses": memo_misses,
            "memo_hit_rate": (memo_hits / total) if total else None,
        },
    }
    return report


# ---------------------------------------------------------------------------
# Schema validation (hand-rolled; no jsonschema dependency)
# ---------------------------------------------------------------------------


def validate_report(report: Dict) -> List[str]:
    """Return a list of schema violations (empty means valid)."""
    problems: List[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    check(isinstance(report, dict), "report must be an object")
    if not isinstance(report, dict):
        return problems
    check(report.get("schema") == SCHEMA_NAME, f"schema must be {SCHEMA_NAME!r}")
    check(isinstance(report.get("quick"), bool), "quick must be a boolean")
    benchmarks = report.get("benchmarks")
    check(isinstance(benchmarks, list), "benchmarks must be a list")
    for i, bench in enumerate(benchmarks or []):
        where = f"benchmarks[{i}]"
        if not isinstance(bench, dict):
            problems.append(f"{where} must be an object")
            continue
        check(
            isinstance(bench.get("name"), str) and bench["name"],
            f"{where}.name must be a non-empty string",
        )
        check(isinstance(bench.get("module"), str), f"{where}.module must be a string")
        for key in ("mean_s", "stddev_s", "min_s"):
            value = bench.get(key)
            check(
                isinstance(value, (int, float)) and value >= 0,
                f"{where}.{key} must be a non-negative number",
            )
        check(
            isinstance(bench.get("rounds"), int) and bench["rounds"] >= 1,
            f"{where}.rounds must be a positive integer",
        )
        rate = bench.get("memo_hit_rate")
        check(
            rate is None or (isinstance(rate, (int, float)) and 0 <= rate <= 1),
            f"{where}.memo_hit_rate must be null or in [0, 1]",
        )
        metrics = bench.get("metrics")
        if metrics is not None:
            check(
                isinstance(metrics, dict)
                and isinstance(metrics.get("counters"), dict)
                and isinstance(metrics.get("histograms"), dict),
                f"{where}.metrics must have counters and histograms objects",
            )
            if isinstance(metrics, dict):
                for name, value in (metrics.get("counters") or {}).items():
                    check(
                        isinstance(value, int) and value >= 0,
                        f"{where}.metrics.counters[{name!r}] must be a "
                        "non-negative integer",
                    )
    totals = report.get("totals")
    check(isinstance(totals, dict), "totals must be an object")
    if isinstance(totals, dict):
        check(
            totals.get("benchmarks") == len(benchmarks or []),
            "totals.benchmarks must equal len(benchmarks)",
        )
        wall = totals.get("wall_s")
        check(
            isinstance(wall, (int, float)) and wall >= 0,
            "totals.wall_s must be a non-negative number",
        )
        rate = totals.get("memo_hit_rate")
        check(
            rate is None or (isinstance(rate, (int, float)) and 0 <= rate <= 1),
            "totals.memo_hit_rate must be null or in [0, 1]",
        )
    return problems


def main(argv: "Optional[List[str]]" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the benchmark suites and emit BENCH_pr2.json"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke pass: small parameter points only, one round each",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_pr2.json"),
        metavar="FILE",
        help="where to write the report (default: BENCH_pr2.json)",
    )
    parser.add_argument(
        "-k",
        dest="select",
        metavar="EXPR",
        help="pytest -k selection forwarded to the suites",
    )
    parser.add_argument(
        "--validate",
        metavar="FILE",
        help="validate an existing report against the schema and exit",
    )
    args = parser.parse_args(argv)

    if args.validate:
        report = json.loads(Path(args.validate).read_text())
        problems = validate_report(report)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        print(
            f"{args.validate}: valid {SCHEMA_NAME} report with "
            f"{report['totals']['benchmarks']} benchmark(s)"
        )
        return 0

    report = run_benchmarks(quick=args.quick, select=args.select)
    problems = validate_report(report)
    if problems:
        for problem in problems:
            print(f"internal schema violation: {problem}", file=sys.stderr)
        return 1
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    totals = report["totals"]
    rate = totals["memo_hit_rate"]
    rate_text = f"{rate:.1%}" if rate is not None else "n/a"
    print(
        f"wrote {output}: {totals['benchmarks']} benchmark(s), "
        f"{totals['wall_s']:.2f}s measured wall time, "
        f"memo hit rate {rate_text}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
