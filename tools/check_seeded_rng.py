"""Lint: every random draw in ``src/repro`` must come from a seeded
``random.Random`` instance.

The determinism contract (docs/ENGINES.md, approx tier; ISSUE 9) says
identical ``(query, structure, seed, epsilon, delta)`` inputs yield
byte-identical results on any backend.  One call into the *module-level*
``random`` API — ``random.random()``, ``random.randint(...)``,
``random.shuffle(...)`` — silently breaks that: those functions share a
process-global generator whose state depends on import order, other
callers, and worker scheduling.  This checker walks the AST of every
library module and rejects any use of the module-level API; constructing
``random.Random(seed)`` (or subclassing it) is the one allowed touch
point.

Usage::

    python tools/check_seeded_rng.py            # lints src/repro
    python tools/check_seeded_rng.py PATH ...   # lints specific trees

Exit status 0 when clean, 1 with ``file:line: message`` diagnostics
otherwise.  Pure stdlib, AST-only (nothing is imported or executed), so
CI can run it before the test matrix.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The only attribute of the ``random`` module library code may touch.
ALLOWED_ATTRS = frozenset({"Random"})


def check_source(source: str, filename: str) -> List[Tuple[int, str]]:
    """Return ``(line, message)`` pairs for banned uses of ``random``."""
    tree = ast.parse(source, filename=filename)
    problems: List[Tuple[int, str]] = []
    #: Local names the module-level generator hides behind (``import
    #: random``, ``import random as rnd``).
    module_aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    module_aliases.add(alias.asname or "random")
        elif isinstance(node, ast.ImportFrom):
            if node.module != "random" or node.level:
                continue
            for alias in node.names:
                if alias.name not in ALLOWED_ATTRS:
                    problems.append(
                        (
                            node.lineno,
                            f"from random import {alias.name} uses the "
                            "process-global generator; construct "
                            "random.Random(seed) instead",
                        )
                    )
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        value = node.value
        if not isinstance(value, ast.Name) or value.id not in module_aliases:
            continue
        if node.attr in ALLOWED_ATTRS:
            continue
        problems.append(
            (
                node.lineno,
                f"random.{node.attr} draws from the process-global "
                "generator; use an explicit random.Random(seed)",
            )
        )
    return sorted(problems)


def iter_sources(roots: List[Path]) -> Iterator[Path]:
    for root in roots:
        if root.is_file():
            yield root
        else:
            yield from sorted(root.rglob("*.py"))


def main(argv: "List[str] | None" = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    roots = (
        [Path(arg) for arg in argv]
        if argv
        else [REPO_ROOT / "src" / "repro"]
    )
    failures = 0
    for path in iter_sources(roots):
        problems = check_source(path.read_text(encoding="utf-8"), str(path))
        for line, message in problems:
            try:
                shown = path.relative_to(REPO_ROOT)
            except ValueError:
                shown = path
            print(f"{shown}:{line}: {message}", file=sys.stderr)
        failures += len(problems)
    if failures:
        print(f"{failures} unseeded-RNG use(s) found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
