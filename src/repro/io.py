"""Loading and saving structures — the library's file-format surface.

Two formats:

* **JSON** (lossless): ``{"signature": {"E": 2, ...}, "universe": [...],
  "relations": {"E": [[a, b], ...], ...}}``.  Universe elements must be
  JSON scalars (strings/numbers); tuples are arrays.
* **Edge lists** (graphs only): one ``u v`` pair per whitespace-separated
  line, ``#`` comments allowed; vertices are strings unless they all parse
  as integers.

Both loaders validate their input *before* handing it to the
:class:`~repro.structures.Structure` constructor: duplicate universe
elements, tuples over unknown elements, arity mismatches, and malformed
edge-list lines all fail with :class:`FormatError` carrying a line or
position hint — never with a raw traceback from deep inside the library.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from .errors import ReproError
from .structures.builders import graph_structure
from .structures.signature import Signature
from .structures.structure import Structure

PathLike = Union[str, Path]


class FormatError(ReproError):
    """A structure file was malformed."""


def structure_to_json(structure: Structure) -> Dict:
    """A JSON-serialisable dictionary representing the structure."""
    return {
        "signature": {s.name: s.arity for s in structure.signature},
        "universe": list(structure.universe_order),
        "relations": {
            symbol.name: sorted([list(t) for t in rel], key=repr)
            for symbol, rel in structure.relations().items()
        },
    }


def structure_from_json(data: Dict) -> Structure:
    """Inverse of :func:`structure_to_json` (with validation).

    Malformed documents fail with :class:`FormatError` carrying a position
    hint (``universe[3]``, ``relations['E'][2]``, ...) so corrupt files can
    be repaired without spelunking.
    """
    if not isinstance(data, dict):
        raise FormatError("expected a JSON object")
    for key in ("signature", "universe", "relations"):
        if key not in data:
            raise FormatError(f"missing key {key!r}")
    if not isinstance(data["signature"], dict):
        raise FormatError("'signature' must map names to arities")
    try:
        signature = Signature.of(**{str(k): int(v) for k, v in data["signature"].items()})
    except (TypeError, ValueError) as error:
        raise FormatError(f"bad signature: {error}") from None

    if not isinstance(data["universe"], list):
        raise FormatError("'universe' must be an array of elements")
    seen = set()
    for index, element in enumerate(data["universe"]):
        if isinstance(element, (list, dict)):
            raise FormatError(
                f"universe[{index}]: elements must be JSON scalars, got "
                f"{type(element).__name__}"
            )
        if element in seen:
            raise FormatError(f"universe[{index}]: duplicate element {element!r}")
        seen.add(element)

    if not isinstance(data["relations"], dict):
        raise FormatError("'relations' must map relation names to tuple arrays")
    arities = {s.name: s.arity for s in signature}
    relations = {}
    for name, tuples in data["relations"].items():
        if name not in arities:
            raise FormatError(
                f"relations[{name!r}]: not declared in the signature"
            )
        if not isinstance(tuples, list):
            raise FormatError(f"relations[{name!r}]: must be an array of tuples")
        checked = []
        for index, raw in enumerate(tuples):
            where = f"relations[{name!r}][{index}]"
            if not isinstance(raw, list):
                raise FormatError(f"{where}: tuples must be arrays, got {raw!r}")
            if len(raw) != arities[name]:
                raise FormatError(
                    f"{where}: has {len(raw)} entries, but {name} has "
                    f"arity {arities[name]}"
                )
            for position, entry in enumerate(raw):
                if isinstance(entry, (list, dict)) or entry not in seen:
                    raise FormatError(
                        f"{where}: entry {position} is {entry!r}, "
                        "which is not a universe element"
                    )
            checked.append(tuple(raw))
        relations[name] = checked
    return Structure(signature, data["universe"], relations)


def save_structure(structure: Structure, path: PathLike) -> None:
    Path(path).write_text(json.dumps(structure_to_json(structure), indent=2))


def load_structure(path: PathLike) -> Structure:
    """Load a structure from a ``.json`` file or an edge-list file."""
    text = Path(path).read_text()
    if str(path).endswith(".json"):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise FormatError(f"invalid JSON: {error}") from None
        return structure_from_json(data)
    return parse_edge_list(text)


def parse_edge_list(text: str) -> Structure:
    """Parse an edge-list graph: ``u v`` per line, ``#`` comments."""
    edges: List = []
    vertices: List = []
    seen = set()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) == 1:
            names = parts  # isolated vertex
        elif len(parts) == 2:
            names = parts
            edges.append((parts[0], parts[1]))
        else:
            raise FormatError(
                f"line {line_number}: expected 'u v' or a single vertex, got {raw!r}"
            )
        for name in names:
            if name not in seen:
                seen.add(name)
                vertices.append(name)
    if not vertices:
        raise FormatError("edge list defines no vertices")
    if all(_is_int(v) for v in vertices):
        mapping = {v: int(v) for v in vertices}
        vertices = [mapping[v] for v in vertices]
        edges = [(mapping[u], mapping[v]) for u, v in edges]
    return graph_structure(vertices, edges)


def _is_int(text: str) -> bool:
    try:
        int(text)
    except ValueError:
        return False
    return True
