"""Cached per-structure statistics for the cost model.

:class:`StructureStats` summarises a :class:`~repro.structures.structure.
Structure` for cardinality estimation: relation cardinalities, degree
histogram of the Gaifman graph, connected-component count and ball-size
growth estimates.  The summary participates in the structure's cache
contract (see the ``Structure`` docstring):

* it is cached on the instance (``structure._stats``) and served by
  :func:`structure_stats` without recomputation;
* :meth:`Structure.invalidate_caches` drops it together with the
  adjacency/index caches, so in-place mutation can never leave the router
  reading stale cardinalities;
* copy-on-write updates via :meth:`Structure.with_tuple` *derive* the
  statistics incrementally (:meth:`StructureStats.derive`): the cheap
  exact parts — order, size, relation cardinalities — are adjusted by the
  delta, the lazy parts (degree summary, components) are dropped and
  recomputed on demand against the derived structure's adjacency, which
  ``with_tuple`` itself maintains incrementally.

Everything here is exact — the *estimation* (combining these numbers into
cardinality bounds and engine costs) lives in :mod:`repro.cost.model`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..obs import active_metrics
from ..structures.structure import Structure

__all__ = ["DegreeSummary", "StructureStats", "structure_stats"]


@dataclass(frozen=True)
class DegreeSummary:
    """Degree distribution of the Gaifman graph (exact, lazily built)."""

    mean: float
    max: int
    #: ``histogram[d]`` = number of elements of Gaifman degree ``d``.
    histogram: Dict[int, int]

    @classmethod
    def from_structure(cls, structure: Structure) -> "DegreeSummary":
        histogram: Dict[int, int] = {}
        total = 0
        peak = 0
        for neighbours in structure.adjacency().values():
            d = len(neighbours)
            histogram[d] = histogram.get(d, 0) + 1
            total += d
            if d > peak:
                peak = d
        order = structure.order()
        return cls(
            mean=total / order if order else 0.0, max=peak, histogram=histogram
        )


class StructureStats:
    """Statistics of one structure, cheap parts eager, graph parts lazy.

    The eager parts (``order``, ``size``, ``relation_cards``) are O(number
    of relations) to build; the lazy parts touch :meth:`Structure.adjacency`
    (O(size) the first time) and are computed only when a cost estimate
    actually needs them.
    """

    __slots__ = (
        "order",
        "size",
        "relation_cards",
        "_structure",
        "_degree",
        "_components",
        "_distinct",
    )

    def __init__(
        self,
        structure: Structure,
        order: int,
        size: int,
        relation_cards: Dict[str, int],
    ):
        self.order = order
        self.size = size
        self.relation_cards = relation_cards
        self._structure = structure
        self._degree: Optional[DegreeSummary] = None
        self._components: Optional[int] = None
        self._distinct: Dict[str, tuple] = {}

    @classmethod
    def from_structure(cls, structure: Structure) -> "StructureStats":
        cards = {
            symbol.name: len(rel) for symbol, rel in structure.relations().items()
        }
        return cls(structure, structure.order(), structure.size(), cards)

    # -- accessors ------------------------------------------------------------

    def relation_card(self, name: str) -> int:
        """Exact cardinality of a relation (0 for unknown symbols — an
        unknown symbol can only be a not-yet-materialised aux relation,
        which starts empty)."""
        return self.relation_cards.get(name, 0)

    def degree(self) -> DegreeSummary:
        if self._degree is None:
            self._degree = DegreeSummary.from_structure(self._structure)
        return self._degree

    def distinct_per_column(self, name: str) -> tuple:
        """Distinct-value count per position of a relation, read off the
        columnar per-position indexes (no relation rescan; the index is
        shared with every other consumer of the columnar view).  Lazy per
        relation; empty tuple for unknown symbols (see
        :meth:`relation_card`).  Like the degree/component summaries this
        is *not* carried across :meth:`derive` — a derived structure's
        counts are rebuilt against its own relations, keeping the
        ``cost.stats.derived`` fast path honest."""
        cached = self._distinct.get(name)
        if cached is None:
            if name not in self._structure.signature:
                return ()
            cached = self._structure.columnar().distinct_per_column(name)
            self._distinct[name] = cached
            metrics = active_metrics()
            if metrics is not None:
                metrics.inc("cost.stats.distinct.build")
        return cached

    def component_count(self) -> int:
        """Number of connected components of the Gaifman graph."""
        if self._components is None:
            adjacency = self._structure.adjacency()
            seen: set = set()
            components = 0
            for start in self._structure.universe_order:
                if start in seen:
                    continue
                components += 1
                frontier = [start]
                seen.add(start)
                while frontier:
                    node = frontier.pop()
                    for neighbour in adjacency.get(node, ()):  # pragma: no branch
                        if neighbour not in seen:
                            seen.add(neighbour)
                            frontier.append(neighbour)
            self._components = components
        return self._components

    def ball_size_estimate(self, radius: int) -> float:
        """Estimated ``|ball(a, radius)|``: mean-degree branching capped at
        the universe order.  Exact at radius 0; a heuristic beyond."""
        if radius <= 0:
            return 1.0
        mean = self.degree().mean
        estimate = 1.0
        frontier = 1.0
        for _ in range(radius):
            frontier *= max(mean, 0.0)
            estimate += frontier
            if estimate >= self.order:
                return float(self.order)
        return min(float(self.order), estimate)

    def cover_estimate(self, radius: int) -> Dict[str, float]:
        """Predicted shape of a radius-``radius`` neighbourhood cover:
        cluster count and per-cluster size, from the degree distribution.
        (When a cover is actually built the real numbers win; this is the
        routing-time stand-in.)"""
        cluster_size = self.ball_size_estimate(radius)
        clusters = float(self.order)
        return {"clusters": clusters, "cluster_size": cluster_size}

    def index_fanout(self, name: str) -> float:
        """Mean tuples per index key of a relation — the expected pool size
        an index-guard lookup yields."""
        card = self.relation_card(name)
        if card == 0:
            return 0.0
        return max(1.0, card / max(self.order, 1))

    def max_relation_card(self) -> int:
        return max(self.relation_cards.values(), default=0)

    # -- copy-on-write derivation ---------------------------------------------

    def derive(
        self, relation_name: str, present: bool, derived_structure: Structure
    ) -> "StructureStats":
        """Statistics for a one-tuple delta (the :meth:`Structure.with_tuple`
        leg of the cache contract).  Exact parts are adjusted in O(1); the
        degree/component summaries are dropped — they are rebuilt lazily
        from the *derived* structure's adjacency, never the parent's."""
        delta = 1 if present else -1
        cards = dict(self.relation_cards)
        cards[relation_name] = max(0, cards.get(relation_name, 0) + delta)
        derived = StructureStats(
            derived_structure, self.order, self.size + delta, cards
        )
        metrics = active_metrics()
        if metrics is not None:
            metrics.inc("cost.stats.derived")
        return derived


def structure_stats(structure: Structure) -> StructureStats:
    """The cached :class:`StructureStats` of a structure (built on first
    use, invalidated by ``invalidate_caches()``, derived by ``with_tuple``)."""
    stats = structure._stats
    if isinstance(stats, StructureStats) and stats._structure is structure:
        metrics = active_metrics()
        if metrics is not None:
            metrics.inc("cost.stats.reuse")
        return stats
    stats = StructureStats.from_structure(structure)
    structure._stats = stats
    metrics = active_metrics()
    if metrics is not None:
        metrics.inc("cost.stats.build")
    return stats
