"""Cardinality bounds and per-engine cost estimation over the plan IR.

Three layers, bottom-up:

* :class:`CardBound` — an interval ``[lower, upper]`` of *provable*
  cardinality bounds plus a point ``estimate`` inside it.  Bounds and
  estimates travel together but are never mixed: combinators tighten the
  provable interval only with provable arguments, while the estimate is
  free to use selectivity heuristics.
* :class:`CardinalityEstimator` — walks a formula (the same AST the
  engines evaluate) against :class:`~repro.cost.stats.StructureStats` and
  produces a :class:`CardBound` for ``#(variables). body``.  Exactness is
  preserved where the statistics allow it: counting a positive atom over
  distinct variables is the relation cardinality, and any conjunction
  gated by an empty positive atom is exactly zero.
* :class:`CostModel` — estimates the *work* (abstract step units,
  comparable across engines) each cascade stage would spend: the ``foc1``
  cost walks the compiled :class:`~repro.plan.ir.QueryPlan` — Materialise
  steps times the universe, then the Lemma 6.4 count DAG with guard-pool
  sizes from the plan's :class:`~repro.plan.ir.GuardSpec` annotations and
  memoisation amortised to one evaluation per distinct environment; the
  ``baseline`` cost models the literal Definition 3.1 recursion (a fresh
  ``n^k`` enumeration per quantifier/count node, nothing memoised); the
  ``main_algorithm`` cost models cover construction plus the per-cluster
  pattern walk with ball-growth estimates.

:class:`CardinalityLattice` keeps the two orders — provable interval
containment vs heuristic point estimates — separate, so the router can
report *why* it believes one engine is cheaper (proof or heuristic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.clterms import BasicClTerm
from ..logic.syntax import (
    And,
    Atom,
    Bottom,
    CountTerm,
    DistAtom,
    Eq,
    Exists,
    Expression,
    Forall,
    Formula,
    Iff,
    Implies,
    IntTerm,
    Not,
    Or,
    PredicateAtom,
    Term,
    Top,
    Variable,
    free_variables,
    subexpressions,
)
from ..plan.ir import (
    ComponentPlan,
    CountComplement,
    CountConstant,
    CountDecomposition,
    CountInclusionExclusion,
    CountRewrite,
    CountStep,
    QueryPlan,
)
from ..plan.normalise import flatten_conjuncts
from .stats import StructureStats

__all__ = [
    "CardBound",
    "CardinalityLattice",
    "CardinalityEstimator",
    "CostModel",
    "EngineCost",
]

#: Work-unit ceiling: estimates saturate here instead of overflowing.
_CAP = 1e18

#: Constant-factor penalty on the baseline: it re-enumerates ``n^k`` for
#: every count/quantifier node with no memoisation and no guards, so one
#: of its abstract steps does strictly less useful work than a foc1 step
#: that lands in the memo.  Calibrated against bench_foc_vs_foc1.
_BASELINE_NODE_PENALTY = 4.0

#: Fixed overhead (plan fetch, state setup) charged to the planned engine.
_FOC1_SETUP = 32.0

#: Fixed overhead (evaluator construction, validation) for the brute force.
_BASELINE_SETUP = 16.0

#: Fixed overhead (sample planning, RNG setup) for the approximate tier.
_APPROX_SETUP = 32.0

#: Cover construction cost per element per radius unit, plus merge factor.
_COVER_BUILD_UNIT = 2.0


def _clip(value: float) -> float:
    if value != value or value < 0.0:  # NaN guard
        return 0.0
    return min(value, _CAP)


@dataclass(frozen=True)
class CardBound:
    """A provable interval plus a point estimate for one cardinality.

    ``lower <= true value <= upper`` is a *proof obligation*: combinators
    only produce these from provable inputs.  ``upper`` may be ``None``
    (no non-trivial proof).  ``estimate`` is a heuristic point inside the
    interval; ``exact`` marks intervals of width zero.
    """

    lower: float
    upper: Optional[float]
    estimate: float
    exact: bool = False

    @classmethod
    def exactly(cls, value: float) -> "CardBound":
        value = _clip(value)
        return cls(lower=value, upper=value, estimate=value, exact=True)

    @classmethod
    def ranged(
        cls, lower: float, upper: Optional[float], estimate: float
    ) -> "CardBound":
        lower = _clip(lower)
        if upper is not None:
            upper = _clip(max(upper, lower))
        estimate = _clip(estimate)
        if upper is not None:
            estimate = min(max(estimate, lower), upper)
        else:
            estimate = max(estimate, lower)
        exact = upper is not None and lower == upper
        return cls(lower=lower, upper=upper, estimate=estimate, exact=exact)

    def add(self, other: "CardBound") -> "CardBound":
        upper = (
            None
            if self.upper is None or other.upper is None
            else self.upper + other.upper
        )
        return CardBound.ranged(
            self.lower + other.lower, upper, self.estimate + other.estimate
        )

    def mul(self, other: "CardBound") -> "CardBound":
        if self.upper == 0 or other.upper == 0:
            return CardBound.exactly(0)
        upper = (
            None
            if self.upper is None or other.upper is None
            else self.upper * other.upper
        )
        return CardBound.ranged(
            self.lower * other.lower, upper, self.estimate * other.estimate
        )

    def complement(self, total: float) -> "CardBound":
        """``total - self`` clamped at zero (counting ``not phi`` within a
        space of ``total`` assignments)."""
        lower = 0.0 if self.upper is None else max(0.0, total - self.upper)
        return CardBound.ranged(
            lower, max(0.0, total - self.lower), max(0.0, total - self.estimate)
        )

    def union_max(self, other: "CardBound") -> "CardBound":
        """Sound bound for a disjunction: at least the larger disjunct, at
        most the sum."""
        upper = (
            None
            if self.upper is None or other.upper is None
            else self.upper + other.upper
        )
        return CardBound.ranged(
            max(self.lower, other.lower),
            upper,
            min(
                self.estimate + other.estimate,
                upper if upper is not None else _CAP,
            ),
        )

    def provably_at_most(self, other: "CardBound") -> bool:
        """True when ``self <= other`` holds by interval containment alone."""
        return self.upper is not None and self.upper <= other.lower


class CardinalityLattice:
    """A keyed store of :class:`CardBound` facts with meet-on-record.

    Recording the same key twice *tightens*: lower bounds max, upper
    bounds min, the estimate re-clamped.  :meth:`compare` answers order
    queries and is explicit about provenance — ``("lt", True)`` is an
    interval proof, ``("lt", False)`` merely an estimate order — so the
    router can separate "provably cheaper" from "probably cheaper".
    """

    def __init__(self) -> None:
        self._bounds: Dict[str, CardBound] = {}

    def record(self, key: str, bound: CardBound) -> CardBound:
        existing = self._bounds.get(key)
        if existing is not None:
            lower = max(existing.lower, bound.lower)
            uppers = [u for u in (existing.upper, bound.upper) if u is not None]
            upper = min(uppers) if uppers else None
            bound = CardBound.ranged(lower, upper, bound.estimate)
        self._bounds[key] = bound
        return bound

    def bound(self, key: str) -> Optional[CardBound]:
        return self._bounds.get(key)

    def compare(self, a: str, b: str) -> Tuple[str, bool]:
        """Order ``a`` against ``b``: ``("lt"|"gt"|"eq"|"unknown", provable)``."""
        left = self._bounds.get(a)
        right = self._bounds.get(b)
        if left is None or right is None:
            return ("unknown", False)
        if left.exact and right.exact and left.lower == right.lower:
            return ("eq", True)
        if left.provably_at_most(right):
            return ("lt", True)
        if right.provably_at_most(left):
            return ("gt", True)
        if left.estimate < right.estimate:
            return ("lt", False)
        if left.estimate > right.estimate:
            return ("gt", False)
        return ("eq", False)

    def items(self) -> Dict[str, CardBound]:
        return dict(self._bounds)


class CardinalityEstimator:
    """Bounds for ``#(variables). body`` over one structure's statistics."""

    def __init__(
        self, stats: StructureStats, lattice: Optional[CardinalityLattice] = None
    ):
        self.stats = stats
        self.lattice = lattice if lattice is not None else CardinalityLattice()

    def count_bound(
        self, variables: Sequence[Variable], body: Formula
    ) -> CardBound:
        counted = tuple(variables)
        n = float(self.stats.order)
        space = _clip(n ** len(counted))
        bound = self._bound(body, set(counted), space)
        # The assignment space itself is always a provable ceiling.
        upper = space if bound.upper is None else min(bound.upper, space)
        return CardBound.ranged(min(bound.lower, upper), upper, bound.estimate)

    # -- recursive walk -------------------------------------------------------

    def _bound(self, body: Formula, counted: set, space: float) -> CardBound:
        n = float(self.stats.order)
        if isinstance(body, Top):
            return CardBound.exactly(space)
        if isinstance(body, Bottom):
            return CardBound.exactly(0)
        if isinstance(body, Not):
            return self._bound(body.inner, counted, space).complement(space)
        if isinstance(body, Or):
            left = self._bound(body.left, counted, space)
            right = self._bound(body.right, counted, space)
            merged = left.union_max(right)
            upper = space if merged.upper is None else min(merged.upper, space)
            return CardBound.ranged(merged.lower, upper, merged.estimate)
        if isinstance(body, Implies):
            return self._bound(
                Or(Not(body.left), body.right), counted, space
            )
        if isinstance(body, Iff):
            # No sharp combinator: fall back to the trivial interval with a
            # half-space estimate.
            return CardBound.ranged(0.0, space, space / 2.0)
        if isinstance(body, (And, Atom, DistAtom, Eq, Exists, Forall,
                             PredicateAtom, CountTerm)):
            return self._conjunction_bound(body, counted, space)
        return CardBound.ranged(0.0, space, space / 2.0)

    def _conjunction_bound(
        self, body: Formula, counted: set, space: float
    ) -> CardBound:
        """Conjunctions (and single non-boolean leaves): intersect the
        per-conjunct ceilings, each extended over the variables it does
        not constrain."""
        n = float(self.stats.order)
        conjuncts = flatten_conjuncts(body) if isinstance(body, And) else [body]
        best_upper: Optional[float] = None
        best_estimate = space
        for conjunct in conjuncts:
            atom_bound = self._leaf_bound(conjunct, counted)
            if atom_bound is None:
                continue
            touched = free_variables(conjunct) & counted
            untouched = len(counted) - len(touched)
            extension = _clip(n**untouched)
            if atom_bound.upper is not None:
                ceiling = _clip(atom_bound.upper * extension)
                if best_upper is None or ceiling < best_upper:
                    best_upper = ceiling
            best_estimate = min(best_estimate, atom_bound.estimate * extension)
        # Exact case: a single positive atom over exactly the counted
        # variables, pairwise distinct — every relation tuple is one
        # assignment and vice versa.
        if len(conjuncts) == 1 and isinstance(conjuncts[0], Atom):
            atom = conjuncts[0]
            if (
                len(set(atom.args)) == len(atom.args)
                and set(atom.args) == counted
                and len(atom.args) == len(counted)
            ):
                return CardBound.exactly(self.stats.relation_card(atom.relation))
        if best_upper is not None and best_upper <= 0.0:
            return CardBound.exactly(0)
        upper = space if best_upper is None else min(best_upper, space)
        return CardBound.ranged(0.0, upper, min(best_estimate, upper))

    def _leaf_bound(
        self, conjunct: Formula, counted: set
    ) -> Optional[CardBound]:
        """Ceiling one conjunct puts on assignments of its counted
        variables, or None when it constrains nothing provably."""
        n = float(self.stats.order)
        if isinstance(conjunct, Atom):
            touched = set(conjunct.args) & counted
            if not touched:
                return None
            card = float(self.stats.relation_card(conjunct.relation))
            return CardBound.ranged(0.0, card, card)
        if isinstance(conjunct, Eq):
            touched = {conjunct.left, conjunct.right} & counted
            if len(touched) == len({conjunct.left, conjunct.right}) and touched:
                # Both sides counted: at most n of the n^2 pairs agree.
                return CardBound.ranged(0.0, n, n)
            if touched:
                return CardBound.ranged(0.0, 1.0, 1.0)
            return None
        if isinstance(conjunct, DistAtom):
            touched = {conjunct.left, conjunct.right} & counted
            if not touched:
                return None
            ball = self.stats.ball_size_estimate(conjunct.bound)
            if len(touched) == 2:
                return CardBound.ranged(0.0, None, n * ball)
            return CardBound.ranged(0.0, None, ball)
        if isinstance(conjunct, Exists):
            inner: Formula = conjunct
            shadowed: set = set()
            while isinstance(inner, Exists):
                shadowed.add(inner.variable)
                inner = inner.inner
            # The caller reads the returned bound as a ceiling on the
            # assignments of *this conjunct's* counted free variables.
            target = (free_variables(conjunct) & counted) - shadowed
            if not target:
                return None
            best: Optional[CardBound] = None
            for piece in flatten_conjuncts(inner):
                bound = self._leaf_bound(piece, target)
                if bound is None:
                    continue
                # The piece only constrains the target variables it
                # touches; the rest range freely and multiply the ceiling.
                touched = free_variables(piece) & target
                extension = _clip(n ** (len(target) - len(touched)))
                upper = (
                    None
                    if bound.upper is None
                    else _clip(bound.upper * extension)
                )
                extended = CardBound.ranged(
                    0.0, upper, bound.estimate * extension
                )
                if best is None or extended.estimate < best.estimate:
                    best = extended
            # A witness projection can only shrink: the ceiling survives,
            # exactness does not.
            return best
        return None


@dataclass
class EngineCost:
    """Predicted work of one cascade stage, in shared abstract units."""

    engine: str
    bound: CardBound
    detail: str = ""

    @property
    def estimate(self) -> float:
        return self.bound.estimate


class CostModel:
    """Per-engine cost estimation against one structure's statistics.

    ``calibration`` maps engine name to a multiplicative correction learnt
    from observed traffic (see :class:`repro.cost.router.EngineRouter`);
    absent engines default to 1.0.
    """

    def __init__(
        self,
        stats: StructureStats,
        calibration: Optional[Dict[str, float]] = None,
    ):
        self.stats = stats
        self.calibration = calibration or {}
        self.lattice = CardinalityLattice()
        self.estimator = CardinalityEstimator(stats, self.lattice)

    def _calibrated(self, engine: str, bound: CardBound) -> CardBound:
        factor = self.calibration.get(engine, 1.0)
        if factor == 1.0:
            return bound
        # Calibration is a learnt correction, not a proof: it scales the
        # estimate only and widens nothing.
        return CardBound.ranged(bound.lower, bound.upper, bound.estimate * factor)

    # -- foc1: walk the compiled plan ----------------------------------------

    def foc1_cost(self, plan: QueryPlan) -> EngineCost:
        n = float(self.stats.order)
        total = _FOC1_SETUP
        for step in plan.steps:
            per_element = 1.0 + sum(
                self._term_cost(term, plan) for term in step.terms
            )
            total += (n if step.arity else 1.0) * per_element
        for root in plan.roots:
            total += self._expression_cost(root, plan)
        if plan.kind == "count":
            total += self._count_cost(plan.variables, plan.roots[0], plan)
        elif plan.kind == "unary_term":
            # One term evaluation per universe element, memo-amortised:
            # the DAG below the free variable re-runs per element, shared
            # subterms hit the memo after the first.
            total += n * max(1.0, self._expression_cost(plan.roots[0], plan) / 2.0)
        bound = CardBound.ranged(_FOC1_SETUP, None, _clip(total))
        cost = EngineCost("foc1", self._calibrated("foc1", bound), "plan walk")
        self.lattice.record("cost.foc1", cost.bound)
        return cost

    def _term_cost(self, term: Term, plan: QueryPlan) -> float:
        if isinstance(term, IntTerm):
            return 0.0
        if isinstance(term, CountTerm):
            return self._count_cost(term.variables, term.inner, plan)
        cost = 1.0
        for attr in ("left", "right"):
            child = getattr(term, attr, None)
            if child is not None:
                cost += self._term_cost(child, plan)
        return cost

    def _expression_cost(self, node: Expression, plan: QueryPlan) -> float:
        """Satisfaction cost of a root: node count plus embedded counts."""
        cost = 0.0
        for sub in subexpressions(node):
            cost += 1.0
            if isinstance(sub, CountTerm):
                cost += self._count_cost(sub.variables, sub.inner, plan)
        return _clip(cost)

    def _count_cost(
        self,
        variables: Tuple[Variable, ...],
        body: Formula,
        plan: QueryPlan,
        depth: int = 0,
    ) -> float:
        if depth > 32:
            return _CAP
        step = plan.counts.get(id(body))
        if step is not None and step.variables == variables:
            return self._count_step_cost(step, plan, depth)
        # Dynamic fallback: the engine would decompose on the fly — charge
        # the estimator's candidate-space estimate.
        bound = self.estimator.count_bound(variables, body)
        return _clip(max(1.0, bound.estimate))

    def _count_step_cost(
        self, step: CountStep, plan: QueryPlan, depth: int
    ) -> float:
        n = float(self.stats.order)
        if isinstance(step, CountConstant):
            return 1.0
        if isinstance(step, CountComplement):
            return 1.0 + self._count_cost(step.variables, step.inner, plan, depth + 1)
        if isinstance(step, CountInclusionExclusion):
            return 1.0 + sum(
                self._count_cost(step.variables, child, plan, depth + 1)
                for child in (step.left, step.right, step.overlap)
            )
        if isinstance(step, CountRewrite):
            return 1.0 + self._count_cost(
                step.variables, step.rewritten, plan, depth + 1
            )
        if isinstance(step, CountDecomposition):
            cost = float(len(step.gates))
            for component in step.components:
                cost += self._component_cost(component)
            # Unused variables multiply the result, not the work.
            return _clip(cost)
        return n

    def _component_cost(self, component: ComponentPlan) -> float:
        """Guarded backtracking cost of one connected component: the
        product of the per-variable candidate pools the plan's guard
        annotations predict, times the conjunct checks per assignment."""
        pools: Dict[Variable, float] = {}
        for spec in component.guards:
            pool = self._guard_pool(spec)
            current = pools.get(spec.variable)
            if current is None or pool < current:
                pools[spec.variable] = pool
        enumeration = 1.0
        for variable in component.variables:
            enumeration *= pools.get(variable, float(self.stats.order))
            if enumeration >= _CAP:
                return _CAP
        checks = max(1.0, float(len(component.conjuncts)))
        return _clip(enumeration * checks)

    def _guard_pool(self, spec) -> float:
        """Predicted candidate-pool size of one GuardSpec."""
        stats = self.stats
        if spec.kind == "equality":
            return 1.0
        if spec.kind == "ball":
            radius = _trailing_int(spec.source, "radius")
            return stats.ball_size_estimate(radius if radius is not None else 1)
        if spec.kind == "index":
            name = _relation_from_source(spec.source)
            if name is not None:
                return max(1.0, stats.index_fanout(name))
            return max(1.0, stats.degree().mean)
        # scan: materialise the largest relation once.
        return max(1.0, float(stats.max_relation_card()))

    # -- baseline: literal Definition 3.1 recursion ---------------------------

    def baseline_cost(
        self,
        expressions: Sequence[Expression],
        variables: Sequence[Variable] = (),
    ) -> EngineCost:
        """``variables`` is the operation's outer enumeration space — the
        counted variables of a ``count``, the free variable of a unary
        term, the head variables of a query — which the brute force walks
        in full on top of the per-assignment expression recursion."""
        n = float(self.stats.order)
        total = 0.0
        for expression in expressions:
            total += self._brute_cost(expression, n)
        total *= _clip(n ** len(tuple(variables)))
        # The brute force enumerates its full assignment space; that much
        # work is a provable floor, the node penalty is the heuristic part.
        floor = total
        estimate = _BASELINE_SETUP + total * _BASELINE_NODE_PENALTY
        bound = CardBound.ranged(_clip(floor), None, _clip(estimate))
        cost = EngineCost(
            "baseline", self._calibrated("baseline", bound), "Definition 3.1 recursion"
        )
        self.lattice.record("cost.baseline", cost.bound)
        return cost

    def _brute_cost(self, node: Expression, n: float) -> float:
        if isinstance(node, (Exists, Forall)):
            return _clip(1.0 + n * self._brute_cost(node.inner, n))
        if isinstance(node, CountTerm):
            inner = self._brute_cost(node.inner, n)
            return _clip(1.0 + (n ** len(node.variables)) * max(1.0, inner))
        cost = 1.0
        for attr in ("left", "right", "inner"):
            child = getattr(node, attr, None)
            if isinstance(child, (Expression,)):
                cost += self._brute_cost(child, n)
        if isinstance(node, PredicateAtom):
            cost += sum(self._brute_cost(t, n) for t in node.terms)
        return _clip(cost)

    # -- approx: sampling with planned sample counts ---------------------------

    def approx_cost(
        self,
        expressions: Sequence[Expression],
        variables: Sequence[Variable],
        epsilon: float = 0.1,
        delta: float = 0.05,
    ) -> EngineCost:
        """Predicted work of the sampling tier: planned samples times the
        per-sample satisfaction check (one Definition 3.1 recursion *per
        assignment*, no outer enumeration — that is the whole point).

        Unlike every exact engine, this cost does not grow with the
        assignment space ``n^k`` beyond the (logarithmic-in-δ) sample
        plan, which is what makes it the bounded-cost stage the router
        can fall back to on dense inputs.
        """
        from ..approx.planner import plan_samples

        n = float(self.stats.order)
        counted = tuple(variables)
        space = _clip(max(1.0, n ** len(counted)))
        body = expressions[0] if expressions else None
        bound = None
        if body is not None and isinstance(body, Formula):
            try:
                bound = self.estimator.count_bound(counted, body)
            except Exception:
                bound = None
        plan = plan_samples(space, epsilon, delta, bound=bound)
        per_sample = max(
            1.0,
            sum(self._brute_cost(e, n) for e in expressions) or 1.0,
        )
        total = _APPROX_SETUP + plan.samples * per_sample
        # Sample count and per-sample node walk are both known up front,
        # so the interval is tight: this stage cannot blow up.
        cost_bound = CardBound.ranged(
            _APPROX_SETUP, _clip(total * 2.0), _clip(total)
        )
        cost = EngineCost(
            "approx",
            self._calibrated("approx", cost_bound),
            f"{plan.samples} planned samples",
        )
        self.lattice.record("cost.approx", cost.bound)
        return cost

    # -- main algorithm: cover + per-cluster walk -----------------------------

    def main_algorithm_cost(self, term: BasicClTerm) -> EngineCost:
        stats = self.stats
        n = float(stats.order)
        radius = max(1, term.psi_radius, term.link_distance)
        cover = stats.cover_estimate(radius)
        build = _COVER_BUILD_UNIT * n * radius
        ball = stats.ball_size_estimate(term.link_distance or 1)
        width = len(term.variables)
        psi_nodes = float(sum(1 for _ in subexpressions(term.psi)))
        per_element = max(1.0, ball ** max(0, width - 1)) * max(1.0, psi_nodes)
        walk = cover["clusters"] * max(1.0, cover["cluster_size"] / max(n, 1.0)) * per_element
        total = build + n * per_element + walk
        bound = CardBound.ranged(n, None, _clip(total))
        cost = EngineCost(
            "main_algorithm",
            self._calibrated("main_algorithm", bound),
            "cover construction + cluster walk",
        )
        self.lattice.record("cost.main_algorithm", cost.bound)
        return cost


def _trailing_int(source: str, marker: str) -> Optional[int]:
    """Extract ``N`` from ``"... (marker N)"`` provenance strings."""
    token = f"({marker} "
    start = source.find(token)
    if start < 0:
        return None
    rest = source[start + len(token):]
    digits = ""
    for ch in rest:
        if ch.isdigit():
            digits += ch
        else:
            break
    return int(digits) if digits else None


def _relation_from_source(source: str) -> Optional[str]:
    """Extract the relation name from ``"relation NAME..."`` provenance."""
    if source.startswith("relation "):
        return source[len("relation "):].split()[0]
    return None
