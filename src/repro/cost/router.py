"""Cost-based engine routing for the robust cascade.

:class:`EngineRouter` predicts, per query, which cascade stage will
answer cheapest (via :class:`~repro.cost.model.CostModel`) and tells the
:class:`~repro.robust.guard.RobustEvaluator` to try that stage first.
Routing is *advisory and safe by construction*:

* it only ever reorders the runnable stages — every stage stays in the
  cascade, so a mispick costs one budget slice, never correctness;
* a decision is taken only when the predicted winner beats the stage the
  fixed cascade would try first by a decisive margin
  (:attr:`EngineRouter.margin`) *and* the confidence score clears
  :attr:`EngineRouter.threshold`; otherwise the untouched cascade order
  runs and the decision is recorded as a fallback;
* any estimation failure (missing plan, out-of-fragment input, arbitrary
  model errors) degrades to the fixed cascade, counted under
  ``cost.route.error``.

Confidence combines the separation between the best and second-best
predicted costs with the provenance of that separation: an interval
proof from the :class:`~repro.cost.model.CardinalityLattice` yields
confidence 1.0, a pure estimate order is shrunk toward the separation
ratio.  Observed stage timings feed an EWMA log-error per engine back
into the model (``calibration``), so predictions track the machine the
process actually runs on; predicted-vs-actual error lands in the
``cost.predict.error`` histogram and mispicks (the routed-first stage
failed and a later stage answered) in ``cost.route.mispick``.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..obs import active_metrics
from .model import CostModel, EngineCost

__all__ = ["EngineRouter", "RouteDecision"]

#: Work units per second assumed before any calibration has been observed.
_UNITS_PER_SECOND = 2e6


@dataclass
class RouteDecision:
    """One routing outcome, attached to the RobustReport."""

    operation: str
    chosen: str
    #: "auto" — the cascade was reordered to try ``chosen`` first;
    #: "cascade" — low confidence / weak margin, fixed order ran.
    mode: str
    confidence: float
    #: Predicted abstract work units per runnable engine.
    predicted: Dict[str, float] = field(default_factory=dict)
    #: True when the winner's interval provably undercut the runner-up.
    provable: bool = False
    reason: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "chosen": self.chosen,
            "mode": self.mode,
            "confidence": round(self.confidence, 4),
            "provable": self.provable,
            "predicted": {k: v for k, v in sorted(self.predicted.items())},
            "reason": self.reason,
        }


class EngineRouter:
    """Predicts the cheapest cascade stage and learns from the outcomes.

    Parameters
    ----------
    threshold:
        Minimum confidence for a reorder; below it the decision records
        ``mode="cascade"`` and the fixed order runs.
    margin:
        The winner must be predicted at most ``margin`` times the cost of
        the stage the fixed cascade would run first.  At the default 0.5
        a reorder needs a 2x predicted advantage — small or ambiguous
        inputs therefore keep the (well-tested) cascade order.
    alpha:
        EWMA weight for the calibration update from each observed stage.
    """

    def __init__(
        self, threshold: float = 0.6, margin: float = 0.5, alpha: float = 0.3
    ):
        self.threshold = threshold
        self.margin = margin
        self.alpha = alpha
        self._lock = threading.Lock()
        #: engine -> EWMA of log(actual_units / predicted_units).
        self._log_error: Dict[str, float] = {}

    # -- prediction -----------------------------------------------------------

    def calibration(self) -> Dict[str, float]:
        """Relative per-engine correction factors.

        Routing only ever *compares* engines, so the shared component of
        the log-error — the units-per-second guess being off for this
        machine — is removed (mean-centred) before exponentiating.
        Otherwise the first observed engine would carry the whole unit
        mismatch and look arbitrarily slow against unobserved ones.
        """
        with self._lock:
            if not self._log_error:
                return {}
            centre = sum(self._log_error.values()) / len(self._log_error)
            return {
                engine: math.exp(err - centre)
                for engine, err in self._log_error.items()
            }

    def route(
        self,
        operation: str,
        runnable: Sequence[str],
        structure,
        plan=None,
        expressions: Sequence = (),
        variables: Sequence = (),
        cl_term=None,
    ) -> Optional[RouteDecision]:
        """Predict costs for the runnable stages; None when nothing can be
        estimated (callers then run the untouched cascade)."""
        metrics = active_metrics()
        runnable = [name for name in runnable]
        if len(runnable) < 2 or structure is None:
            return None
        from .stats import structure_stats

        stats = structure_stats(structure)
        model = CostModel(stats, self.calibration())
        costs: Dict[str, EngineCost] = {}
        for name in runnable:
            cost = self._estimate(name, model, plan, expressions, variables, cl_term)
            if cost is not None:
                costs[name] = cost
        if len(costs) < 2:
            return None

        ranked: List[EngineCost] = sorted(
            costs.values(), key=lambda c: (c.estimate, c.engine)
        )
        best, second = ranked[0], ranked[1]
        order, provable = model.lattice.compare(
            f"cost.{best.engine}", f"cost.{second.engine}"
        )
        provable = provable and order == "lt"
        if provable:
            confidence = 1.0
        elif second.estimate > 0:
            separation = 1.0 - best.estimate / second.estimate
            # Heuristic-only separations never claim full confidence.
            confidence = max(0.0, min(0.95, separation))
        else:
            confidence = 0.0

        # The stage the fixed cascade would run first, among those we could
        # price: the reorder must decisively beat *it*, not the runner-up.
        cascade_first = next(name for name in runnable if name in costs)
        incumbent = costs[cascade_first]
        decisive = (
            best.engine != cascade_first
            and incumbent.estimate > 0
            and best.estimate <= self.margin * incumbent.estimate
        )

        if best.engine == cascade_first:
            mode = "auto"
            chosen = best.engine
            reason = f"cascade-first {chosen} already predicted cheapest"
        elif decisive and confidence >= self.threshold:
            mode = "auto"
            chosen = best.engine
            reason = (
                f"{chosen} predicted {best.estimate:.3g} vs "
                f"{incumbent.estimate:.3g} for {cascade_first}"
            )
        else:
            mode = "cascade"
            chosen = cascade_first
            reason = (
                f"confidence {confidence:.2f} / margin not met; "
                "fixed cascade order"
            )

        decision = RouteDecision(
            operation=operation,
            chosen=chosen,
            mode=mode,
            confidence=confidence,
            predicted={name: cost.estimate for name, cost in costs.items()},
            provable=provable,
            reason=reason,
        )
        if metrics is not None:
            metrics.inc(f"cost.route.engine.{chosen}")
            metrics.inc(
                "cost.route.auto" if mode == "auto" else "cost.route.fallback"
            )
            metrics.observe("cost.route.confidence", confidence)
        return decision

    def _estimate(
        self, name: str, model: CostModel, plan, expressions, variables, cl_term
    ) -> Optional[EngineCost]:
        try:
            if name == "foc1":
                if plan is None:
                    return None
                return model.foc1_cost(plan)
            if name == "baseline":
                if not expressions:
                    return None
                return model.baseline_cost(expressions, variables)
            if name == "main_algorithm":
                if cl_term is None:
                    return None
                return model.main_algorithm_cost(cl_term)
            if name == "approx":
                if not expressions:
                    return None
                return model.approx_cost(expressions, variables)
        except Exception:
            metrics = active_metrics()
            if metrics is not None:
                metrics.inc("cost.route.error")
            return None
        return None

    # -- feedback -------------------------------------------------------------

    def observe(
        self,
        decision: RouteDecision,
        answered_by: Optional[str],
        elapsed: float,
    ) -> None:
        """Learn from one finished cascade run: update calibration for the
        answering engine and count mispicks."""
        metrics = active_metrics()
        if (
            answered_by is not None
            and decision.mode == "auto"
            and answered_by != decision.chosen
        ):
            if metrics is not None:
                metrics.inc("cost.route.mispick")
        if answered_by is None:
            return
        predicted = decision.predicted.get(answered_by)
        if not predicted or predicted <= 0 or elapsed < 0:
            return
        actual_units = max(1.0, elapsed * _UNITS_PER_SECOND)
        log_error = math.log(actual_units / predicted)
        with self._lock:
            previous = self._log_error.get(answered_by)
            self._log_error[answered_by] = (
                log_error
                if previous is None
                else (1.0 - self.alpha) * previous + self.alpha * log_error
            )
        if metrics is not None:
            metrics.observe("cost.predict.error", abs(log_error))
