"""Observed-load saturation signal for the serving layer.

The cost model (:mod:`repro.cost.model`) predicts how expensive one
query *will* be; this module measures how loaded the service *is*.  The
two signals together drive the :mod:`repro.serve` degradation policy:
shed exactness (answer count-only requests from the sampling tier)
before shedding tenants.

The tracker is deliberately clock-free: saturation is the exponentially
weighted ratio of demand (running quanta plus queued jobs) to capacity
(scheduler worker slots), updated at every dispatch and completion.
``level() >= 1.0`` means demand has met capacity — every worker busy and
nothing queued is exactly 1.0 — and sustained overload pushes the level
above 1.  Using scheduler events instead of wall time keeps the signal
deterministic for a deterministic submission schedule, which the serving
differential gates rely on.
"""

from __future__ import annotations

__all__ = ["SaturationTracker"]


class SaturationTracker:
    """EWMA of (running + queued) / capacity over scheduler events.

    Parameters
    ----------
    capacity:
        Number of concurrent quantum slots the scheduler can fill.
    alpha:
        EWMA smoothing factor in ``(0, 1]``; higher reacts faster.  The
        default 0.4 reaches ~92% of a step change within five events —
        fast enough to catch a burst before its queue drains, slow
        enough that a single enqueue spike does not flip the policy.
    """

    def __init__(self, capacity: int, alpha: float = 0.4) -> None:
        if capacity < 1:
            raise ValueError("capacity must be a positive integer")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.capacity = capacity
        self.alpha = alpha
        self._level = 0.0
        self._events = 0

    def update(self, running: int, queued: int) -> float:
        """Fold one scheduler event in; returns the new level."""
        instant = (running + queued) / self.capacity
        if self._events == 0:
            self._level = instant
        else:
            self._level += self.alpha * (instant - self._level)
        self._events += 1
        return self._level

    def level(self) -> float:
        """The smoothed saturation level (0.0 before any event)."""
        return self._level

    @property
    def events(self) -> int:
        return self._events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SaturationTracker(capacity={self.capacity}, "
            f"level={self._level:.3f}, events={self._events})"
        )
