"""Cost-based engine selection: statistics, estimation, routing.

See docs/ARCHITECTURE.md (cost layer) for the full picture.  Public
surface:

* :func:`~repro.cost.stats.structure_stats` /
  :class:`~repro.cost.stats.StructureStats` — cached per-structure
  statistics under the Structure cache contract;
* :class:`~repro.cost.model.CostModel` /
  :class:`~repro.cost.model.CardinalityEstimator` /
  :class:`~repro.cost.model.CardBound` /
  :class:`~repro.cost.model.CardinalityLattice` — cardinality bounds and
  per-engine cost estimates over the compiled plan IR;
* :class:`~repro.cost.router.EngineRouter` /
  :class:`~repro.cost.router.RouteDecision` — the advisory routing layer
  the :class:`~repro.robust.guard.RobustEvaluator` consults in
  ``route="auto"`` mode.
"""

from .model import (
    CardBound,
    CardinalityEstimator,
    CardinalityLattice,
    CostModel,
    EngineCost,
)
from .router import EngineRouter, RouteDecision
from .saturation import SaturationTracker
from .stats import DegreeSummary, StructureStats, structure_stats

__all__ = [
    "CardBound",
    "CardinalityEstimator",
    "CardinalityLattice",
    "CostModel",
    "DegreeSummary",
    "EngineCost",
    "EngineRouter",
    "RouteDecision",
    "SaturationTracker",
    "StructureStats",
    "structure_stats",
]
