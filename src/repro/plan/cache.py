"""The plan cache: LRU over compiled :class:`~repro.plan.ir.QueryPlan`.

Keys are built by the engine facades from ``(kind, canonicalised
expressions, variables, signature, options)`` — all hashable, all
plan-owned (canonicalisation deep-copies the AST), so a cache entry never
keeps a caller's objects alive.  Hits, misses and evictions are exposed
both as instance counters (``stats()``) and through the metrics registry
(``plan.cache.hit`` / ``plan.cache.miss`` / ``plan.cache.eviction``);
compile time is observed into the ``plan.compile.seconds`` histogram so
benchmarks can split compile cost from execute cost.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Hashable

from ..obs.metrics import active_metrics, hit_rate
from .ir import QueryPlan

__all__ = ["PlanCache", "default_plan_cache"]


class PlanCache:
    """A bounded LRU mapping cache keys to compiled plans.

    The cache is thread-safe: lookup, insert and the hit/miss/eviction
    counters are serialised on an internal :class:`threading.RLock`, so
    concurrent workers sharing one cache (the parallel per-cluster path
    hammers exactly this) never corrupt the LRU order or the statistics.
    Compilation itself runs *outside* the critical section — a slow
    compile must not stall every other worker's hits — so two threads
    missing on the same key may both compile; the second insert then
    defers to the plan already in the cache, keeping plans canonical
    (one object per key) for the id-keyed memo tables downstream.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be positive")
        self.capacity = capacity
        self._plans: "OrderedDict[Hashable, QueryPlan]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def get_or_compile(
        self, key: Hashable, compile_fn: Callable[[], QueryPlan]
    ) -> QueryPlan:
        """The cached plan for ``key``, compiling (and timing) on a miss."""
        metrics = active_metrics()
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.hits += 1
                if metrics is not None:
                    metrics.inc("plan.cache.hit")
                return plan
            self.misses += 1
        if metrics is not None:
            metrics.inc("plan.cache.miss")
        started = time.perf_counter()
        plan = compile_fn()
        if metrics is not None:
            metrics.observe(
                "plan.compile.seconds", time.perf_counter() - started
            )
        with self._lock:
            existing = self._plans.get(key)
            if existing is not None:
                # Another thread compiled and inserted while we were
                # compiling; keep its plan canonical and drop ours.
                self._plans.move_to_end(key)
                return existing
            self._plans[key] = plan
            if len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self.evictions += 1
                if metrics is not None:
                    metrics.inc("plan.cache.eviction")
        return plan

    def peek(self, key: Hashable) -> "QueryPlan | None":
        """The cached plan for ``key`` without compiling, counting or
        reordering.

        A statistics-only probe for callers that must not pay compile
        time — the serving degradation policy predicts a request's cost
        from its plan only when the plan is already warm, and a peek must
        not perturb the hit/miss counters or the LRU order that the real
        evaluation path will exercise moments later.
        """
        with self._lock:
            return self._plans.get(key)

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._plans),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                # None (not 0.0) before any traffic: a cold cache has no
                # hit rate, and reporting zero would read as "all misses".
                "hit_rate": hit_rate(self.hits, self.misses),
            }

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0


_default_cache = PlanCache()


def default_plan_cache() -> PlanCache:
    """The process-wide cache engines share unless given their own."""
    return _default_cache
