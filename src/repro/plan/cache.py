"""The plan cache: LRU over compiled :class:`~repro.plan.ir.QueryPlan`.

Keys are built by the engine facades from ``(kind, canonicalised
expressions, variables, signature, options)`` — all hashable, all
plan-owned (canonicalisation deep-copies the AST), so a cache entry never
keeps a caller's objects alive.  Hits, misses and evictions are exposed
both as instance counters (``stats()``) and through the metrics registry
(``plan.cache.hit`` / ``plan.cache.miss`` / ``plan.cache.eviction``);
compile time is observed into the ``plan.compile.seconds`` histogram so
benchmarks can split compile cost from execute cost.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Hashable

from ..obs.metrics import active_metrics
from .ir import QueryPlan

__all__ = ["PlanCache", "default_plan_cache"]


class PlanCache:
    """A bounded LRU mapping cache keys to compiled plans."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be positive")
        self.capacity = capacity
        self._plans: "OrderedDict[Hashable, QueryPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._plans)

    def get_or_compile(
        self, key: Hashable, compile_fn: Callable[[], QueryPlan]
    ) -> QueryPlan:
        """The cached plan for ``key``, compiling (and timing) on a miss."""
        metrics = active_metrics()
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            self.hits += 1
            if metrics is not None:
                metrics.inc("plan.cache.hit")
            return plan
        self.misses += 1
        if metrics is not None:
            metrics.inc("plan.cache.miss")
        started = time.perf_counter()
        plan = compile_fn()
        if metrics is not None:
            metrics.observe(
                "plan.compile.seconds", time.perf_counter() - started
            )
        self._plans[key] = plan
        if len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self.evictions += 1
            if metrics is not None:
                metrics.inc("plan.cache.eviction")
        return plan

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "size": len(self._plans),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / total) if total else 0.0,
        }

    def clear(self) -> None:
        self._plans.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


_default_cache = PlanCache()


def default_plan_cache() -> PlanCache:
    """The process-wide cache engines share unless given their own."""
    return _default_cache
