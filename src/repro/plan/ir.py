"""The query-plan intermediate representation.

A :class:`QueryPlan` is the *static* half of FOC1(P) evaluation: everything
the paper's analyses decide without looking at a concrete structure's
tuples.  Three layers, mirroring the paper:

* **Stratification** (Theorem 6.10): an ordered tuple of
  :class:`MaterialiseStep` — each turns one innermost numerical predicate
  atom into a fresh 0-ary or unary auxiliary relation, stratum by stratum,
  producing the structure sequence ``A_0, A_1, ..., A_{d+1}``.
* **Counting algebra** (Lemma 6.4): per counting body, a DAG of count
  steps — complement for negation, inclusion–exclusion for disjunction,
  Implies/Iff rewrites, and :class:`CountDecomposition` for conjunctions
  (gate conjuncts, variable-disjoint :class:`ComponentPlan` factors, and
  the ``n^unused`` tail).  The intermediate rewrite nodes (the ``And``
  overlap of inclusion–exclusion, the Implies/Iff expansions) are built
  once at compile time, so the executor's memo tables see stable node
  identities instead of per-call fresh allocations.
* **Guard choices** (Remark 6.3): per component and variable, the
  statically available candidate sources — relation index, equality
  binding, distance ball — recorded as :class:`GuardSpec` annotations.
  The executor still picks the *smallest* pool dynamically (pool sizes
  depend on the structure), but the plan records what it can pick from.

Plans are immutable by construction and contract: every AST node they
reference is plan-owned (produced by :func:`repro.plan.normalise.canonicalise`
or the compiler's rewrites), never a caller's object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from ..logic.printer import pretty
from ..logic.syntax import (
    CountTerm,
    Expression,
    Formula,
    PredicateAtom,
    Term,
    Variable,
    subexpressions,
)
from ..structures.signature import Signature

__all__ = [
    "ComponentPlan",
    "CountComplement",
    "CountConstant",
    "CountDecomposition",
    "CountInclusionExclusion",
    "CountRewrite",
    "CountStep",
    "GuardSpec",
    "MaterialiseStep",
    "PlanOptions",
    "QueryPlan",
]


@dataclass(frozen=True)
class PlanOptions:
    """The engine knobs that change what a plan looks like (part of the
    cache key: a factoring-off plan is a different plan)."""

    factoring: bool = True
    guards: bool = True

    def describe(self) -> str:
        onoff = {True: "on", False: "off"}
        return f"factoring={onoff[self.factoring]} guards={onoff[self.guards]}"


@dataclass(frozen=True)
class GuardSpec:
    """One statically available candidate source for one variable
    (Remark 6.3's ball/index exploration, plus equality bindings)."""

    variable: Variable
    kind: str  # "equality" | "ball" | "index" | "scan"
    source: str  # human-readable provenance (the guarding conjunct)

    def describe(self) -> str:
        return f"{self.variable}: {self.kind} [{self.source}]"


@dataclass(frozen=True)
class ComponentPlan:
    """One variable-connected factor of a conjunction (Lemma 6.4's product
    step), with its enumeration order domain and guard annotations."""

    variables: Tuple[Variable, ...]
    conjuncts: Tuple[Formula, ...]
    guards: Tuple[GuardSpec, ...] = ()


@dataclass(frozen=True)
class MaterialiseStep:
    """Materialise one innermost predicate atom as a fresh <=1-ary
    auxiliary relation (one elimination step of Theorem 6.10)."""

    symbol: str
    arity: int  # 0 or 1
    variable: Optional[Variable]  # the single free variable when arity == 1
    predicate: str
    terms: Tuple[Term, ...]
    stratum: int

    def describe(self) -> str:
        atom = pretty(PredicateAtom(self.predicate, self.terms))
        head = f"{self.symbol}({self.variable})" if self.arity else f"{self.symbol}()"
        shape = "unary" if self.arity else "0-ary"
        return f"[stratum {self.stratum}] {head} := {atom}  ({shape})"


# -- count steps (the Lemma 6.4 DAG) ------------------------------------------


@dataclass(frozen=True)
class CountConstant:
    """``#x-bar.Top = n^k`` / ``#x-bar.Bottom = 0``."""

    variables: Tuple[Variable, ...]
    zero: bool


@dataclass(frozen=True)
class CountComplement:
    """``#x-bar.(not phi) = n^k - #x-bar.phi``."""

    variables: Tuple[Variable, ...]
    inner: Formula


@dataclass(frozen=True)
class CountInclusionExclusion:
    """``#(phi or psi) = #phi + #psi - #(phi and psi)``; ``overlap`` is the
    plan-owned ``And`` node, built once so memo identities stay stable."""

    variables: Tuple[Variable, ...]
    left: Formula
    right: Formula
    overlap: Formula


@dataclass(frozen=True)
class CountRewrite:
    """Implies/Iff expanded into the Or/And/Not algebra, once."""

    variables: Tuple[Variable, ...]
    rewritten: Formula
    rule: str  # "implies" | "iff"


@dataclass(frozen=True)
class CountDecomposition:
    """A conjunction, factored: gates (no counted variables, checked once
    per environment), variable-disjoint components (counts multiplied),
    and the free ``n^len(unused)`` tail."""

    variables: Tuple[Variable, ...]
    gates: Tuple[Formula, ...]
    components: Tuple[ComponentPlan, ...]
    unused: Tuple[Variable, ...]


CountStep = Union[
    CountConstant,
    CountComplement,
    CountInclusionExclusion,
    CountRewrite,
    CountDecomposition,
]


# -- the plan -----------------------------------------------------------------


@dataclass
class QueryPlan:
    """An immutable compiled plan for one engine operation.

    ``kind`` is one of ``model_check``, ``count``, ``ground_term``,
    ``unary_term``, ``solutions``, ``query``.  ``roots`` holds the
    stratification residue: the rewritten sentence/formula/term(s) over
    the signature expanded by the steps' auxiliary relations (for
    ``query``: the condition first, then the head terms).  ``counts``
    maps ``id(body)`` of every plan-owned counting body to its compiled
    :data:`CountStep`; the executor consults it instead of re-deriving
    the decomposition per call.
    """

    kind: str
    signature: Signature
    options: PlanOptions
    steps: Tuple[MaterialiseStep, ...]
    roots: Tuple[Expression, ...]
    variables: Tuple[Variable, ...]
    counts: Dict[int, CountStep] = field(default_factory=dict, repr=False)

    @property
    def depth(self) -> int:
        """Number of materialisation strata (the paper's ``d``)."""
        return max((step.stratum for step in self.steps), default=0)

    # -- rendering ------------------------------------------------------------

    def explain(self) -> str:
        """A stage-annotated, human-readable plan tree."""
        lines: List[str] = []
        head = f"plan: {self.kind}"
        if self.variables:
            head += f" over ({', '.join(self.variables)})"
        lines.append(head)
        relations = ", ".join(
            f"{symbol.name}/{symbol.arity}" for symbol in sorted(
                self.signature, key=lambda s: s.name
            )
        )
        lines.append(f"signature: {relations or '(empty)'}")
        lines.append(f"options: {self.options.describe()}")

        if self.steps:
            lines.append(
                f"stratification (Theorem 6.10): {len(self.steps)} "
                f"materialisation step(s), depth {self.depth}"
            )
            for step in self.steps:
                lines.append(f"  {step.describe()}")
        else:
            lines.append("stratification (Theorem 6.10): no predicate atoms")

        label = "residual root" if len(self.roots) == 1 else "residual roots"
        lines.append(f"{label}:")
        for root in self.roots:
            lines.append(f"  {_clip(pretty(root))}")

        entries = list(self._entry_counts())
        if entries:
            lines.append("count DAG (Lemma 6.4):")
            seen: Set[int] = set()
            for variables, body in entries:
                self._render_count(variables, body, "  ", lines, seen)
        return "\n".join(lines)

    def _entry_counts(self) -> Iterator[Tuple[Tuple[Variable, ...], Formula]]:
        """The counting bodies worth rendering: the plan root itself for a
        ``count`` plan, plus every counting term in steps and roots."""
        emitted: Set[int] = set()
        if self.kind == "count" and self.roots:
            emitted.add(id(self.roots[0]))
            yield self.variables, self.roots[0]  # type: ignore[misc]
        for expr in [t for s in self.steps for t in s.terms] + list(self.roots):
            for node in subexpressions(expr):
                if isinstance(node, CountTerm) and id(node.inner) not in emitted:
                    emitted.add(id(node.inner))
                    yield node.variables, node.inner

    def _render_count(
        self,
        variables: Tuple[Variable, ...],
        body: Formula,
        indent: str,
        lines: List[str],
        seen: Set[int],
    ) -> None:
        head = f"#({', '.join(variables)}). {_clip(pretty(body))}"
        step = self.counts.get(id(body))
        if id(body) in seen:
            lines.append(f"{indent}{head}  (shared, see above)")
            return
        seen.add(id(body))
        if not variables or step is None:
            note = "boolean check" if not variables else "dynamic"
            lines.append(f"{indent}{head}  ({note})")
            return
        lines.append(f"{indent}{head}")
        deeper = indent + "  "
        if isinstance(step, CountConstant):
            lines.append(f"{deeper}constant: {'0' if step.zero else 'n^k'}")
        elif isinstance(step, CountComplement):
            lines.append(f"{deeper}complement: n^k - count(inner)")
            self._render_count(step.variables, step.inner, deeper + "  ", lines, seen)
        elif isinstance(step, CountInclusionExclusion):
            lines.append(f"{deeper}inclusion-exclusion: left + right - overlap")
            for child in (step.left, step.right, step.overlap):
                self._render_count(step.variables, child, deeper + "  ", lines, seen)
        elif isinstance(step, CountRewrite):
            lines.append(f"{deeper}rewrite ({step.rule})")
            self._render_count(step.variables, step.rewritten, deeper + "  ", lines, seen)
        elif isinstance(step, CountDecomposition):
            lines.append(
                f"{deeper}decomposition: {len(step.gates)} gate(s), "
                f"{len(step.components)} component(s), "
                f"{len(step.unused)} unused variable(s)"
            )
            for gate in step.gates:
                lines.append(f"{deeper}  gate: {_clip(pretty(gate))}")
            for component in step.components:
                parts = " & ".join(_clip(pretty(c), 40) for c in component.conjuncts)
                lines.append(
                    f"{deeper}  component ({', '.join(component.variables)}): {parts}"
                )
                for guard in component.guards:
                    lines.append(f"{deeper}    guard {guard.describe()}")


def _clip(text: str, limit: int = 72) -> str:
    return text if len(text) <= limit else text[: limit - 3] + "..."
