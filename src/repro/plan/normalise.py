"""Expression normalisation for plan caching.

Two alpha-equivalent FOC(P) expressions — same shape, different bound
variable names — must compile to the *same* plan, and a cached plan must
never hold references to the caller's AST objects (the engine's memo
lifetime contract pins memoised nodes per session, so a cache that
retained caller nodes would leak them across calls).

:func:`canonicalise` solves both at once: it rebuilds the expression
bottom-up (every node is a fresh object, even unchanged leaves) while
renaming every bound variable — quantifier binders *and* counting-term
binders — to a canonical ``_b0, _b1, ...`` sequence assigned in traversal
order.  Free variables keep their names (they are part of the query's
meaning: they name count columns, unary evaluation points, and query
heads), and the generator skips any canonical name that happens to
collide with a free variable.

The module also hosts the two structural helpers shared by the compiler
and the executor: conjunction flattening and predicate-atom replacement.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping

from ..errors import FormulaError
from ..logic.syntax import (
    Add,
    And,
    Atom,
    Bottom,
    CountTerm,
    DistAtom,
    Eq,
    Exists,
    Expression,
    Forall,
    Formula,
    Iff,
    Implies,
    IntTerm,
    Mul,
    Not,
    Or,
    PredicateAtom,
    Top,
    Variable,
    free_variables,
)

__all__ = ["canonicalise", "flatten_conjuncts", "replace_atoms"]


def canonicalise(expression: Expression) -> Expression:
    """A deep, alpha-renamed copy with canonical bound-variable names.

    Properties (all property-tested in ``tests/plan/test_normalise.py``):

    * alpha-equivalent inputs produce structurally *equal* outputs, so
      frozen-dataclass equality/hashing makes them share a cache entry;
    * free variables keep their names;
    * the result shares **no** node objects with the input, so plans (and
      cache keys) built from it never pin caller ASTs alive;
    * the function is idempotent up to structural equality.
    """
    free = free_variables(expression)
    counter = itertools.count()

    def fresh() -> Variable:
        while True:
            name = f"_b{next(counter)}"
            if name not in free:
                return name

    def walk(node: Expression, env: Mapping[Variable, Variable]) -> Expression:
        if isinstance(node, Eq):
            return Eq(env.get(node.left, node.left), env.get(node.right, node.right))
        if isinstance(node, Atom):
            return Atom(node.relation, tuple(env.get(a, a) for a in node.args))
        if isinstance(node, DistAtom):
            return DistAtom(
                env.get(node.left, node.left),
                env.get(node.right, node.right),
                node.bound,
            )
        if isinstance(node, Top):
            return Top()
        if isinstance(node, Bottom):
            return Bottom()
        if isinstance(node, Not):
            return Not(walk(node.inner, env))  # type: ignore[arg-type]
        if isinstance(node, (And, Or, Implies, Iff)):
            return type(node)(
                walk(node.left, env),  # type: ignore[arg-type]
                walk(node.right, env),  # type: ignore[arg-type]
            )
        if isinstance(node, (Exists, Forall)):
            name = fresh()
            scope = dict(env)
            scope[node.variable] = name
            return type(node)(name, walk(node.inner, scope))  # type: ignore[arg-type]
        if isinstance(node, PredicateAtom):
            return PredicateAtom(
                node.predicate, tuple(walk(t, env) for t in node.terms)  # type: ignore[arg-type]
            )
        if isinstance(node, IntTerm):
            return IntTerm(node.value)
        if isinstance(node, (Add, Mul)):
            return type(node)(
                walk(node.left, env),  # type: ignore[arg-type]
                walk(node.right, env),  # type: ignore[arg-type]
            )
        if isinstance(node, CountTerm):
            names = [fresh() for _ in node.variables]
            scope = dict(env)
            scope.update(zip(node.variables, names))
            return CountTerm(tuple(names), walk(node.inner, scope))  # type: ignore[arg-type]
        raise FormulaError(f"unexpected node {type(node).__name__}")

    return walk(expression, {})


def flatten_conjuncts(formula: Formula) -> List[Formula]:
    """The conjuncts of a (nested) conjunction, ``Top`` dropped."""
    parts: List[Formula] = []

    def walk(node: Formula) -> None:
        if isinstance(node, And):
            walk(node.left)
            walk(node.right)
        elif not isinstance(node, Top):
            parts.append(node)

    walk(formula)
    return parts


def replace_atoms(
    expression: Expression, mapping: Dict[PredicateAtom, Atom]
) -> Expression:
    """Structurally replace predicate atoms (value equality) everywhere."""
    if isinstance(expression, PredicateAtom):
        replacement = mapping.get(expression)
        if replacement is not None:
            return replacement
        return PredicateAtom(
            expression.predicate,
            tuple(replace_atoms(t, mapping) for t in expression.terms),  # type: ignore[arg-type]
        )
    if isinstance(expression, (Eq, Atom, DistAtom, Top, Bottom, IntTerm)):
        return expression
    if isinstance(expression, Not):
        return Not(replace_atoms(expression.inner, mapping))  # type: ignore[arg-type]
    if isinstance(expression, (Or, And, Implies, Iff, Add, Mul)):
        return type(expression)(
            replace_atoms(expression.left, mapping),  # type: ignore[arg-type]
            replace_atoms(expression.right, mapping),  # type: ignore[arg-type]
        )
    if isinstance(expression, (Exists, Forall)):
        return type(expression)(
            expression.variable,
            replace_atoms(expression.inner, mapping),  # type: ignore[arg-type]
        )
    if isinstance(expression, CountTerm):
        return CountTerm(
            expression.variables,
            replace_atoms(expression.inner, mapping),  # type: ignore[arg-type]
        )
    raise FormulaError(f"unexpected node {type(expression).__name__}")
