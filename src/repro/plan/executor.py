"""The plan executor: runtime state for one structure, one plan.

:class:`ExecutionState` is the engine's evaluation machinery — memo
tables, ball caches, guarded enumeration, the predicate-elimination
pipeline — factored out of ``core/evaluator.py`` so that every engine
(the FOC1 evaluator, the Section 8.2 main algorithm, the robustness
cascade) runs queries through one instrumented code path.  It executes
in two modes:

* **planned** — a compiled :class:`~repro.plan.ir.QueryPlan` supplies the
  stratification steps and the Lemma 6.4 count DAG; the executor applies
  the materialisation steps in stratum order and dispatches counting
  through the plan's precompiled steps (``_execute_count_step``).  Memo
  tables survive across materialisation steps: the auxiliary relations
  are at most unary, so they add no Gaifman edges and invalidate neither
  ball caches nor prior satisfaction/count entries.
* **dynamic** — with no plan, the executor re-derives stratification and
  decomposition on the fly (``reduce_formula`` / ``_count``), preserving
  the pre-plan engine behaviour exactly; out-of-fragment inputs and the
  memo-lifetime tests exercise this path.

Budget ticks (``evaluator.materialise`` / ``evaluator.count`` /
``evaluator.enumerate`` / ``evaluator.holds``), fault-injection sites
(``predicate.oracle`` / ``memo.insert``) and all ``evaluator.*`` metrics
live here and only here.

Memo lifetime contract
----------------------
The satisfaction/count memos key on *alpha-canonical text*: the node is
canonicalised (:func:`~repro.plan.normalise.canonicalise` — bound
variables renamed ``_b0, _b1, ...``, free variables untouched) and
pretty-printed, so alpha-equivalent subterms share one entry — e.g.
``#(y). E(x, y)`` and ``#(z). E(x, z)`` hit the same count cell.  The
canonical text itself is expensive to compute, so it is cached per
``id(node)`` in ``_canon_memo`` (and per ``(id(body), variables)`` in
``_count_key_memo``), and the rewrite nodes the dynamic paths fabricate —
``Not(inner)`` for a Forall, the ``And`` overlap of an Or — are cached
per ``id`` too (``_forall_memo`` / ``_overlap_memo``), so re-evaluating
a quantifier never mints fresh AST nodes whose ids would defeat every
id-keyed cache.

The id-keyed caches are only sound while the node object stays alive:
CPython recycles ids, so an entry that outlives its node can alias a
*different* node created later.  The state therefore pins every node that
enters an id-keyed memo in ``_pins`` (id -> node) and the two are only
ever dropped **together**, via :meth:`_reset_memos`.  States themselves
are scoped to one public engine call (facades create fresh states per
call and hold no reference afterwards), so repeated queries do not
accumulate memory across calls.  Plan-driven execution strengthens the
contract: every node a plan references is plan-owned (deep-copied at
compile time), so memo ids are stable for the lifetime of the cached
plan, never a caller's object.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import EvaluationError, FragmentError, SuspendedError
from ..logic.predicates import PredicateCollection
from ..logic.syntax import (
    Add,
    And,
    Atom,
    Bottom,
    CountTerm,
    DistAtom,
    Eq,
    Exists,
    Expression,
    Forall,
    Formula,
    Iff,
    Implies,
    IntTerm,
    Mul,
    Not,
    Or,
    PredicateAtom,
    Term,
    Top,
    Variable,
    free_variables,
    subexpressions,
)
from ..obs import active_metrics
from ..robust.budget import EvaluationBudget
from ..robust.checkpoint import StratumRecord, active_checkpoint_session
from ..robust.faults import fault_check
from ..structures.gaifman import ball as gaifman_ball
from ..structures.signature import RelationSymbol, Signature
from ..structures.structure import Element, Structure, Tup
from .ir import (
    CountComplement,
    CountConstant,
    CountDecomposition,
    CountInclusionExclusion,
    CountRewrite,
    CountStep,
    MaterialiseStep,
    QueryPlan,
)
from ..logic.printer import pretty
from .normalise import canonicalise, flatten_conjuncts, replace_atoms

__all__ = ["ExecutionState", "PlanExecutor"]


class ExecutionState:
    """Evaluation state for one (possibly expanded) structure: memo tables,
    ball caches, the predicate-elimination pipeline, and — when a plan is
    attached — plan-step dispatch.  See the module docstring for the memo
    lifetime contract."""

    def __init__(
        self,
        structure: Structure,
        predicates: PredicateCollection,
        use_factoring: bool,
        use_guards: bool,
        budget: "Optional[EvaluationBudget]" = None,
        plan: "Optional[QueryPlan]" = None,
    ):
        self.structure = structure
        self.predicates = predicates
        self.use_factoring = use_factoring
        self.use_guards = use_guards
        self.budget = budget
        self.plan = plan
        self._plan_counts: Dict[int, CountStep] = plan.counts if plan is not None else {}
        self._metrics = active_metrics()
        self._holds_memo: Dict[Tuple, bool] = {}
        self._count_memo: Dict[Tuple, int] = {}
        self._free_memo: Dict[int, FrozenSet[Variable]] = {}
        # Pin every node that enters an id-keyed memo (id -> node, so a
        # node pinned through several memos is stored once).  Dropped
        # only together with the memos in _reset_memos().
        self._pins: Dict[int, Expression] = {}
        self._free_sorted_memo: Dict[int, Tuple[Variable, ...]] = {}
        self._conjunct_memo: Dict[int, List[Formula]] = {}
        # Alpha-canonical memo-key texts, cached per node identity (the
        # canonicalise + pretty walk is O(|node|); the id lookup is O(1)).
        self._canon_memo: Dict[int, str] = {}
        self._count_key_memo: Dict[Tuple[int, Tuple[Variable, ...]], str] = {}
        # Rewrite nodes the dynamic paths fabricate, cached per source
        # node so repeated evaluation reuses one object (and its memos).
        self._forall_memo: Dict[int, Not] = {}
        self._overlap_memo: Dict[int, And] = {}
        self._ball_caches: Dict[int, Dict[Element, FrozenSet[Element]]] = {}
        self._aux_counter = itertools.count()

    def _reset_memos(self) -> None:
        """Drop every id-keyed memo *and* its pins, atomically.

        Clearing the pins without the memos (or vice versa) would let a
        recycled id alias a stale entry; this is the only place either
        is cleared.
        """
        self._holds_memo.clear()
        self._count_memo.clear()
        self._free_memo.clear()
        self._free_sorted_memo.clear()
        self._conjunct_memo.clear()
        self._canon_memo.clear()
        self._count_key_memo.clear()
        self._forall_memo.clear()
        self._overlap_memo.clear()
        self._ball_caches.clear()
        self._pins.clear()

    # -- small caches ------------------------------------------------------------

    def free(self, node: Expression) -> FrozenSet[Variable]:
        key = id(node)
        cached = self._free_memo.get(key)
        if cached is None:
            cached = free_variables(node)
            self._free_memo[key] = cached
            self._pins[key] = node
        return cached

    def free_sorted(self, node: Expression) -> Tuple[Variable, ...]:
        key = id(node)
        cached = self._free_sorted_memo.get(key)
        if cached is None:
            cached = tuple(sorted(self.free(node)))
            self._free_sorted_memo[key] = cached
            self._pins[key] = node
        return cached

    def _conjuncts(self, formula: Formula) -> List[Formula]:
        key = id(formula)
        cached = self._conjunct_memo.get(key)
        if cached is None:
            cached = flatten_conjuncts(formula)
            self._conjunct_memo[key] = cached
            self._pins[key] = formula
        return cached

    def _canon_key(self, node: Expression) -> str:
        """The node's alpha-canonical text — the satisfaction-memo key.

        Canonicalisation preserves free-variable names and renames bound
        variables in traversal order, so two nodes share a key iff they
        are alpha-equivalent — which, for a fixed structure and fixed
        relevant bindings, implies the same memoised value.
        """
        key = id(node)
        cached = self._canon_memo.get(key)
        if cached is None:
            # Canonical text is a pure function of the (immutable) node,
            # so it can live on the node itself: plan-owned nodes are
            # shared by every session executing the cached plan, and the
            # attribute spares each new session the canonicalise walk.
            cached = getattr(node, "_canon_cache", None)
            if cached is None:
                cached = pretty(canonicalise(node))
                object.__setattr__(node, "_canon_cache", cached)
            self._canon_memo[key] = cached
            self._pins[key] = node
        return cached

    def _count_canon_key(
        self, variables: Tuple[Variable, ...], body: Formula
    ) -> str:
        """Canonical text of ``#(variables). body`` — the count-memo key.

        Wrapping in a CountTerm before canonicalising folds the counted
        variables into the binder renaming, so ``#(y). E(x, y)`` and
        ``#(z). E(x, z)`` share one key.
        """
        key = (id(body), variables)
        cached = self._count_key_memo.get(key)
        if cached is None:
            by_vars = getattr(body, "_count_canon_cache", None)
            if by_vars is None:
                by_vars = {}
                object.__setattr__(body, "_count_canon_cache", by_vars)
            cached = by_vars.get(variables)
            if cached is None:
                cached = pretty(canonicalise(CountTerm(variables, body)))
                by_vars[variables] = cached
            self._count_key_memo[key] = cached
            self._pins[id(body)] = body
        return cached

    def ball(self, element: Element, distance: int) -> FrozenSet[Element]:
        cache = self._ball_caches.setdefault(distance, {})
        cached = cache.get(element)
        if cached is None:
            # gaifman.ball picks the backend adaptively: the columnar BFS
            # kernel on a settled structure, the incrementally maintained
            # dict adjacency mid-update-sequence (see structures/gaifman.py).
            cached = gaifman_ball(self.structure, (element,), distance)
            cache[element] = cached
            if self._metrics is not None:
                self._metrics.inc("evaluator.ball.expansion")
        return cached

    # -- Theorem 6.10 stratification: planned path --------------------------------

    def apply_materialise_step(self, step: MaterialiseStep) -> Set[Tup]:
        """Execute one compiled materialisation step: evaluate the predicate
        atom everywhere and extend the structure by the plan's auxiliary
        relation.  Memos survive (aux relations are <=1-ary: no new Gaifman
        edges, no change to existing relations).  Returns the materialised
        tuples so callers (the checkpoint machinery) can record the stratum."""
        if step.symbol in self.structure.signature:
            raise EvaluationError(
                f"plan symbol {step.symbol!r} already present; "
                "was this plan compiled for a different signature?"
            )
        if step.arity == 0:
            values = tuple(self.term_value(t, {}) for t in step.terms)
            fault_check("predicate.oracle")
            holds = self.predicates.query(step.predicate, values)
            tuples: Set[Tup] = {()} if holds else set()
        else:
            assert step.variable is not None
            tuples = set()
            for element in self.structure.universe_order:
                if self.budget is not None:
                    self.budget.tick("evaluator.materialise")
                env = {step.variable: element}
                values = tuple(self.term_value(t, env) for t in step.terms)
                fault_check("predicate.oracle")
                if self.predicates.query(step.predicate, values):
                    tuples.add((element,))
        from ..structures.operations import expansion

        if self._metrics is not None:
            self._metrics.inc("evaluator.predicate.materialised")
        self.structure = expansion(
            self.structure,
            Signature([RelationSymbol(step.symbol, step.arity)]),
            {step.symbol: tuples},
        )
        return tuples

    def apply_recorded_stratum(
        self, step: MaterialiseStep, tuples: Iterable[Tup]
    ) -> None:
        """Replay a checkpointed stratum: extend the structure by the
        recorded auxiliary relation without re-querying the predicate
        oracle and without paying budget ticks (the recording run already
        paid for this work — that is the whole point of resuming)."""
        if step.symbol in self.structure.signature:
            raise EvaluationError(
                f"plan symbol {step.symbol!r} already present; "
                "was this plan compiled for a different signature?"
            )
        from ..structures.operations import expansion

        if self._metrics is not None:
            self._metrics.inc("checkpoint.stratum.replayed")
        self.structure = expansion(
            self.structure,
            Signature([RelationSymbol(step.symbol, step.arity)]),
            {step.symbol: set(tuples)},
        )

    # -- Theorem 6.10 stratification: dynamic path --------------------------------

    def reduce_formula(self, formula: Formula) -> Tuple[Structure, Formula]:
        return self._reduce(formula)  # type: ignore[return-value]

    def reduce_term(self, term: Term) -> Tuple[Structure, Term]:
        return self._reduce(term)  # type: ignore[return-value]

    def _reduce(self, expression: Expression) -> Tuple[Structure, Expression]:
        """Iteratively materialise innermost predicate atoms as fresh <=1-ary
        relations (the L_1..L_{d+1} stages of Theorem 6.10)."""
        current = expression
        while True:
            innermost = self._innermost_predicate_atoms(current)
            if not innermost:
                return self.structure, current
            replacements: Dict[PredicateAtom, Atom] = {}
            for atom in innermost:
                replacements[atom] = self._materialise(atom)
            current = replace_atoms(current, replacements)
            # Rebuild memo state against the expanded structure.
            self._reset_memos()

    def _innermost_predicate_atoms(self, expression: Expression) -> List[PredicateAtom]:
        """Predicate atoms ready for materialisation: no nested predicate
        atoms and at most one joint free variable (rule 4').

        Atoms with more free variables (full FOC(P), outside the fragment)
        are left in place; :meth:`_holds` evaluates them inline, which is
        correct but loses the fpt structure — exactly the paper's point, and
        what experiment E4 measures.
        """
        found: Dict[PredicateAtom, None] = {}
        for node in subexpressions(expression):
            if isinstance(node, PredicateAtom):
                nested = any(
                    isinstance(inner, PredicateAtom) and inner is not node
                    for inner in subexpressions(node)
                )
                if not nested and len(self.free(node)) <= 1:
                    found.setdefault(node, None)
        return list(found)

    def _materialise(self, atom: PredicateAtom) -> Atom:
        """Evaluate a predicate atom everywhere and add it as a relation."""
        names = sorted(self.free(atom))
        if len(names) > 1:
            raise FragmentError(
                f"predicate atom @{atom.predicate} has free variables {names}; "
                "not FOC1(P)"
            )
        fresh = f"Paux__{next(self._aux_counter)}"
        while fresh in self.structure.signature:
            fresh = f"Paux__{next(self._aux_counter)}"
        if not names:
            values = tuple(self.term_value(t, {}) for t in atom.terms)
            fault_check("predicate.oracle")
            holds = self.predicates.query(atom.predicate, values)
            tuples: Set[Tup] = {()} if holds else set()
            symbol = RelationSymbol(fresh, 0)
            replacement = Atom(fresh, ())
        else:
            variable = names[0]
            tuples = set()
            for element in self.structure.universe_order:
                if self.budget is not None:
                    self.budget.tick("evaluator.materialise")
                env = {variable: element}
                values = tuple(self.term_value(t, env) for t in atom.terms)
                fault_check("predicate.oracle")
                if self.predicates.query(atom.predicate, values):
                    tuples.add((element,))
            symbol = RelationSymbol(fresh, 1)
            replacement = Atom(fresh, (variable,))
        from ..structures.operations import expansion

        if self._metrics is not None:
            self._metrics.inc("evaluator.predicate.materialised")
        self.structure = expansion(
            self.structure, Signature([symbol]), {fresh: tuples}
        )
        return replacement

    # -- terms ----------------------------------------------------------------------

    def term_value(self, term: Term, env: Dict[Variable, Element]) -> int:
        if isinstance(term, IntTerm):
            return term.value
        if isinstance(term, Add):
            return self.term_value(term.left, env) + self.term_value(term.right, env)
        if isinstance(term, Mul):
            left = self.term_value(term.left, env)
            if left == 0:
                return 0
            return left * self.term_value(term.right, env)
        if isinstance(term, CountTerm):
            return self.count(term.variables, term.inner, env)
        raise EvaluationError(f"unexpected term node {type(term).__name__}")

    # -- counting ---------------------------------------------------------------------

    def count(
        self,
        variables: Tuple[Variable, ...],
        body: Formula,
        env: Dict[Variable, Element],
    ) -> int:
        # Outer bindings of the counted variables are shadowed by the binder.
        if any(v in env for v in variables):
            env = {k: val for k, val in env.items() if k not in variables}
        relevant = tuple(
            sorted(
                (v, env[v])
                for v in (self.free(body) - set(variables))
                if v in env
            )
        )
        key = (self._count_canon_key(variables, body), relevant)
        cached = self._count_memo.get(key)
        if cached is None:
            if self.budget is not None:
                self.budget.tick("evaluator.count")
            if self._metrics is not None:
                self._metrics.inc("evaluator.count.memo.miss")
            cached = self._count(variables, body, env)
            fault_check("memo.insert")
            self._count_memo[key] = cached
        elif self._metrics is not None:
            self._metrics.inc("evaluator.count.memo.hit")
        return cached

    def _count(
        self,
        variables: Tuple[Variable, ...],
        body: Formula,
        env: Dict[Variable, Element],
    ) -> int:
        n = self.structure.order()
        k = len(variables)
        if k == 0:
            return 1 if self.holds(body, env) else 0
        step = self._plan_counts.get(id(body))
        if step is not None and step.variables == variables:
            return self._execute_count_step(step, env, n, k)
        if self._plan_counts and self._metrics is not None:
            # A planned run fell back to dynamic decomposition — a node the
            # compiler did not reach (should not happen for in-plan ASTs).
            self._metrics.inc("plan.count.fallback")
        if isinstance(body, Top):
            return n**k
        if isinstance(body, Bottom):
            return 0
        if isinstance(body, Not):
            return n**k - self.count(variables, body.inner, env)
        if isinstance(body, Or):
            both = self._overlap_memo.get(id(body))
            if both is None:
                both = And(body.left, body.right)
                self._overlap_memo[id(body)] = both
                self._pins[id(body)] = body
            return (
                self.count(variables, body.left, env)
                + self.count(variables, body.right, env)
                - self.count(variables, both, env)
            )
        if isinstance(body, Implies):
            return self.count(variables, Or(Not(body.left), body.right), env)
        if isinstance(body, Iff):
            rewritten = Or(
                And(body.left, body.right), And(Not(body.left), Not(body.right))
            )
            return self.count(variables, rewritten, env)

        conjuncts = self._conjuncts(body)
        counted = set(variables)

        # Conjuncts with no counted variables gate the whole count.
        active: List[Formula] = []
        for conjunct in conjuncts:
            if self.free(conjunct) & counted:
                active.append(conjunct)
            elif not self.holds(conjunct, env):
                return 0

        if not active:
            return n**k

        if not self.use_factoring:
            return self._count_component(tuple(variables), active, env)

        # Factor into variable-disjoint components (Lemma 6.4 product step).
        groups: List[Tuple[Set[Variable], List[Formula]]] = []
        for conjunct in active:
            names = set(self.free(conjunct)) & counted
            touching = [g for g in groups if g[0] & names]
            merged_names = set(names)
            merged_parts = [conjunct]
            for group in touching:
                merged_names |= group[0]
                merged_parts = group[1] + merged_parts
                groups.remove(group)
            groups.append((merged_names, merged_parts))

        used: Set[Variable] = set()
        result = 1
        for names, parts in groups:
            used |= names
            ordered = tuple(v for v in variables if v in names)
            part = self._count_component(ordered, parts, env)
            if part == 0:
                return 0
            result *= part
        unused = counted - used
        return result * (n ** len(unused))

    def _execute_count_step(
        self,
        step: CountStep,
        env: Dict[Variable, Element],
        n: int,
        k: int,
    ) -> int:
        """Dispatch one precompiled Lemma 6.4 step.  Child counts re-enter
        :meth:`count` (and so the memo) with plan-owned nodes, giving stable
        memo identities for the lifetime of the cached plan."""
        if isinstance(step, CountConstant):
            return 0 if step.zero else n**k
        if isinstance(step, CountComplement):
            return n**k - self.count(step.variables, step.inner, env)
        if isinstance(step, CountInclusionExclusion):
            return (
                self.count(step.variables, step.left, env)
                + self.count(step.variables, step.right, env)
                - self.count(step.variables, step.overlap, env)
            )
        if isinstance(step, CountRewrite):
            return self.count(step.variables, step.rewritten, env)
        if isinstance(step, CountDecomposition):
            for gate in step.gates:
                if not self.holds(gate, env):
                    return 0
            result = 1
            for component in step.components:
                part = self._count_component(
                    component.variables, list(component.conjuncts), env
                )
                if part == 0:
                    return 0
                result *= part
            return result * (n ** len(step.unused))
        raise EvaluationError(f"unexpected plan step {type(step).__name__}")

    def _count_component(
        self,
        variables: Tuple[Variable, ...],
        conjuncts: List[Formula],
        env: Dict[Variable, Element],
    ) -> int:
        """Guarded backtracking count of one variable-connected component."""
        local_env = dict(env)
        total = 0
        for _ in self._assignments(variables, conjuncts, local_env):
            total += 1
        return total

    def _assignments(
        self,
        variables: Tuple[Variable, ...],
        conjuncts: List[Formula],
        env: Dict[Variable, Element],
    ) -> Iterator[None]:
        """Yield once per assignment of ``variables`` satisfying the
        conjuncts; ``env`` is mutated in place and restored."""
        remaining = [v for v in variables if v not in env]
        if not remaining:
            if all(self.holds(c, env) for c in conjuncts):
                yield None
            return

        variable, candidates = self._choose_variable(remaining, conjuncts, env)
        ready_after: List[Formula] = []
        later: List[Formula] = []
        remaining_after = set(remaining) - {variable}
        for conjunct in conjuncts:
            unbound = (self.free(conjunct) & set(remaining)) - {variable}
            if unbound & remaining_after:
                later.append(conjunct)
            else:
                ready_after.append(conjunct)

        budget = self.budget
        for candidate in candidates:
            if budget is not None:
                budget.tick("evaluator.enumerate")
            env[variable] = candidate
            if all(self.holds(c, env) for c in ready_after):
                yield from self._assignments(
                    tuple(v for v in variables if v != variable), later, env
                )
        env.pop(variable, None)

    def _choose_variable(
        self,
        remaining: List[Variable],
        conjuncts: List[Formula],
        env: Dict[Variable, Element],
    ) -> Tuple[Variable, Iterable]:
        """Pick the next variable and its candidate pool, preferring the
        tightest available guard (index lookup, equality, distance ball)."""
        universe = self.structure.universe_order
        metrics = self._metrics
        if not self.use_guards:
            if metrics is not None:
                metrics.inc("evaluator.guard.disabled")
            return remaining[0], universe
        # Phase 1: only guards anchored at an already-bound variable (index
        # or ball lookups — cheap).  Phase 2: un-anchored relation scans,
        # which cost O(|R|) to materialise and therefore must not run at
        # every search node; with connected conjunct components they are
        # needed at most once, for the first variable.
        for anchored_only in (True, False):
            best: "Optional[Tuple[int, Variable, Iterable]]" = None
            for variable in remaining:
                pool = self._guard_candidates(variable, conjuncts, env, anchored_only)
                if pool is None:
                    continue
                size = len(pool)
                if best is None or size < best[0]:
                    best = (size, variable, pool)
                    if size <= 1:
                        break
            if best is not None:
                if metrics is not None:
                    metrics.inc(
                        "evaluator.guard.anchored"
                        if anchored_only
                        else "evaluator.guard.scan"
                    )
                    metrics.observe("evaluator.guard.pool_size", best[0])
                return best[1], best[2]
        if metrics is not None:
            metrics.inc("evaluator.guard.universe")
        return remaining[0], universe

    def _guard_candidates(
        self,
        variable: Variable,
        conjuncts: List[Formula],
        env: Dict[Variable, Element],
        anchored_only: bool = False,
    ) -> "Optional[List[Element]]":
        """Smallest candidate pool any positive guard offers for ``variable``,
        or None when no guard applies."""
        best: "Optional[Set[Element]]" = None
        for conjunct in conjuncts:
            pool = self._candidates_from(conjunct, variable, env, anchored_only)
            if pool is None:
                continue
            if best is None or len(pool) < len(best):
                best = pool
                if len(best) <= 1:
                    break
        if best is None:
            return None
        return list(best)

    def _candidates_from(
        self,
        conjunct: Formula,
        variable: Variable,
        env: Dict[Variable, Element],
        anchored_only: bool = False,
    ) -> "Optional[Set[Element]]":
        if isinstance(conjunct, Eq):
            other = None
            if conjunct.left == variable and conjunct.right != variable:
                other = conjunct.right
            elif conjunct.right == variable and conjunct.left != variable:
                other = conjunct.left
            if other is not None and other in env:
                return {env[other]}
            return None
        if isinstance(conjunct, DistAtom):
            other = None
            if conjunct.left == variable and conjunct.right != variable:
                other = conjunct.right
            elif conjunct.right == variable and conjunct.left != variable:
                other = conjunct.left
            if other is not None and other in env:
                return set(self.ball(env[other], conjunct.bound))
            return None
        if isinstance(conjunct, Atom):
            if variable not in conjunct.args:
                return None
            symbol = self.structure.signature.get(conjunct.relation)
            if symbol is None:
                raise EvaluationError(
                    f"relation {conjunct.relation!r} missing from the signature"
                )
            positions = [i for i, arg in enumerate(conjunct.args) if arg == variable]
            bound_positions = [
                (i, env[arg])
                for i, arg in enumerate(conjunct.args)
                if arg != variable and arg in env
            ]
            if bound_positions:
                anchor, value = bound_positions[0]
                tuples = self.structure.index(symbol, anchor).get(value, ())
            elif anchored_only:
                return None
            else:
                tuples = self.structure.relation(symbol)
            pool: Set[Element] = set()
            for tup in tuples:
                consistent = True
                for i, value in bound_positions:
                    if tup[i] != value:
                        consistent = False
                        break
                if not consistent:
                    continue
                first = tup[positions[0]]
                if any(tup[p] != first for p in positions[1:]):
                    continue
                pool.add(first)
            return pool
        if isinstance(conjunct, Exists):
            # Look through an exists-block: a positive atom inside it still
            # restricts the candidates for a variable free in the block
            # (the pool is a superset of the witnesses, which is sound —
            # every candidate is re-checked against the full conjunct).
            shadowed: Set[Variable] = set()
            inner: Formula = conjunct
            while isinstance(inner, Exists):
                shadowed.add(inner.variable)
                inner = inner.inner
            if variable in shadowed:
                return None
            if shadowed & set(env):
                env = {k: v for k, v in env.items() if k not in shadowed}
            best: "Optional[Set[Element]]" = None
            for piece in self._conjuncts(inner):
                pool = self._candidates_from(piece, variable, env, anchored_only)
                if pool is None:
                    continue
                if best is None or len(pool) < len(best):
                    best = pool
            return best
        return None

    # -- first-order satisfaction -----------------------------------------------------

    def holds(self, formula: Formula, env: Dict[Variable, Element]) -> bool:
        relevant = tuple(
            (v, env[v]) for v in self.free_sorted(formula) if v in env
        )
        key = (self._canon_key(formula), relevant)
        cached = self._holds_memo.get(key)
        if cached is None:
            if self.budget is not None:
                self.budget.tick("evaluator.holds")
            if self._metrics is not None:
                self._metrics.inc("evaluator.holds.memo.miss")
            cached = self._holds(formula, env)
            fault_check("memo.insert")
            self._holds_memo[key] = cached
        elif self._metrics is not None:
            self._metrics.inc("evaluator.holds.memo.hit")
        return cached

    def _holds(self, formula: Formula, env: Dict[Variable, Element]) -> bool:
        structure = self.structure
        if isinstance(formula, Eq):
            return self._value(formula.left, env) == self._value(formula.right, env)
        if isinstance(formula, Atom):
            symbol = structure.signature.get(formula.relation)
            if symbol is None:
                raise EvaluationError(
                    f"relation {formula.relation!r} missing from the signature"
                )
            tup = tuple(self._value(arg, env) for arg in formula.args)
            return tup in structure.relation(symbol)
        if isinstance(formula, DistAtom):
            a = self._value(formula.left, env)
            b = self._value(formula.right, env)
            return b in self.ball(a, formula.bound)
        if isinstance(formula, Top):
            return True
        if isinstance(formula, Bottom):
            return False
        if isinstance(formula, Not):
            return not self.holds(formula.inner, env)
        if isinstance(formula, And):
            return self.holds(formula.left, env) and self.holds(formula.right, env)
        if isinstance(formula, Or):
            return self.holds(formula.left, env) or self.holds(formula.right, env)
        if isinstance(formula, Implies):
            return (not self.holds(formula.left, env)) or self.holds(formula.right, env)
        if isinstance(formula, Iff):
            return self.holds(formula.left, env) == self.holds(formula.right, env)
        if isinstance(formula, Exists):
            # Peel the whole exists-block so guards deep inside the body can
            # drive candidate generation for every bound variable at once.
            prefix: List[Variable] = []
            body: Formula = formula
            while isinstance(body, Exists) and body.variable not in prefix:
                prefix.append(body.variable)
                body = body.inner
            return self._exists_block(tuple(prefix), body, env)
        if isinstance(formula, Forall):
            negated = self._forall_memo.get(id(formula))
            if negated is None:
                negated = Not(formula.inner)
                self._forall_memo[id(formula)] = negated
                self._pins[id(formula)] = formula
            return not self._exists_block((formula.variable,), negated, env)
        if isinstance(formula, PredicateAtom):
            # Inline evaluation: reached only for atoms outside FOC1 (more
            # than one joint free variable) when fragment checking is off.
            values = tuple(self.term_value(t, env) for t in formula.terms)
            fault_check("predicate.oracle")
            return self.predicates.query(formula.predicate, values)
        raise EvaluationError(f"unexpected formula node {type(formula).__name__}")

    def _exists_block(
        self,
        variables: Tuple[Variable, ...],
        body: Formula,
        env: Dict[Variable, Element],
    ) -> bool:
        """Witness search for ``exists v1..vk. body`` with guard-driven
        candidate pools and early exit."""
        conjuncts = self._conjuncts(body)
        scratch = {k: val for k, val in env.items() if k not in variables}
        for _ in self._assignments(variables, conjuncts, scratch):
            return True
        return False

    def _value(self, variable: Variable, env: Dict[Variable, Element]) -> Element:
        try:
            return env[variable]
        except KeyError:
            raise EvaluationError(f"free variable {variable!r} is not assigned") from None

    # -- enumeration ----------------------------------------------------------------------

    def solutions(
        self, variables: Tuple[Variable, ...], body: Formula
    ) -> Iterator[Tuple[Element, ...]]:
        """Enumerate satisfying assignments (guard-driven where possible)."""
        conjuncts = self._conjuncts(body)
        env: Dict[Variable, Element] = {}
        for _ in self._assignments(tuple(variables), conjuncts, env):
            yield tuple(env[v] for v in variables)

    # -- checkpointing -----------------------------------------------------------------

    def export_memo_snapshot(self) -> List[Tuple]:
        """Serialise the satisfaction/count memos in an id-free form.

        Memo keys are already alpha-canonical pretty text (see the module
        docstring), which survives a process boundary as-is: identical
        text implies alpha-equivalent formula, and for a fixed structure
        the memoised value is a function of the formula and its relevant
        bindings.  Entries are exported verbatim.
        """
        entries: List[Tuple] = []
        for (text, relevant), value in self._holds_memo.items():
            entries.append(("holds", text, relevant, value))
        for (text, relevant), value in self._count_memo.items():
            entries.append(("count", text, relevant, value))
        return entries

    def restore_memo_snapshot(
        self,
        entries: Iterable[Tuple],
        nodes_by_text: Dict[str, Expression],
    ) -> int:
        """Install exported memo entries into this state's memos.

        Text keys are self-contained, so entries install directly; when
        the text names a node this plan owns (``nodes_by_text`` maps both
        plain-pretty and canonical texts), the entry is re-keyed through
        the live node's canonical key instead — this also upgrades
        snapshots written before keys were alpha-canonical.  Legacy count
        entries (5-tuples carrying the counted variables separately) only
        restore via a matching node, since their text lacks the binder.
        """
        restored = 0
        for entry in entries:
            kind, text = entry[0], entry[1]
            node = nodes_by_text.get(text)
            if kind == "holds":
                _, _, relevant, value = entry
                key = text if node is None else self._canon_key(node)
                self._holds_memo[(key, relevant)] = value
            elif kind == "count" and len(entry) == 4:
                # Count texts fold the counted variables into the binder
                # and are already canonical — install verbatim (a plain
                # formula node could not stand in for a count key).
                _, _, relevant, value = entry
                self._count_memo[(text, relevant)] = value
            elif kind == "count" and len(entry) == 5:
                _, _, variables, relevant, value = entry
                if node is None:
                    continue
                key = self._count_canon_key(variables, node)
                self._count_memo[(key, relevant)] = value
            else:
                continue
            restored += 1
        if restored and self._metrics is not None:
            self._metrics.inc("checkpoint.memo.restored", restored)
        return restored


class PlanExecutor:
    """Run one compiled plan against one structure.

    The executor materialises the plan's stratification steps in order
    (lazily, on first use) and then evaluates the residual roots with the
    plan's count DAG attached.  One executor = one engine call; plans are
    shared and immutable, executors are cheap and disposable.
    """

    def __init__(
        self,
        plan: QueryPlan,
        structure: Structure,
        predicates: PredicateCollection,
        budget: "Optional[EvaluationBudget]" = None,
    ):
        if structure.signature != plan.signature:
            raise EvaluationError(
                "plan was compiled for a different signature; "
                "recompile against this structure"
            )
        self.plan = plan
        self.state = ExecutionState(
            structure,
            predicates,
            plan.options.factoring,
            plan.options.guards,
            budget,
            plan,
        )
        self._prepared = False
        # Checkpoint session (preemptible runs only).  Consulted only from
        # the thread that installed it: pool worker threads run their own
        # executors un-checkpointed, their progress is captured at shard
        # granularity by the pool itself.
        session = active_checkpoint_session()
        if session is not None and not session.on_owner_thread():
            session = None
        self._session = session
        # The content key for this (structure, plan) pair — computed while
        # the structure is still un-expanded, so a resumed executor over
        # the same inputs derives the same key.
        self._ckpt_key = (
            self._content_key(structure) if session is not None else ""
        )

    def _content_key(self, structure: Structure) -> str:
        """Digest identifying this (structure, plan) execution context.

        Identical key ⇒ extensionally identical structure and identical
        compiled plan ⇒ any recorded stratum or memo entry restores to
        exactly the value this executor would recompute.
        """
        from ..logic.printer import pretty
        from ..robust.checkpoint import structure_digest

        hasher = hashlib.sha256()
        hasher.update(structure_digest(structure).encode())
        hasher.update(b"|")
        hasher.update(self.plan.kind.encode())
        hasher.update(repr(self.plan.options).encode())
        hasher.update(repr(self.plan.variables).encode())
        for root in self.plan.roots:
            hasher.update(pretty(root).encode())
            hasher.update(b"\x00")
        return hasher.hexdigest()

    def _restore_nodes(self) -> Dict[str, Expression]:
        """Every plan-owned node a memo entry could re-attach to, by text.

        Each node registers under both its plain pretty text (matches
        legacy snapshots written before memo keys were alpha-canonical)
        and its canonical text (matches current snapshots).
        """
        from ..logic.printer import pretty

        nodes: Dict[str, Expression] = {}

        def add(node: Expression) -> None:
            for sub in subexpressions(node):
                nodes.setdefault(pretty(sub), sub)
                nodes.setdefault(pretty(canonicalise(sub)), sub)

        for root in self.plan.roots:
            add(root)
        for step in self.plan.counts.values():
            for attr in ("inner", "left", "right", "overlap", "rewritten"):
                child = getattr(step, attr, None)
                if child is not None:
                    add(child)
            for gate in getattr(step, "gates", ()):
                add(gate)
            for component in getattr(step, "components", ()):
                # (guards are GuardSpec annotations, not AST nodes — only
                # the conjuncts can carry memo entries)
                for conjunct in component.conjuncts:
                    add(conjunct)
        return nodes

    def _checkpoint_memos(self) -> None:
        if self._session is not None:
            self._session.record_memo(
                self._ckpt_key, self.state.export_memo_snapshot()
            )

    def _run(self, thunk):
        """Run one plan runner, checkpointing memos on the way out —
        both on success (a later executor in the same run may suspend)
        and on suspension (the resumed run restores them)."""
        if self._session is None:
            return thunk()
        try:
            result = thunk()
        except SuspendedError:
            self._checkpoint_memos()
            raise
        self._checkpoint_memos()
        return result

    def prepare(self) -> None:
        """Execute the materialisation steps (Theorem 6.10 stages) once.

        Under an active checkpoint session, already-recorded strata are
        replayed from the checkpoint (no oracle queries, no budget ticks),
        newly computed strata are recorded, and restored memo entries are
        re-attached once the structure is fully expanded.
        """
        if self._prepared:
            return
        session = self._session
        if session is None:
            for step in self.plan.steps:
                self.state.apply_materialise_step(step)
            self._prepared = True
            return
        key = self._ckpt_key
        resumed = session.resumed_strata(key)
        for index, step in enumerate(self.plan.steps):
            record = resumed.get(index)
            if record is not None and record.symbol == step.symbol:
                self.state.apply_recorded_stratum(step, record.tuples)
            else:
                tuples = self.state.apply_materialise_step(step)
                session.record_stratum(
                    key,
                    StratumRecord(
                        index, step.symbol, step.arity, tuple(sorted(tuples))
                    ),
                )
        entries = session.resumed_memo(key)
        if entries:
            self.state.restore_memo_snapshot(entries, self._restore_nodes())
        self._prepared = True

    # -- one runner per plan kind -------------------------------------------------

    def model_check(self) -> bool:
        return self._run(
            lambda: (self.prepare(), self.state.holds(self.plan.roots[0], {}))[1]
        )

    def count_value(self) -> int:
        return self._run(
            lambda: (
                self.prepare(),
                self.state.count(self.plan.variables, self.plan.roots[0], {}),
            )[1]
        )

    def ground_term_value(self) -> int:
        return self._run(
            lambda: (self.prepare(), self.state.term_value(self.plan.roots[0], {}))[1]
        )

    def unary_term_values(
        self,
        variable: Variable,
        elements: "Optional[Sequence[Element]]" = None,
    ) -> Dict[Element, int]:
        def run() -> Dict[Element, int]:
            self.prepare()
            targets = (
                list(elements)
                if elements is not None
                else list(self.state.structure.universe_order)
            )
            root = self.plan.roots[0]
            return {
                a: self.state.term_value(root, {variable: a}) for a in targets
            }

        return self._run(run)

    def solutions(self) -> Iterator[Tuple[Element, ...]]:
        self.prepare()
        yield from self.state.solutions(self.plan.variables, self.plan.roots[0])

    def query_rows(self) -> List[Tuple]:
        """Rows of an FOC1(P)-query plan: roots are ``(condition, *head
        terms)``, variables the head variables."""

        def run() -> List[Tuple]:
            self.prepare()
            condition = self.plan.roots[0]
            terms = self.plan.roots[1:]
            results: List[Tuple] = []
            for tup in self.state.solutions(self.plan.variables, condition):
                assignment = dict(zip(self.plan.variables, tup))
                values = tuple(
                    self.state.term_value(term, assignment) for term in terms
                )
                results.append(tup + values)
            return results

        return self._run(run)
