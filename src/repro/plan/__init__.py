"""Query plans: the compile-once analysis/IR layer shared by all engines.

The package splits FOC1(P) evaluation into a *static* half and a *dynamic*
half:

* :mod:`repro.plan.normalise` — alpha-canonicalisation (cache keys) and
  shared structural helpers;
* :mod:`repro.plan.ir` — the immutable plan IR: stratification steps
  (Theorem 6.10), the Lemma 6.4 count DAG, guard annotations (Remark 6.3);
* :mod:`repro.plan.compiler` — expression + signature -> :class:`QueryPlan`;
* :mod:`repro.plan.cache` — LRU plan cache with ``plan.cache.*`` metrics;
* :mod:`repro.plan.executor` — the single instrumented runtime all engines
  share (budgets, faults, metrics live there).

``repro.plan`` depends only on ``logic``/``structures``/``obs`` and the two
leaf robustness modules (budget, faults); the ``core`` engines sit on top.
"""

from .cache import PlanCache, default_plan_cache
from .compiler import compile_plan, infer_signature
from .executor import ExecutionState, PlanExecutor
from .ir import (
    ComponentPlan,
    CountComplement,
    CountConstant,
    CountDecomposition,
    CountInclusionExclusion,
    CountRewrite,
    CountStep,
    GuardSpec,
    MaterialiseStep,
    PlanOptions,
    QueryPlan,
)
from .normalise import canonicalise, flatten_conjuncts, replace_atoms

__all__ = [
    "ComponentPlan",
    "CountComplement",
    "CountConstant",
    "CountDecomposition",
    "CountInclusionExclusion",
    "CountRewrite",
    "CountStep",
    "ExecutionState",
    "GuardSpec",
    "MaterialiseStep",
    "PlanCache",
    "PlanExecutor",
    "PlanOptions",
    "QueryPlan",
    "canonicalise",
    "compile_plan",
    "default_plan_cache",
    "flatten_conjuncts",
    "infer_signature",
    "replace_atoms",
]
