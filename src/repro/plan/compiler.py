"""The plan compiler: static analysis of FOC(P) expressions.

:func:`compile_plan` performs, once per (normalised expression, signature,
options) triple, the analyses that the evaluation engine previously
re-derived inside every call:

1. **Stratification** (Theorem 6.10).  Innermost numerical predicate
   atoms — no nested predicate atoms, at most one joint free variable
   (rule 4') — become :class:`~repro.plan.ir.MaterialiseStep` entries, the
   atom replaced by a fresh ``Paux__N`` auxiliary relation atom; iterated
   until no eligible atom remains.  Atoms with more than one free variable
   (outside FOC1) are left in place, exactly as the dynamic engine leaves
   them for inline evaluation.
2. **Counting algebra** (Lemma 6.4).  Every counting body reachable from
   the steps and residual roots is compiled into a
   :data:`~repro.plan.ir.CountStep` DAG: complement, inclusion–exclusion
   (with the overlap conjunction built once), Implies/Iff rewrites, and
   conjunction decomposition into gates + variable-disjoint components +
   unused-variable tail, honouring the plan's factoring option.
3. **Guard analysis** (Remark 6.3).  Each component records, per counted
   variable, the statically available candidate sources (equality
   binding, distance ball, relation index, exists-block look-through).

The compiler never sees a structure: plans depend only on the expression,
the signature, and the options — which is what makes them cacheable.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import FormulaError
from ..logic.printer import pretty
from ..logic.syntax import (
    And,
    Atom,
    Bottom,
    CountTerm,
    DistAtom,
    Eq,
    Exists,
    Expression,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    PredicateAtom,
    Top,
    Variable,
    free_variables,
    subexpressions,
)
from ..structures.signature import RelationSymbol, Signature
from .ir import (
    ComponentPlan,
    CountComplement,
    CountConstant,
    CountDecomposition,
    CountInclusionExclusion,
    CountRewrite,
    CountStep,
    GuardSpec,
    MaterialiseStep,
    PlanOptions,
    QueryPlan,
)
from .normalise import canonicalise, flatten_conjuncts, replace_atoms

__all__ = ["compile_plan", "infer_signature"]

#: Prefix of the auxiliary relations introduced by stratification; kept
#: identical to the dynamic engine's so explain output and tests read the
#: same either way.
AUX_PREFIX = "Paux__"


def compile_plan(
    kind: str,
    expressions: Sequence[Expression],
    variables: Sequence[Variable],
    signature: Signature,
    options: "Optional[PlanOptions]" = None,
) -> QueryPlan:
    """Compile one engine operation into an immutable :class:`QueryPlan`.

    ``expressions`` are canonicalised internally, so callers may pass raw
    ASTs; the resulting plan owns every node it references.
    """
    opts = options if options is not None else PlanOptions()
    roots: List[Expression] = [canonicalise(e) for e in expressions]
    steps: List[MaterialiseStep] = []
    aux_counter = itertools.count()
    allocated: Set[str] = set()

    def fresh_symbol() -> str:
        while True:
            name = f"{AUX_PREFIX}{next(aux_counter)}"
            if name not in signature and name not in allocated:
                allocated.add(name)
                return name

    stratum = 0
    while True:
        innermost = _innermost_predicate_atoms(roots)
        if not innermost:
            break
        stratum += 1
        mapping: Dict[PredicateAtom, Atom] = {}
        for atom in innermost:
            names = sorted(free_variables(atom))
            symbol = fresh_symbol()
            steps.append(
                MaterialiseStep(
                    symbol=symbol,
                    arity=len(names),
                    variable=names[0] if names else None,
                    predicate=atom.predicate,
                    terms=atom.terms,
                    stratum=stratum,
                )
            )
            mapping[atom] = Atom(symbol, tuple(names))
        roots = [replace_atoms(root, mapping) for root in roots]

    counts: Dict[int, CountStep] = {}
    memo: Dict[Tuple[Tuple[Variable, ...], Formula], "Optional[CountStep]"] = {}
    for expression in [t for s in steps for t in s.terms] + roots:
        for node in subexpressions(expression):
            if isinstance(node, CountTerm):
                _compile_count(node.variables, node.inner, opts, counts, memo)
    if kind == "count" and roots:
        _compile_count(tuple(variables), roots[0], opts, counts, memo)  # type: ignore[arg-type]

    return QueryPlan(
        kind=kind,
        signature=signature,
        options=opts,
        steps=tuple(steps),
        roots=tuple(roots),
        variables=tuple(variables),
        counts=counts,
    )


def infer_signature(expressions: Sequence[Expression]) -> Signature:
    """The smallest signature covering every relation atom (for ``explain``
    without a structure file); conflicting arities raise
    :class:`~repro.errors.FormulaError`."""
    arities: Dict[str, int] = {}
    for expression in expressions:
        for node in subexpressions(expression):
            if isinstance(node, Atom):
                known = arities.get(node.relation)
                if known is not None and known != len(node.args):
                    raise FormulaError(
                        f"relation {node.relation!r} used with arities "
                        f"{known} and {len(node.args)}"
                    )
                arities[node.relation] = len(node.args)
    return Signature(RelationSymbol(name, arity) for name, arity in arities.items())


# -- stratification -----------------------------------------------------------


def _innermost_predicate_atoms(roots: Sequence[Expression]) -> List[PredicateAtom]:
    """Predicate atoms ready for materialisation across all roots: no nested
    predicate atoms and at most one joint free variable (rule 4'); ineligible
    atoms stay inline for the executor's out-of-fragment fallback."""
    found: Dict[PredicateAtom, None] = {}
    for root in roots:
        for node in subexpressions(root):
            if isinstance(node, PredicateAtom):
                nested = any(
                    isinstance(inner, PredicateAtom) and inner is not node
                    for inner in subexpressions(node)
                )
                if not nested and len(free_variables(node)) <= 1:
                    found.setdefault(node, None)
    return list(found)


# -- counting algebra ---------------------------------------------------------


def _compile_count(
    variables: Tuple[Variable, ...],
    body: Formula,
    options: PlanOptions,
    counts: Dict[int, CountStep],
    memo: Dict[Tuple[Tuple[Variable, ...], Formula], "Optional[CountStep]"],
) -> "Optional[CountStep]":
    """Compile ``#variables.body`` into a count step, registering the step
    under ``id(body)`` (and recursively every rewrite child)."""
    if not variables:
        return None  # k = 0 is a boolean check; the executor short-circuits it
    key = (variables, body)
    if key in memo:
        step = memo[key]
        if step is not None:
            counts[id(body)] = step
        return step
    memo[key] = None  # cycle guard; ASTs are finite but shared
    step = _build_count(variables, body, options, counts, memo)
    memo[key] = step
    if step is not None:
        counts[id(body)] = step
    return step


def _build_count(
    variables: Tuple[Variable, ...],
    body: Formula,
    options: PlanOptions,
    counts: Dict[int, CountStep],
    memo: Dict[Tuple[Tuple[Variable, ...], Formula], "Optional[CountStep]"],
) -> CountStep:
    if isinstance(body, Top):
        return CountConstant(variables, zero=False)
    if isinstance(body, Bottom):
        return CountConstant(variables, zero=True)
    if isinstance(body, Not):
        _compile_count(variables, body.inner, options, counts, memo)
        return CountComplement(variables, body.inner)
    if isinstance(body, Or):
        overlap = And(body.left, body.right)
        _compile_count(variables, body.left, options, counts, memo)
        _compile_count(variables, body.right, options, counts, memo)
        _compile_count(variables, overlap, options, counts, memo)
        return CountInclusionExclusion(variables, body.left, body.right, overlap)
    if isinstance(body, Implies):
        rewritten: Formula = Or(Not(body.left), body.right)
        _compile_count(variables, rewritten, options, counts, memo)
        return CountRewrite(variables, rewritten, "implies")
    if isinstance(body, Iff):
        rewritten = Or(
            And(body.left, body.right), And(Not(body.left), Not(body.right))
        )
        _compile_count(variables, rewritten, options, counts, memo)
        return CountRewrite(variables, rewritten, "iff")
    return _build_decomposition(variables, body, options)


def _build_decomposition(
    variables: Tuple[Variable, ...],
    body: Formula,
    options: PlanOptions,
) -> CountDecomposition:
    conjuncts = flatten_conjuncts(body)
    counted = set(variables)

    gates: List[Formula] = []
    active: List[Formula] = []
    for conjunct in conjuncts:
        if free_variables(conjunct) & counted:
            active.append(conjunct)
        else:
            gates.append(conjunct)

    if not active:
        return CountDecomposition(
            variables, tuple(gates), (), unused=tuple(variables)
        )

    if not options.factoring:
        component = ComponentPlan(
            variables=tuple(variables),
            conjuncts=tuple(active),
            guards=_guard_specs(tuple(variables), active, options),
        )
        return CountDecomposition(variables, tuple(gates), (component,), ())

    # Factor into variable-disjoint components (Lemma 6.4 product step);
    # mirrors the executor's legacy dynamic grouping exactly, including
    # the conjunct order inside merged groups.
    groups: List[Tuple[Set[Variable], List[Formula]]] = []
    for conjunct in active:
        names = set(free_variables(conjunct)) & counted
        touching = [g for g in groups if g[0] & names]
        merged_names = set(names)
        merged_parts = [conjunct]
        for group in touching:
            merged_names |= group[0]
            merged_parts = group[1] + merged_parts
            groups.remove(group)
        groups.append((merged_names, merged_parts))

    used: Set[Variable] = set()
    components: List[ComponentPlan] = []
    for names, parts in groups:
        used |= names
        ordered = tuple(v for v in variables if v in names)
        components.append(
            ComponentPlan(
                variables=ordered,
                conjuncts=tuple(parts),
                guards=_guard_specs(ordered, parts, options),
            )
        )
    unused = tuple(v for v in variables if v not in used)
    return CountDecomposition(variables, tuple(gates), tuple(components), unused)


# -- guard analysis -----------------------------------------------------------


def _guard_specs(
    variables: Tuple[Variable, ...],
    conjuncts: Sequence[Formula],
    options: PlanOptions,
) -> Tuple[GuardSpec, ...]:
    """Per variable, every statically available candidate source; a lone
    ``scan`` spec when nothing guards it (or guards are disabled)."""
    if not options.guards:
        return tuple(
            GuardSpec(v, "scan", "guards disabled by options") for v in variables
        )
    specs: List[GuardSpec] = []
    for variable in variables:
        found = False
        for conjunct in conjuncts:
            spec = _guard_from(conjunct, variable)
            if spec is not None:
                specs.append(spec)
                found = True
        if not found:
            specs.append(GuardSpec(variable, "scan", "no applicable guard"))
    return tuple(specs)


def _guard_from(conjunct: Formula, variable: Variable) -> "Optional[GuardSpec]":
    """Mirror of the executor's candidate sources, evaluated statically:
    whether this conjunct can *ever* produce a candidate pool for
    ``variable`` (pool contents are runtime data)."""
    if isinstance(conjunct, Eq):
        other = _other_side(conjunct.left, conjunct.right, variable)
        if other is not None:
            return GuardSpec(variable, "equality", pretty(conjunct))
        return None
    if isinstance(conjunct, DistAtom):
        other = _other_side(conjunct.left, conjunct.right, variable)
        if other is not None:
            return GuardSpec(
                variable, "ball", f"{pretty(conjunct)} (radius {conjunct.bound})"
            )
        return None
    if isinstance(conjunct, Atom):
        if variable in conjunct.args:
            return GuardSpec(variable, "index", f"relation {conjunct.relation}")
        return None
    if isinstance(conjunct, Exists):
        shadowed: Set[Variable] = set()
        inner: Formula = conjunct
        while isinstance(inner, Exists):
            shadowed.add(inner.variable)
            inner = inner.inner
        if variable in shadowed:
            return None
        for piece in flatten_conjuncts(inner):
            spec = _guard_from(piece, variable)
            if spec is not None:
                return GuardSpec(
                    variable, spec.kind, f"{spec.source} (inside exists-block)"
                )
        return None
    return None


def _other_side(
    left: Variable, right: Variable, variable: Variable
) -> "Optional[Variable]":
    if left == variable and right != variable:
        return right
    if right == variable and left != variable:
        return left
    return None
