"""The distance-preserving Ehrenfeucht–Fraïssé game EF+_q (Section 7.1).

Theorem 7.2 (from [13]) characterises indistinguishability by FO+-formulas
of bounded q-rank through an l-round game in which every position must be a
*partial f_q(l-i)-isomorphism*: an isomorphism of induced substructures
that additionally preserves distances up to the (shrinking) threshold.

This module implements:

* :func:`is_partial_r_isomorphism` — the winning condition at one position;
* :func:`duplicator_wins` — exact minimax game solving (exponential: use
  on small structures only; the tests do);
* :func:`distinguish` — a search for an FO+ formula of bounded q-rank
  separating two pointed structures, used to validate Theorem 7.2's
  equivalence empirically.

The rank-preserving machinery of Theorem 7.1 rests on this game; having it
executable lets the test suite check the paper's Lemma 7.3-style transfer
statements on concrete structures.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import FormulaError
from ..logic.semantics import satisfies
from ..logic.syntax import (
    And,
    Atom,
    DistAtom,
    Eq,
    Exists,
    Formula,
    Not,
    Variable,
)
from ..structures.gaifman import distance
from ..structures.structure import Element, Structure
from .rank import fq


def is_partial_r_isomorphism(
    left: Structure,
    left_tuple: Sequence[Element],
    right: Structure,
    right_tuple: Sequence[Element],
    threshold: int,
) -> bool:
    """Whether ``a_i -> b_i`` is a partial r-isomorphism (Section 7.1):
    an isomorphism between the induced substructures on the tuples that
    preserves distances up to ``threshold``."""
    if len(left_tuple) != len(right_tuple):
        return False
    if left.signature != right.signature:
        raise FormulaError("partial isomorphisms need a common signature")
    k = len(left_tuple)
    # consistency as a map (repeated entries must pair up)
    for i in range(k):
        for j in range(k):
            if (left_tuple[i] == left_tuple[j]) != (
                right_tuple[i] == right_tuple[j]
            ):
                return False
    # relation atoms over the tuple
    for symbol in left.signature:
        if symbol.arity == 0:
            if left.relation(symbol) != right.relation(symbol):
                return False
            continue
        positions = range(k)
        for combo in itertools.product(positions, repeat=symbol.arity):
            l_tup = tuple(left_tuple[i] for i in combo)
            r_tup = tuple(right_tuple[i] for i in combo)
            if (l_tup in left.relation(symbol)) != (r_tup in right.relation(symbol)):
                return False
    # distance preservation up to the threshold
    for i in range(k):
        for j in range(i + 1, k):
            dl = distance(left, left_tuple[i], left_tuple[j])
            dr = distance(right, right_tuple[i], right_tuple[j])
            if dl <= threshold or dr <= threshold:
                if dl != dr:
                    return False
    return True


def duplicator_wins(
    left: Structure,
    left_tuple: Sequence[Element],
    right: Structure,
    right_tuple: Sequence[Element],
    q: int,
    rounds: int,
) -> bool:
    """Exact solution of the ``rounds``-round EF+_q game on the position
    ``(left, a-bar, right, b-bar)`` (Theorem 7.2's game).

    Exponential in ``rounds`` and the structure sizes; intended for the
    validation experiments on small structures.
    """
    if rounds < 0:
        raise FormulaError("rounds must be non-negative")

    left_elements = tuple(left.universe_order)
    right_elements = tuple(right.universe_order)

    def play(a: Tuple[Element, ...], b: Tuple[Element, ...], remaining: int) -> bool:
        threshold = fq(q, remaining)
        if not is_partial_r_isomorphism(left, a, right, b, threshold):
            return False
        if remaining == 0:
            return True
        # Spoiler moves in the left structure ...
        for pick in left_elements:
            if not any(
                play(a + (pick,), b + (answer,), remaining - 1)
                for answer in right_elements
            ):
                return False
        # ... or in the right structure.
        for pick in right_elements:
            if not any(
                play(a + (answer,), b + (pick,), remaining - 1)
                for answer in left_elements
            ):
                return False
        return True

    return play(tuple(left_tuple), tuple(right_tuple), rounds)


def _formula_pool(
    variables: Tuple[Variable, ...], q: int, rounds: int
) -> Iterable[Formula]:
    """A systematic (not exhaustive) pool of FO+ formulas of q-rank at most
    ``rounds`` over a graph signature, used to probe distinguishability."""
    atoms: List[Formula] = []
    for x in variables:
        for y in variables:
            if x != y:
                atoms.append(Atom("E", (x, y)))
                atoms.append(Eq(x, y))
                for bound in (1, 2, min(fq(q, 0), 8)):
                    atoms.append(DistAtom(x, y, bound))
    yield from atoms
    yield from (Not(a) for a in atoms)
    if rounds >= 1:
        fresh = f"_g{len(variables)}"
        inner_atoms: List[Formula] = []
        for x in variables:
            inner_atoms.append(Atom("E", (x, fresh)))
            inner_atoms.append(Atom("E", (fresh, x)))
            for bound in (1, min(fq(q, max(rounds - 1, 0)), 8)):
                inner_atoms.append(DistAtom(x, fresh, bound))
        for atom in inner_atoms:
            yield Exists(fresh, atom)
            yield Not(Exists(fresh, atom))
            for other in inner_atoms:
                if other is not atom:
                    yield Exists(fresh, And(atom, other))


def distinguish(
    left: Structure,
    left_tuple: Sequence[Element],
    right: Structure,
    right_tuple: Sequence[Element],
    q: int,
    rounds: int,
) -> Optional[Formula]:
    """Search the probe pool for an FO+ formula of q-rank <= ``rounds`` on
    which the two pointed structures disagree; None if none found.

    By Theorem 7.2, if :func:`duplicator_wins` holds then this *must*
    return None — the property the tests check.
    """
    variables = tuple(f"x{i+1}" for i in range(len(left_tuple)))
    left_env = dict(zip(variables, left_tuple))
    right_env = dict(zip(variables, right_tuple))
    for formula in _formula_pool(variables, q, rounds):
        if satisfies(left, formula, left_env) != satisfies(
            right, formula, right_env
        ):
            return formula
    return None
