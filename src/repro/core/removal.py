"""The Removal Lemma (Section 7.3): the structure surgery ``A astrix_r d``
and the matching formula/term transformations of Lemmas 7.8 and 7.9.

Removing an element ``d`` from a structure must preserve enough information
to re-evaluate formulas that used to talk about ``d``:

* each relation ``R`` splits into relations ``R~_I`` recording, for every
  set ``I`` of argument positions, the projections of the ``R``-tuples whose
  entries equalled ``d`` exactly at the positions in ``I``;
* unary relations ``S_i`` (i = 1..r) record the elements at distance <= i
  from ``d`` *in the original structure*, so distance atoms survive.

Lemma 7.8 then rewrites any FO+ formula ``phi(x-bar)`` and any set ``V`` of
variables pinned to ``d`` into ``phi~_V`` over the new signature, with
``A |= phi[a-bar]  iff  A astrix_r d |= phi~_V[a-bar minus V]``; Lemma 7.9
lifts this to basic counting terms.  This is the recursion step of the main
algorithm (Section 8.2, step 5c-e), where ``d`` is Splitter's move.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..errors import FormulaError, UniverseError
from ..obs import traced
from ..robust.faults import fault_check
from ..logic.syntax import (
    And,
    Atom,
    Bottom,
    CountTerm,
    DistAtom,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Variable,
    disjunction,
    subexpressions,
)
from ..structures.gaifman import distances_from
from ..structures.signature import RelationSymbol, Signature
from ..structures.structure import Element, Structure


def removed_relation_name(base: str, positions: FrozenSet[int]) -> str:
    """Deterministic name for ``R~_I`` (1-based positions)."""
    if not positions:
        return f"{base}__rm"
    return f"{base}__rm_" + "_".join(str(i) for i in sorted(positions))


def distance_marker_name(i: int) -> str:
    """Name for the unary relation ``S_i``."""
    return f"S__{i}"


def removed_signature(signature: Signature, radius: int) -> Signature:
    """``sigma~_r``: all ``R~_I`` plus the distance markers ``S_1..S_r``."""
    symbols: List[RelationSymbol] = []
    for symbol in signature:
        if symbol.arity == 0:
            symbols.append(RelationSymbol(removed_relation_name(symbol.name, frozenset()), 0))
            continue
        positions = range(1, symbol.arity + 1)
        for size in range(symbol.arity + 1):
            for subset in itertools.combinations(positions, size):
                symbols.append(
                    RelationSymbol(
                        removed_relation_name(symbol.name, frozenset(subset)),
                        symbol.arity - size,
                    )
                )
    for i in range(1, radius + 1):
        symbols.append(RelationSymbol(distance_marker_name(i), 1))
    return Signature(symbols)


@traced("removal.surgery")
def remove_element(structure: Structure, element: Element, radius: int) -> Structure:
    """``A astrix_r d`` — computable in linear time for fixed signature and r."""
    fault_check("removal.surgery")
    if element not in structure:
        raise UniverseError(f"{element!r} is not in the universe")
    if structure.order() < 2:
        raise UniverseError("removal needs a structure of order >= 2")
    new_signature = removed_signature(structure.signature, radius)
    universe = [a for a in structure.universe_order if a != element]

    relations: Dict[str, set] = {}
    for symbol in structure.signature:
        if symbol.arity == 0:
            relations[removed_relation_name(symbol.name, frozenset())] = set(
                structure.relation(symbol)
            )
            continue
        for tup in structure.relation(symbol):
            positions = frozenset(
                i + 1 for i, entry in enumerate(tup) if entry == element
            )
            kept = tuple(entry for entry in tup if entry != element)
            relations.setdefault(
                removed_relation_name(symbol.name, positions), set()
            ).add(kept)
    reach = distances_from(structure, [element], radius)
    for i in range(1, radius + 1):
        relations[distance_marker_name(i)] = {
            (b,) for b, dist in reach.items() if b != element and dist <= i
        }
    return Structure(new_signature, universe, relations)


# ---------------------------------------------------------------------------
# Lemma 7.8: formula transformation
# ---------------------------------------------------------------------------


def removal_formula(formula: Formula, pinned: FrozenSet[Variable], radius: int) -> Formula:
    """``phi~_V``: rewrite an FO+ formula for evaluation in ``A astrix_r d``.

    ``pinned`` is the set V of variables whose assigned value is the removed
    element d.  Every distance atom's bound must be <= radius (the q-rank
    bookkeeping of Section 7 guarantees this in the paper's pipeline).
    """
    for node in subexpressions(formula):
        if isinstance(node, DistAtom) and node.bound > radius:
            raise FormulaError(
                f"distance bound {node.bound} exceeds the removal radius {radius}"
            )
    return _rewrite(formula, frozenset(pinned), radius)


def _rewrite(formula: Formula, pinned: FrozenSet[Variable], radius: int) -> Formula:
    if isinstance(formula, Atom):
        positions = frozenset(
            i + 1 for i, arg in enumerate(formula.args) if arg in pinned
        )
        kept = tuple(arg for arg in formula.args if arg not in pinned)
        return Atom(removed_relation_name(formula.relation, positions), kept)
    if isinstance(formula, Eq):
        in_left = formula.left in pinned
        in_right = formula.right in pinned
        if in_left and in_right:
            return Top()
        if in_left or in_right:
            return Bottom()
        return formula
    if isinstance(formula, DistAtom):
        in_left = formula.left in pinned
        in_right = formula.right in pinned
        bound = formula.bound
        if in_left and in_right:
            return Top()
        if in_left:
            if bound == 0:
                return Bottom()  # x2 != d, so dist(d, x2) >= 1
            return Atom(distance_marker_name(bound), (formula.right,))
        if in_right:
            if bound == 0:
                return Bottom()
            return Atom(distance_marker_name(bound), (formula.left,))
        options: List[Formula] = [formula]
        for i1 in range(1, bound):
            i2 = bound - i1
            options.append(
                And(
                    Atom(distance_marker_name(i1), (formula.left,)),
                    Atom(distance_marker_name(i2), (formula.right,)),
                )
            )
        return disjunction(options)
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(_rewrite(formula.inner, pinned, radius))
    if isinstance(formula, Or):
        return Or(
            _rewrite(formula.left, pinned, radius),
            _rewrite(formula.right, pinned, radius),
        )
    if isinstance(formula, And):
        return And(
            _rewrite(formula.left, pinned, radius),
            _rewrite(formula.right, pinned, radius),
        )
    if isinstance(formula, Implies):
        return Implies(
            _rewrite(formula.left, pinned, radius),
            _rewrite(formula.right, pinned, radius),
        )
    if isinstance(formula, Iff):
        return Iff(
            _rewrite(formula.left, pinned, radius),
            _rewrite(formula.right, pinned, radius),
        )
    if isinstance(formula, Exists):
        # The witness is either d itself or an element that survives.
        with_d = _rewrite(formula.inner, pinned | {formula.variable}, radius)
        without_d = Exists(
            formula.variable,
            _rewrite(formula.inner, pinned - {formula.variable}, radius),
        )
        return Or(with_d, without_d)
    if isinstance(formula, Forall):
        with_d = _rewrite(formula.inner, pinned | {formula.variable}, radius)
        without_d = Forall(
            formula.variable,
            _rewrite(formula.inner, pinned - {formula.variable}, radius),
        )
        return And(with_d, without_d)
    raise FormulaError(
        f"removal transformation is defined for FO+; found {type(formula).__name__}"
    )


# ---------------------------------------------------------------------------
# Lemma 7.9: term transformation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RemovedGroundTerm:
    """One summand ``#(x-bar minus I). phi~_I`` of Lemma 7.9(a)."""

    variables: Tuple[Variable, ...]
    formula: Formula

    def count_term(self) -> CountTerm:
        return CountTerm(self.variables, self.formula)


@dataclass(frozen=True)
class RemovedUnaryTerm:
    """One unary summand of Lemma 7.9(b): free variable plus counted rest."""

    free_variable: Variable
    variables: Tuple[Variable, ...]
    formula: Formula

    def count_term(self) -> CountTerm:
        return CountTerm(self.variables, self.formula)


def removal_ground_term(
    variables: Sequence[Variable], body: Formula, radius: int
) -> List[RemovedGroundTerm]:
    """Lemma 7.9(a): ``g^A = sum_i g_hat_i^{A astrix_r d}`` for
    ``g = #(variables). body``."""
    parts: List[RemovedGroundTerm] = []
    names = list(variables)
    for size in range(len(names) + 1):
        for subset in itertools.combinations(range(len(names)), size):
            pinned = frozenset(names[i] for i in subset)
            kept = tuple(name for name in names if name not in pinned)
            parts.append(
                RemovedGroundTerm(kept, removal_formula(body, pinned, radius))
            )
    return parts


def removal_unary_term(
    free_variable: Variable,
    counted: Sequence[Variable],
    body: Formula,
    radius: int,
) -> Tuple[List[RemovedGroundTerm], List[RemovedUnaryTerm]]:
    """Lemma 7.9(b) for ``u(x1) = #(counted). body``:

    * at ``a = d``: ``u^A[d] = sum of the ground parts`` in ``A astrix_r d``
      (these pin x1, and possibly some counted variables, to d);
    * at ``a != d``: ``u^A[a] = sum of the unary parts at a``.
    """
    ground_parts: List[RemovedGroundTerm] = []
    unary_parts: List[RemovedUnaryTerm] = []
    names = list(counted)
    for size in range(len(names) + 1):
        for subset in itertools.combinations(range(len(names)), size):
            pinned_counted = frozenset(names[i] for i in subset)
            kept = tuple(name for name in names if name not in pinned_counted)
            # Case a = d: x1 is pinned too.
            ground_parts.append(
                RemovedGroundTerm(
                    kept,
                    removal_formula(
                        body, pinned_counted | {free_variable}, radius
                    ),
                )
            )
            # Case a != d: x1 stays free.
            unary_parts.append(
                RemovedUnaryTerm(
                    free_variable,
                    kept,
                    removal_formula(body, pinned_counted, radius),
                )
            )
    return ground_parts, unary_parts
