"""The component-factorization recursion of Lemma 6.4 / Lemma 7.6, and the
basic-local-sentence translation behind Theorem 6.8.

Given a counting term whose body prescribes a connectivity pattern G and one
formula per connected component of G (the *cover term* shape of Definition
7.5), the recursion rewrites it into a polynomial over *basic* cl-terms
(connected patterns only):

    |S| = |S'| * |S''| - sum over H in cal-H of |T_H|            (Lemma 6.4)

where S' / S'' split off the component containing position 1 and cal-H
ranges over the pattern graphs H that keep both induced sub-patterns but add
at least one cross edge.  Each T_H has strictly fewer components, so the
recursion terminates in basic cl-terms.  This file implements that recursion
*literally*, at the variable level, including the unary variant (free y1).

On top of it, :func:`decompose_factored_count` handles the Lemma 6.4 use
case our engine meets in practice: a body that is a conjunction of
*cohesive* blocks (each block forces its variables close together — e.g. a
positive relational atom, whose variables are Gaifman-adjacent).  Summing
the single-pattern recursion over all admissible pattern graphs G in G_k
yields the full count, with no Feferman–Vaught interpolation needed; the
paper's general case (arbitrary r-local psi) differs only in *producing* the
per-component formulas via FV, not in the counting recursion itself (see
DESIGN.md, substitution table).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import FormulaError
from ..logic.locality import all_graphs_on, graph_components
from ..logic.syntax import (
    And,
    Atom,
    DistAtom,
    Eq,
    Formula,
    Top,
    Variable,
    conjunction,
    free_variables,
)
from .clterms import BasicClTerm, ClPolynomial, CoverTerm, Edges

Component = FrozenSet[int]


def _induced_edges(edges: Edges, positions: Sequence[int]) -> Edges:
    """Edges of the induced sub-pattern, relabelled to 1..len(positions)
    following the sorted order of ``positions``."""
    index = {position: i + 1 for i, position in enumerate(sorted(positions))}
    return frozenset(
        (min(index[i], index[j]), max(index[i], index[j]))
        for i, j in edges
        if i in index and j in index
    )


def _cross_edge_subsets(left: Sequence[int], right: Sequence[int]) -> Iterable[Edges]:
    """All non-empty sets of cross edges between the two position sets."""
    pairs = [
        (min(i, j), max(i, j)) for i in left for j in right
    ]
    for size in range(1, len(pairs) + 1):
        for subset in itertools.combinations(pairs, size):
            yield frozenset(subset)


def decompose_pattern(
    variables: Tuple[Variable, ...],
    edges: Edges,
    component_formulas: Mapping[Component, Formula],
    psi_radius: int,
    link_distance: int,
    unary: bool,
) -> ClPolynomial:
    """The Lemma 6.4 / 7.6 recursion for one fixed pattern graph G.

    Returns a cl-term polynomial equal (for every structure) to the count of
    tuples whose exact connectivity pattern at ``link_distance`` is G and
    which satisfy every component formula.  ``unary`` produces the version
    with ``variables[0]`` free.
    """
    k = len(variables)
    components = [frozenset(c) for c in graph_components(k, edges)]
    given = {frozenset(c) for c in component_formulas}
    if given != set(components):
        raise FormulaError(
            "component_formulas must be indexed exactly by the components of G"
        )

    if len(components) == 1:
        psi = component_formulas[components[0]]
        return ClPolynomial.of(
            BasicClTerm(variables, psi, psi_radius, link_distance, edges, unary)
        )

    # Split off the component V' containing position 1.
    primary = next(c for c in components if 1 in c)
    secondary_positions = sorted(set(range(1, k + 1)) - primary)
    primary_positions = sorted(primary)

    primary_vars = tuple(variables[i - 1] for i in primary_positions)
    secondary_vars = tuple(variables[i - 1] for i in secondary_positions)

    primary_index = {p: i + 1 for i, p in enumerate(primary_positions)}
    secondary_index = {p: i + 1 for i, p in enumerate(secondary_positions)}

    term_primary = decompose_pattern(
        primary_vars,
        _induced_edges(edges, primary_positions),
        {frozenset(primary_index[p] for p in primary): component_formulas[primary]},
        psi_radius,
        link_distance,
        unary,
    )
    secondary_formulas = {
        frozenset(secondary_index[p] for p in component): component_formulas[component]
        for component in components
        if component != primary
    }
    term_secondary = decompose_pattern(
        secondary_vars,
        _induced_edges(edges, secondary_positions),
        secondary_formulas,
        psi_radius,
        link_distance,
        unary=False,
    )

    result = term_primary * term_secondary

    # Subtract the overcount: patterns H adding cross edges between V' and V''.
    for extra in _cross_edge_subsets(primary_positions, secondary_positions):
        h_edges: Edges = edges | extra
        h_components = [frozenset(c) for c in graph_components(k, h_edges)]
        merged: Dict[Component, Formula] = {}
        for h_component in h_components:
            parts = [
                component_formulas[c] for c in components if c <= h_component
            ]
            covered = frozenset().union(*(c for c in components if c <= h_component)) if parts else frozenset()
            if covered != h_component:
                raise FormulaError(
                    "internal error: H components must be unions of G components"
                )
            merged[h_component] = conjunction(parts)
        result = result - decompose_pattern(
            variables, h_edges, merged, psi_radius, link_distance, unary
        )
    return result


def decompose_cover_term(term: CoverTerm, psi_radius: int = 0) -> ClPolynomial:
    """Lemma 7.6: rewrite a cover term into a cover-cl-term polynomial.

    The returned basic terms carry the cover term's link distance; evaluated
    against a neighbourhood cover (see :mod:`repro.core.cover_eval`) or
    plainly (Section 6 semantics) they reproduce the cover term's count.
    """
    return decompose_pattern(
        term.variables,
        term.edges,
        dict(term.component_formulas),
        psi_radius,
        term.link_distance,
        term.unary,
    )


# ---------------------------------------------------------------------------
# Lemma 6.4 for conjunctions of cohesive blocks
# ---------------------------------------------------------------------------


def _positions_of(block: Formula, variables: Tuple[Variable, ...]) -> FrozenSet[int]:
    index = {variable: i + 1 for i, variable in enumerate(variables)}
    positions = set()
    for variable in free_variables(block):
        if variable in index:
            positions.add(index[variable])
        else:
            raise FormulaError(
                f"block mentions {variable!r}, which is not a counted variable"
            )
    return frozenset(positions)


def _piece_bound(piece: Formula) -> Optional[int]:
    """Distance bound a single satisfied conjunct forces between its free
    variables: atoms force co-occurrence (distance <= 1), equalities 0,
    distance atoms their bound; anything with <= 1 free variable is
    vacuously cohesive (bound 0).  None = not closeness-entailing."""
    if len(free_variables(piece)) <= 1:
        return 0
    if isinstance(piece, Atom):
        return 1
    if isinstance(piece, Eq):
        return 0
    if isinstance(piece, DistAtom):
        return piece.bound
    return None


def is_block_cohesive(block: Formula, link_distance: int) -> bool:
    """Whether a satisfied block keeps each pair of its variables that must
    interact within the link distance *and* chains all its variables into one
    Gaifman-connected group.

    Concretely: flatten the block into conjuncts; every multi-variable
    conjunct must entail pairwise distance <= link_distance among its own
    variables, and the union of the conjuncts' variable cliques must connect
    all of the block's free variables.  Under this condition a tuple
    satisfying the block always has all block variables in one component of
    its connectivity pattern at the link distance, which is the exactness
    precondition of :func:`decompose_factored_count`.
    """
    names = sorted(free_variables(block))
    if len(names) <= 1:
        return True
    pieces: List[Formula] = []

    def flatten(formula: Formula) -> None:
        if isinstance(formula, And):
            flatten(formula.left)
            flatten(formula.right)
        else:
            pieces.append(formula)

    flatten(block)
    adjacency: Dict[Variable, set] = {name: set() for name in names}
    for piece in pieces:
        piece_names = sorted(free_variables(piece))
        if len(piece_names) <= 1:
            continue
        bound = _piece_bound(piece)
        if bound is None or bound > link_distance:
            # Not closeness-entailing: contributes no pattern edges, but the
            # block may still be glued together by its other conjuncts.
            continue
        for a in piece_names:
            for b in piece_names:
                if a != b:
                    adjacency[a].add(b)
    seen = {names[0]}
    stack = [names[0]]
    while stack:
        node = stack.pop()
        for neighbour in adjacency[node]:
            if neighbour not in seen:
                seen.add(neighbour)
                stack.append(neighbour)
    return seen == set(names)


def split_blocks(body: Formula, variables: Tuple[Variable, ...]) -> List[Formula]:
    """Flatten a conjunction and regroup conjuncts that share counted
    variables into blocks (the connected components of the sharing graph)."""
    conjuncts: List[Formula] = []

    def flatten(formula: Formula) -> None:
        if isinstance(formula, And):
            flatten(formula.left)
            flatten(formula.right)
        elif not isinstance(formula, Top):
            conjuncts.append(formula)

    flatten(body)
    if not conjuncts:
        return [Top()]

    counted = set(variables)
    groups: List[Tuple[set, List[Formula]]] = []
    for conjunct in conjuncts:
        names = free_variables(conjunct) & counted
        touching = [g for g in groups if g[0] & names]
        merged_names = set(names)
        merged_formulas = [conjunct]
        for group in touching:
            merged_names |= group[0]
            merged_formulas = group[1] + merged_formulas
            groups.remove(group)
        groups.append((merged_names, merged_formulas))
    return [conjunction(formulas) for _, formulas in groups]


def decompose_factored_count(
    variables: Tuple[Variable, ...],
    body: Formula,
    psi_radius: int,
    link_distance: int,
    unary: bool = False,
) -> ClPolynomial:
    """Lemma 6.4 for bodies that split into cohesive blocks.

    Rewrites ``#(variables).body`` (or the unary variant with
    ``variables[0]`` free) into a cl-term polynomial, summing the
    single-pattern recursion over every pattern graph G whose components
    respect the blocks.  Raises :class:`~repro.errors.FormulaError` when a
    multi-variable block is not cohesive (its satisfaction would not confine
    its variables within the link distance) — the exactness precondition.
    """
    k = len(variables)
    if k < 1:
        raise FormulaError("need at least one counted variable")
    if link_distance < 1:
        raise FormulaError("the block decomposition needs link distance >= 1")
    blocks = split_blocks(body, variables)

    block_positions: List[FrozenSet[int]] = []
    sentence_blocks: List[Formula] = []
    positional_blocks: List[Tuple[FrozenSet[int], Formula]] = []
    for block in blocks:
        positions = _positions_of(block, variables)
        if not positions:
            sentence_blocks.append(block)
            continue
        if len(positions) > 1 and not is_block_cohesive(block, link_distance):
            raise FormulaError(
                "block is not cohesive within the link distance; "
                "exact factorised decomposition does not apply: "
                f"{block!r}"
            )
        positional_blocks.append((positions, block))
        block_positions.append(positions)

    result = ClPolynomial.constant(0)
    for edges in all_graphs_on(k):
        components = [frozenset(c) for c in graph_components(k, edges)]
        # admissible: every block lies inside one component
        placement: Dict[int, Component] = {}
        admissible = True
        for positions, _ in positional_blocks:
            homes = [c for c in components if positions <= c]
            if not homes:
                admissible = False
                break
        if not admissible:
            continue
        component_formulas: Dict[Component, Formula] = {}
        for component in components:
            parts = [
                block for positions, block in positional_blocks if positions <= component
            ]
            if 1 in component:
                parts = list(sentence_blocks) + parts
            component_formulas[component] = conjunction(parts)
        result = result + decompose_pattern(
            tuple(variables), edges, component_formulas, psi_radius, link_distance, unary
        )
    return result


# ---------------------------------------------------------------------------
# Theorem 6.8: basic local sentences as "g >= 1" statements
# ---------------------------------------------------------------------------


def basic_local_sentence_polynomial(sentence, psi_radius: "Optional[int]" = None) -> ClPolynomial:
    """Theorem 6.8's key step: translate a basic local sentence

        chi = exists y1..yk ( AND_{i<j} dist(yi, yj) > 2r  AND  psi(yi) )

    into a ground cl-term polynomial ``g-hat`` with ``A |= chi  iff
    g-hat^A >= 1``.  The scattered tuples are exactly the tuples whose
    connectivity pattern at link distance 2r is the edgeless graph, so the
    single-pattern recursion applies with singleton components.

    ``sentence`` is a :class:`repro.logic.locality.ScatteredSentence` whose
    ``psi`` is ``psi_radius``-local (Definition 6.6's r; for a basic local
    sentence ``min_distance = 2r``, which is the default when ``psi_radius``
    is not given).
    """
    from ..logic.locality import ScatteredSentence
    from ..logic.transform import rename_free

    if not isinstance(sentence, ScatteredSentence):
        raise FormulaError("expected a ScatteredSentence")
    if psi_radius is None:
        psi_radius = max(sentence.min_distance // 2, 1)
    k = sentence.count
    variables = tuple(f"{sentence.variable}_{i}" for i in range(1, k + 1))
    component_formulas = {
        frozenset({i}): rename_free(
            sentence.psi, {sentence.variable: variables[i - 1]}
        )
        for i in range(1, k + 1)
    }
    link = max(sentence.min_distance, 1)
    return decompose_pattern(
        variables,
        frozenset(),
        component_formulas,
        psi_radius,
        link,
        unary=False,
    )
