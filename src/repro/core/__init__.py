"""The paper's contribution: cl-term machinery, decomposition, removal,
cover evaluation, FOC1(P)-queries, and the evaluation engines."""

from .rank import (
    QRankReport,
    admissible_distance_bound,
    fq,
    has_q_rank,
    minimal_level,
    q_rank_report,
)
from .clterms import BasicClTerm, ClPolynomial, CoverTerm
from .local_eval import (
    evaluate_basic_ground,
    evaluate_basic_unary,
    evaluate_polynomial_ground,
    evaluate_polynomial_unary,
    pattern_tuples,
)
from .decomposition import (
    decompose_cover_term,
    decompose_factored_count,
    decompose_pattern,
    is_block_cohesive,
    split_blocks,
)
from .removal import (
    RemovedGroundTerm,
    RemovedUnaryTerm,
    distance_marker_name,
    remove_element,
    removal_formula,
    removal_ground_term,
    removal_unary_term,
    removed_relation_name,
    removed_signature,
)
from .cover_eval import (
    evaluate_basic_cover_unary,
    evaluate_cover_polynomial_unary,
    evaluate_cover_term,
    evaluate_per_cluster,
)
from .query import (
    Foc1Query,
    eliminate_free_variables,
    pin_name,
    pinned_ground_term,
    pinned_sentence,
    pinned_structure,
)
from .evaluator import Foc1Evaluator
from .baseline import BruteForceEvaluator
from .main_algorithm import MainAlgorithmStats, evaluate_unary_main_algorithm
from .incremental import IncrementalUnaryCache, UpdateStats

__all__ = [name for name in dir() if not name.startswith("_")]

from .ef_games import distinguish, duplicator_wins, is_partial_r_isomorphism
from .hanf import (
    PointedBall,
    TypeCensus,
    evaluate_basic_unary_hanf,
    neighbourhood_type_census,
)

__all__ = [name for name in dir() if not name.startswith("_")]
