"""FOC1(P)-queries (Definition 5.2) and the Section 5 free-variable
elimination.

A query ``{ (x1..xk, t1..tl) : phi }`` returns, on a structure A, all tuples
``(a-bar, n-bar)`` with ``A |= phi[a-bar]`` and ``n_j = t_j^A[a-bar]``.

Section 5 reduces evaluating such a query at a fixed tuple ``a-bar`` to
sentences and ground terms over the expanded signature
``sigma-tilde = sigma ∪ {X1..Xk}`` where each ``X_i`` is interpreted by the
singleton ``{a_i}``:

* ``phi-tilde = exists x1..xk (AND X_i(x_i) ∧ phi)``;
* in each ``t_j``, every top-level counting term ``#y-bar.theta`` becomes
  ``#y-bar. exists x1..xk (AND X_i(x_i) ∧ theta)``.

Both constructions are implemented literally and property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import FormulaError
from ..logic.foc1 import assert_foc1
from ..logic.predicates import PredicateCollection
from ..logic.semantics import evaluate, satisfies
from ..logic.syntax import (
    Add,
    And,
    Atom,
    CountTerm,
    Formula,
    IntTerm,
    Mul,
    Term,
    Variable,
    conjunction,
    exists_block,
    free_variables,
)
from ..robust.budget import EvaluationBudget
from ..structures.operations import pin_elements
from ..structures.structure import Element, Structure


def pin_name(variable: Variable) -> str:
    """The fresh unary symbol ``X_i`` used to pin ``variable``."""
    return f"X__{variable}"


@dataclass(frozen=True)
class Foc1Query:
    """``{ (x1..xk, t1..tl) : phi }`` — Definition 5.2.

    ``head_variables`` may be empty (purely aggregating queries, like the
    two-COUNTs example of 5.3) and ``head_terms`` may be empty (plain
    relational queries).
    """

    head_variables: Tuple[Variable, ...]
    head_terms: Tuple[Term, ...] = ()
    condition: Formula = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.condition is None:
            raise FormulaError("a query needs a condition formula")
        if len(set(self.head_variables)) != len(self.head_variables):
            raise FormulaError("head variables must be pairwise distinct")
        head = set(self.head_variables)
        condition_free = free_variables(self.condition)
        if condition_free != head:
            raise FormulaError(
                f"free(phi) must equal the head variables; phi has "
                f"{sorted(condition_free)}, head is {sorted(head)}"
            )
        for term in self.head_terms:
            extra = free_variables(term) - head
            if extra:
                raise FormulaError(
                    f"head term mentions non-head variables {sorted(extra)}"
                )

    def validate_foc1(self) -> None:
        """Raise :class:`~repro.errors.FragmentError` if any part of the
        query leaves the FOC1(P) fragment."""
        assert_foc1(self.condition)
        for term in self.head_terms:
            assert_foc1(term)

    # -- naive evaluation (the reference oracle) --------------------------------

    def evaluate_naive(
        self,
        structure: Structure,
        predicates: "Optional[PredicateCollection]" = None,
        budget: "Optional[EvaluationBudget]" = None,
    ) -> List[Tuple]:
        """``q(A)`` by brute-force enumeration of head-variable tuples."""
        import itertools

        results: List[Tuple] = []
        universe = list(structure.universe_order)
        for tup in itertools.product(universe, repeat=len(self.head_variables)):
            if budget is not None:
                budget.tick("query.naive")
            assignment = dict(zip(self.head_variables, tup))
            if not satisfies(structure, self.condition, assignment, predicates, budget):
                continue
            values = tuple(
                evaluate(term, structure, assignment, predicates, budget)
                for term in self.head_terms
            )
            results.append(tup + values)
        return results


# ---------------------------------------------------------------------------
# Section 5 free-variable elimination
# ---------------------------------------------------------------------------


def pinned_structure(
    structure: Structure,
    head_variables: Sequence[Variable],
    elements: Sequence[Element],
) -> Structure:
    """The sigma-tilde expansion: ``X_i`` interpreted as ``{a_i}``."""
    if len(head_variables) != len(elements):
        raise FormulaError("one pinned element per head variable, please")
    return pin_elements(
        structure,
        {pin_name(v): a for v, a in zip(head_variables, elements)},
    )


def _pin_guard(head_variables: Sequence[Variable]) -> Formula:
    return conjunction(
        Atom(pin_name(variable), (variable,)) for variable in head_variables
    )


def pinned_sentence(formula: Formula, head_variables: Sequence[Variable]) -> Formula:
    """``phi-tilde := exists x1..xk (AND X_i(x_i) ∧ phi)`` — a sentence over
    sigma-tilde with ``A-tilde |= phi-tilde iff A |= phi[a-bar]``."""
    extra = free_variables(formula) - set(head_variables)
    if extra:
        raise FormulaError(f"formula has unpinned free variables {sorted(extra)}")
    body = And(_pin_guard(head_variables), formula) if head_variables else formula
    return exists_block(head_variables, body)


def pinned_ground_term(term: Term, head_variables: Sequence[Variable]) -> Term:
    """``t-tilde``: wrap every top-level counting term so it is ground.

    Per Section 5, ``#y-bar.theta(x-bar, y-bar)`` becomes
    ``#y-bar. exists x-bar (AND X_i(x_i) ∧ theta)``.
    """
    head = list(head_variables)

    def rewrite(node: Term) -> Term:
        if isinstance(node, IntTerm):
            return node
        if isinstance(node, Add):
            return Add(rewrite(node.left), rewrite(node.right))
        if isinstance(node, Mul):
            return Mul(rewrite(node.left), rewrite(node.right))
        if isinstance(node, CountTerm):
            clash = set(node.variables) & set(head)
            if clash:
                # A counting term may bind a head-variable name; alpha-rename
                # its binder so the exists-wrap below cannot capture it.
                from ..logic.syntax import all_variables
                from ..logic.transform import fresh_variable, rename_free

                taken = set(all_variables(node)) | set(head)
                mapping = {}
                for name in sorted(clash):
                    fresh = fresh_variable(name, taken)
                    taken.add(fresh)
                    mapping[name] = fresh
                renamed_inner = rename_free(node.inner, mapping)
                node = CountTerm(
                    tuple(mapping.get(v, v) for v in node.variables),
                    renamed_inner,  # type: ignore[arg-type]
                )
            body = And(_pin_guard(head), node.inner) if head else node.inner
            return CountTerm(node.variables, exists_block(head, body))
        raise FormulaError(f"unexpected term node {type(node).__name__}")

    result = rewrite(term)
    if free_variables(result):
        raise FormulaError("pinning failed to close the term")
    return result


def eliminate_free_variables(
    query: Foc1Query,
    structure: Structure,
    elements: Sequence[Element],
) -> Tuple[Structure, Formula, Tuple[Term, ...]]:
    """The full Section 5 package for one candidate tuple ``a-bar``:
    returns ``(A-tilde, phi-tilde, (t-tilde_1, ..., t-tilde_l))``."""
    expanded = pinned_structure(structure, query.head_variables, elements)
    sentence = pinned_sentence(query.condition, query.head_variables)
    terms = tuple(
        pinned_ground_term(term, query.head_variables) for term in query.head_terms
    )
    return expanded, sentence, terms
