"""The main algorithm of Section 8.2, composed end-to-end.

Section 8.2 evaluates a unary basic cl-term ``u(x1)`` on a structure from a
nowhere dense class by:

1. computing a sparse neighbourhood cover (Theorem 8.1);
2. grouping elements by their assigned cluster (the ``Q`` relativisation)
   and working inside each cluster substructure ``B_X``;
3. letting *Splitter* answer Connector's move ``cen(X)`` — the removed
   element ``d``;
4. performing the surgery ``B_X astrix_r d`` and rewriting the term through
   the Removal Lemma (7.9);
5. evaluating the rewritten parts on the smaller structure and recombining.

This module implements that loop faithfully, with the recursion depth as a
parameter.  At depth 0 (and in every base case) the rewritten parts are
evaluated by the generic engine, so the result is *exact* regardless of
depth — the knob only moves work between the removal recursion and the
base-case engine.  The full unbounded recursion additionally needs the
rank-preserving bookkeeping of Theorem 7.1 to re-localise the rewritten
terms; we keep each recursion level inside the (strictly shrinking) cluster
substructures instead, which preserves exactness and still exercises every
ingredient (cover, game move, surgery, term rewriting) per level.

The per-run :class:`MainAlgorithmStats` makes the machinery observable:
clusters processed, removals performed, base-case evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import FormulaError
from ..logic.predicates import PredicateCollection, standard_collection
from ..logic.syntax import Formula, Variable
from ..obs import active_metrics, traced
from ..parallel import WorkerPool, shard
from ..plan.cache import PlanCache
from ..robust.budget import EvaluationBudget
from ..robust.partial import PartialResult, ShardFailure, validate_failure_mode
from ..robust.retry import RetryPolicy
from ..sparse.covers import sparse_cover
from ..structures.gaifman import induced
from ..structures.structure import Element, Structure
from .clterms import BasicClTerm
from .evaluator import Foc1Evaluator
from .removal import removal_unary_term, remove_element


@dataclass
class MainAlgorithmStats:
    """Counters describing one run of the Section 8.2 loop."""

    covers_built: int = 0
    clusters_processed: int = 0
    removals: int = 0
    base_case_elements: int = 0
    max_depth_reached: int = 0

    def merge(self, other: "MainAlgorithmStats") -> None:
        """Fold a worker shard's counters into this (parent) record."""
        self.covers_built += other.covers_built
        self.clusters_processed += other.clusters_processed
        self.removals += other.removals
        self.base_case_elements += other.base_case_elements
        self.max_depth_reached = max(
            self.max_depth_reached, other.max_depth_reached
        )


def _direct_unary_values(
    structure: Structure,
    free_variable: Variable,
    counted: Tuple[Variable, ...],
    body: Formula,
    elements: Sequence[Element],
    engine: Foc1Evaluator,
) -> Dict[Element, int]:
    from ..logic.syntax import CountTerm

    term = CountTerm(counted, body)
    return engine.unary_term_values(structure, term, free_variable, elements)


def _ground_value(
    structure: Structure,
    counted: Tuple[Variable, ...],
    body: Formula,
    engine: Foc1Evaluator,
) -> int:
    from ..logic.syntax import CountTerm

    return engine.ground_term_value(structure, CountTerm(counted, body))


@traced("main_algorithm.evaluate_unary")
def evaluate_unary_main_algorithm(
    structure: Structure,
    term: BasicClTerm,
    depth: int = 1,
    small_threshold: int = 12,
    predicates: "Optional[PredicateCollection]" = None,
    stats: "Optional[MainAlgorithmStats]" = None,
    budget: "Optional[EvaluationBudget]" = None,
    plan_cache: "Optional[PlanCache]" = None,
    workers: "Optional[int]" = None,
    retry: "Optional[RetryPolicy]" = None,
    on_shard_failure: str = "raise",
) -> "Dict[Element, int] | PartialResult":
    """Evaluate ``u^A[a]`` for all ``a`` via the Section 8.2 loop.

    ``term`` must be a unary basic cl-term; its ``psi`` must genuinely be
    ``psi_radius``-local (Definition 6.2's contract — the same assumption
    the paper makes).  ``depth`` bounds how many cover/removal rounds are
    performed before falling back to the engine; the answer is exact for
    every depth.  An optional ``budget`` is drawn on per processed cluster
    and inside every engine call; exhaustion raises
    :class:`~repro.errors.BudgetExceededError`.  The removal rewrite
    produces the same sub-terms for every cluster, so the base-case engine
    leans hard on the plan cache (``plan_cache`` overrides the shared
    process-wide one).

    With ``workers > 1`` the top-level cluster loop fans out across a
    thread :class:`~repro.parallel.WorkerPool`: clusters are sharded in
    index order, each shard runs on its own engine (sharing the
    thread-safe plan cache) under a proportional budget slice, and shard
    results merge deterministically, so the output is byte-identical to
    the serial loop.  A ``retry`` policy re-runs a failed cluster shard
    alone; ``on_shard_failure="salvage"`` keeps the completed shards and
    returns a :class:`~repro.robust.partial.PartialResult` carrying the
    failed cluster ids when retries are exhausted (the plain dict when
    nothing was lost).
    """
    validate_failure_mode(on_shard_failure)
    if not term.unary:
        raise FormulaError("the main algorithm evaluates unary basic cl-terms")
    # The cluster loop below owns all the parallelism (and the configured
    # retry/salvage policy); the base-case engine stays serial so that a
    # REPRO_WORKERS default cannot open an ungoverned nested fan-out
    # inside it — or inside a worker shard, which would oversubscribe.
    engine = Foc1Evaluator(
        predicates=predicates if predicates is not None else standard_collection(),
        check_fragment=False,
        budget=budget,
        plan_cache=plan_cache,
        workers=1,
    )
    if stats is None:
        stats = MainAlgorithmStats()
    body = term.body()
    counted = term.variables[1:]
    free_variable = term.variables[0]
    # Confinement radius: counted tuples and psi's neighbourhood stay within
    # this distance of x1 (Lemma 6.1), so a cover of this radius makes the
    # per-cluster evaluation exact.
    confinement = term.evaluation_radius() + max(
        term.psi_radius, term.link_distance
    )
    # The removal radius must dominate every distance atom in the body.
    removal_radius = max(term.link_distance, term.psi_radius, 1)
    values = _evaluate_level(
        structure,
        free_variable,
        counted,
        body,
        list(structure.universe_order),
        confinement,
        removal_radius,
        depth,
        small_threshold,
        engine,
        stats,
        level=1,
        pool=WorkerPool(workers),
        retry=retry,
        on_shard_failure=on_shard_failure,
    )
    return values


def _process_cluster(
    structure: Structure,
    cover,
    index: int,
    members: List[Element],
    free_variable: Variable,
    counted: Tuple[Variable, ...],
    body: Formula,
    confinement: int,
    removal_radius: int,
    small_threshold: int,
    engine: Foc1Evaluator,
    stats: MainAlgorithmStats,
    level: int,
) -> Dict[Element, int]:
    """One cluster of the Section 8.2 loop (cover move, surgery, rewrite)."""
    budget = engine.budget
    metrics = active_metrics()
    if budget is not None:
        budget.tick("main.cluster")
    if metrics is not None:
        metrics.inc("main.cluster.processed")
    stats.clusters_processed += 1
    local = induced(structure, cover.clusters[index])
    values: Dict[Element, int] = {}

    if local.order() < 2 or local.order() >= structure.order():
        # Removal impossible (singleton) or useless (cluster is the
        # whole structure, e.g. on dense inputs): evaluate directly.
        stats.base_case_elements += len(members)
        return _direct_unary_values(
            local, free_variable, counted, body, members, engine
        )

    # Splitter's move: remove the cluster centre (Connector plays
    # cen(X); removing the centre is a sound Splitter answer).
    d = cover.centres[index]
    removed = remove_element(local, d, removal_radius)
    if metrics is not None:
        metrics.inc("main.removal")
    stats.removals += 1
    ground_parts, unary_parts = removal_unary_term(
        free_variable, counted, body, removal_radius
    )

    live_members = [a for a in members if a != d]
    if live_members:
        # The rewritten parts are evaluated directly on the removed
        # structure (depth 0): a further cover/removal round would need
        # the rank-preserving re-localisation of Theorem 7.1 to restore
        # the confinement invariant, because the surgery can only grow
        # distances.  One round already exercises the full pipeline and
        # keeps the result exact.
        per_part: List[Dict[Element, int]] = []
        for part in unary_parts:
            per_part.append(
                _evaluate_level(
                    removed,
                    part.free_variable,
                    part.variables,
                    part.formula,
                    live_members,
                    confinement,
                    removal_radius,
                    0,
                    small_threshold,
                    engine,
                    stats,
                    level + 1,
                )
            )
        for a in live_members:
            values[a] = sum(part[a] for part in per_part)
    if d in set(members):
        values[d] = sum(
            _ground_value(removed, part.variables, part.formula, engine)
            for part in ground_parts
        )
    return values


def _evaluate_level(
    structure: Structure,
    free_variable: Variable,
    counted: Tuple[Variable, ...],
    body: Formula,
    targets: List[Element],
    confinement: int,
    removal_radius: int,
    depth: int,
    small_threshold: int,
    engine: Foc1Evaluator,
    stats: MainAlgorithmStats,
    level: int,
    pool: "Optional[WorkerPool]" = None,
    retry: "Optional[RetryPolicy]" = None,
    on_shard_failure: str = "raise",
) -> "Dict[Element, int] | PartialResult":
    stats.max_depth_reached = max(stats.max_depth_reached, level)
    if depth <= 0 or structure.order() <= small_threshold:
        stats.base_case_elements += len(targets)
        return _direct_unary_values(
            structure, free_variable, counted, body, targets, engine
        )

    budget = engine.budget
    cover = sparse_cover(structure, confinement, budget=budget)
    stats.covers_built += 1
    target_set = set(targets)
    per_cluster_members = []
    for index in range(len(cover.clusters)):
        members = [a for a in cover.members_with_cluster(index) if a in target_set]
        if members:
            per_cluster_members.append((index, members))

    def process_serial(work, engine, stats):
        values: Dict[Element, int] = {}
        for index, members in work:
            values.update(
                _process_cluster(
                    structure,
                    cover,
                    index,
                    members,
                    free_variable,
                    counted,
                    body,
                    confinement,
                    removal_radius,
                    small_threshold,
                    engine,
                    stats,
                    level,
                )
            )
        return values

    plain = retry is None and on_shard_failure == "raise"
    if (
        pool is None or pool.workers <= 1 or len(per_cluster_members) <= 1
    ) and plain:
        return process_serial(per_cluster_members, engine, stats)
    if pool is None:
        pool = WorkerPool(1)

    # Cluster-sharded fan-out: each shard gets its own engine (sharing the
    # thread-safe plan cache, so the identical rewritten sub-terms still
    # compile once) and its own stats record, merged in shard order below.

    def make_task(chunk):
        def task(slice_budget):
            worker_engine = Foc1Evaluator(
                predicates=engine.predicates,
                check_fragment=False,
                budget=slice_budget,
                plan_cache=engine.plan_cache,
                workers=1,
            )
            worker_stats = MainAlgorithmStats()
            result = process_serial(chunk, worker_engine, worker_stats)
            return result, worker_stats

        return task

    chunks = shard(per_cluster_members, max(pool.workers, 1))
    tasks = [make_task(chunk) for chunk in chunks]
    if on_shard_failure == "salvage":
        outcomes = pool.run_tasks(tasks, budget, retry=retry, on_failure="salvage")
        values: Dict[Element, int] = {}
        failures: List[ShardFailure] = []
        expected = sum(len(members) for _, members in per_cluster_members)
        for outcome in outcomes:
            if outcome.error is None:
                part, worker_stats = outcome.value
                values.update(part)
                stats.merge(worker_stats)
            else:
                failures.append(
                    ShardFailure(
                        shard=outcome.index,
                        items=tuple(
                            index for index, _ in chunks[outcome.index]
                        ),
                        error_type=type(outcome.error).__name__,
                        error=str(outcome.error),
                        attempts=outcome.attempts,
                    )
                )
        if not failures:
            return values
        return PartialResult(
            operation="evaluate_unary_main_algorithm",
            value=values,
            failures=failures,
            expected=expected,
            covered=len(values),
        )
    shard_stats = []
    values = {}
    for part, worker_stats in pool.run_tasks(tasks, budget, retry=retry):
        values.update(part)
        shard_stats.append(worker_stats)
    for worker_stats in shard_stats:
        stats.merge(worker_stats)
    return values
