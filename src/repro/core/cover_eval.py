"""Evaluation of cover terms relative to a neighbourhood cover
(Definitions 7.4 / 7.5 and the per-cluster loop of Section 8.2).

Two evaluation paths are provided:

* :func:`evaluate_basic_cover_unary` / :func:`evaluate_cover_term` — the
  *semantic* path: enumerate the counted tuples in the full structure
  (patterns measured in A), but check each component formula inside a
  cluster that r-covers the component, exactly as the definitions demand.

* :func:`evaluate_per_cluster` — the Section 8.2 *algorithmic* path: group
  elements by their assigned cluster X(a) (the ``Q`` relativisation of the
  paper) and evaluate each group entirely inside the induced substructure
  ``A[X]``.  This is only sound when the cover is a ``k*r``-neighbourhood
  cover (then patterns measured inside the cluster agree with patterns
  measured in A, cf. the argument in Section 8.2); the function checks the
  radius precondition and the tests confirm the two paths agree.

Both paths enumerate counted tuples through
:func:`repro.core.local_eval.pattern_tuples`, whose BFS placement order is
compiled once per pattern graph (see
:func:`repro.core.local_eval.pattern_order`) — the cover loops walk the
same handful of patterns across every cluster, so the order is static
analysis, not per-tuple work.  Polynomial evaluation additionally shares
one ball cache across all basic terms with the same link distance.

Both entry points accept ``workers``/``backend``: clusters (for the
per-cluster path) or target elements (for the semantic path) are sharded
deterministically across a :class:`~repro.parallel.WorkerPool` and the
shard results merge in shard-index order, so any worker count produces
byte-identical output to the serial loop (see ``docs/PARALLEL.md``).
``workers=1`` (the default) *is* the serial loop.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

from ..errors import FormulaError
from ..logic.predicates import PredicateCollection
from ..logic.semantics import satisfies
from ..obs import active_metrics, traced
from ..parallel import WorkerPool, shard
from ..robust.budget import EvaluationBudget
from ..robust.partial import PartialResult, ShardFailure, validate_failure_mode
from ..robust.retry import RetryPolicy
from ..logic.syntax import Formula, Variable
from ..sparse.covers import CoverError, NeighbourhoodCover
from ..structures.gaifman import connectivity_graph, induced
from ..structures.structure import Element, Structure
from .clterms import BasicClTerm, ClPolynomial, CoverTerm
from .local_eval import _BallCache, pattern_tuples


def _holds_in_cluster(
    structure: Structure,
    cover: NeighbourhoodCover,
    formula: Formula,
    variables: Sequence[Variable],
    elements: Sequence[Element],
    cover_radius: int,
    predicates: "Optional[PredicateCollection]",
    check_well_defined: bool = False,
    budget: "Optional[EvaluationBudget]" = None,
) -> bool:
    """Check ``A[X] |= psi[a-bar]`` for a cluster X that r-covers the tuple.

    With ``check_well_defined`` every covering cluster is consulted and a
    disagreement raises — the (**) condition of Definition 7.5.
    """
    indices = cover.clusters_s_covering(elements, cover_radius)
    if not indices:
        raise CoverError(
            f"no cluster {cover_radius}-covers the tuple {tuple(elements)!r}; "
            "use a cover of sufficient radius"
        )
    assignment = dict(zip(variables, elements))
    first = satisfies(
        induced(structure, cover.clusters[indices[0]]),
        formula,
        assignment,
        predicates,
        budget,
    )
    if check_well_defined:
        for index in indices[1:]:
            other = satisfies(
                induced(structure, cover.clusters[index]),
                formula,
                assignment,
                predicates,
                budget,
            )
            if other != first:
                raise CoverError(
                    "formula is not cover-independent: clusters disagree "
                    f"on {tuple(elements)!r} (condition (**) of Definition 7.5)"
                )
    return first


def _merge_unary_outcomes(
    outcomes,
    chunks: List[list],
    chunk_sizes: List[int],
    operation: str,
) -> "Dict[Element, int] | PartialResult":
    """Fold salvage-mode shard outcomes into a dict or a PartialResult.

    ``chunks[i]`` holds the work items shard ``i`` carried (targets or
    cluster indices) and ``chunk_sizes[i]`` how many *result elements*
    that shard would contribute.  A full success returns the plain merged
    dict — salvage never changes the type of a complete answer.
    """
    values: Dict[Element, int] = {}
    failures: List[ShardFailure] = []
    for outcome in outcomes:
        if outcome.error is None:
            values.update(outcome.value)
        else:
            failures.append(
                ShardFailure(
                    shard=outcome.index,
                    items=tuple(chunks[outcome.index]),
                    error_type=type(outcome.error).__name__,
                    error=str(outcome.error),
                    attempts=outcome.attempts,
                )
            )
    if not failures:
        return values
    return PartialResult(
        operation=operation,
        value=values,
        failures=failures,
        expected=sum(chunk_sizes),
        covered=len(values),
    )


def _basic_unary_shard(
    structure: Structure,
    cover: NeighbourhoodCover,
    term: CoverTerm,
    psi: Formula,
    targets: Sequence[Element],
    predicates: "Optional[PredicateCollection]",
    check_well_defined: bool,
    budget: "Optional[EvaluationBudget]",
    balls: "Optional[_BallCache]",
) -> Dict[Element, int]:
    """One shard of the semantic path: ``u^{A,X}[a]`` for the given targets."""
    if balls is None:
        balls = _BallCache(structure, term.link_distance)
    metrics = active_metrics()
    # Hot path: resolve the per-tuple instrumentation hooks once and keep
    # the uninstrumented loop free of per-tuple `is not None` tests.
    tick = budget.tick if budget is not None else None
    inc = metrics.inc if metrics is not None else None
    values: Dict[Element, int] = {}
    for element in targets:
        total = 0
        tuples = pattern_tuples(
            structure, element, term.width, term.edges, term.link_distance, balls
        )
        if tick is None and inc is None:
            for tup in tuples:
                if _holds_in_cluster(
                    structure,
                    cover,
                    psi,
                    term.variables,
                    tup,
                    term.link_distance,
                    predicates,
                    check_well_defined,
                    budget,
                ):
                    total += 1
        else:
            for tup in tuples:
                if tick is not None:
                    tick("cover.tuple")
                if inc is not None:
                    inc("cover_eval.tuple")
                if _holds_in_cluster(
                    structure,
                    cover,
                    psi,
                    term.variables,
                    tup,
                    term.link_distance,
                    predicates,
                    check_well_defined,
                    budget,
                ):
                    total += 1
        values[element] = total
    return values


@traced("cover_eval.basic_unary")
def evaluate_basic_cover_unary(
    structure: Structure,
    cover: NeighbourhoodCover,
    term: CoverTerm,
    elements: "Optional[Sequence[Element]]" = None,
    predicates: "Optional[PredicateCollection]" = None,
    check_well_defined: bool = False,
    budget: "Optional[EvaluationBudget]" = None,
    ball_cache: "Optional[_BallCache]" = None,
    workers: "Optional[int]" = None,
    backend: str = "thread",
    retry: "Optional[RetryPolicy]" = None,
    on_shard_failure: str = "raise",
) -> "Dict[Element, int] | PartialResult":
    """``u^{A,X}[a]`` for a *basic* (connected) cover-cl-term, all ``a``.

    Counted tuples are generated by pattern walking (distances measured in
    the full structure A, as Definition 7.4 requires); the single component
    formula is then checked inside an r-covering cluster.  An optional
    ``ball_cache`` (for this structure and link distance) is reused instead
    of building a fresh one, so batch callers share ball expansions.

    With ``workers > 1`` the targets are sharded deterministically across
    a :class:`~repro.parallel.WorkerPool` (each shard gets its own ball
    cache — the memo is not shared across workers) and the shard results
    merge in shard order, reproducing the serial output exactly.  A
    ``retry`` policy re-runs failed shards alone;
    ``on_shard_failure="salvage"`` keeps completed shards and returns a
    :class:`~repro.robust.partial.PartialResult` when failures remain
    (the plain dict whenever nothing was lost).
    """
    validate_failure_mode(on_shard_failure)
    if not term.unary:
        raise FormulaError("expected a unary cover term")
    if not term.is_basic():
        raise FormulaError("expected a basic (connected) cover-cl-term")
    psi = term.component_formulas[0][1]
    targets = list(elements) if elements is not None else list(structure.universe_order)
    pool = WorkerPool(workers, backend)
    plain = retry is None and on_shard_failure == "raise"
    if (pool.workers <= 1 or len(targets) <= 1) and plain:
        balls = (
            ball_cache
            if ball_cache is not None
            and ball_cache.distance == term.link_distance
            else None
        )
        return _basic_unary_shard(
            structure,
            cover,
            term,
            psi,
            targets,
            predicates,
            check_well_defined,
            budget,
            balls,
        )
    chunks = shard(targets, max(pool.workers, 1))
    tasks = [
        lambda b, chunk=chunk: _basic_unary_shard(
            structure,
            cover,
            term,
            psi,
            chunk,
            predicates,
            check_well_defined,
            b,
            None,
        )
        for chunk in chunks
    ]
    if on_shard_failure == "salvage":
        outcomes = pool.run_tasks(
            tasks, budget, retry=retry, on_failure="salvage"
        )
        return _merge_unary_outcomes(
            outcomes,
            chunks,
            [len(chunk) for chunk in chunks],
            "evaluate_basic_cover_unary",
        )
    values: Dict[Element, int] = {}
    for part in pool.run_tasks(tasks, budget, retry=retry):
        values.update(part)
    return values


@traced("cover_eval.reference")
def evaluate_cover_term(
    structure: Structure,
    cover: NeighbourhoodCover,
    term: CoverTerm,
    predicates: "Optional[PredicateCollection]" = None,
    check_well_defined: bool = False,
    budget: "Optional[EvaluationBudget]" = None,
) -> "int | Dict[Element, int]":
    """Reference semantics of Definition 7.5 (brute-force over tuples).

    Ground terms return an integer, unary terms a per-element dict.  This is
    the oracle the Lemma 7.6 decomposition is tested against; it enumerates
    ``|A|^k`` tuples, so use it on small structures only.
    """
    k = term.width
    universe = list(structure.universe_order)

    def tuple_counts(first: "Optional[Element]") -> int:
        total = 0
        rest = k - 1 if first is not None else k
        for tail in itertools.product(universe, repeat=rest):
            if budget is not None:
                budget.tick("cover.tuple")
            tup = (first,) + tail if first is not None else tail
            if connectivity_graph(structure, tup, term.link_distance) != term.edges:
                continue
            good = True
            for component, psi in term.component_formulas:
                positions = sorted(component)
                sub_elements = [tup[i - 1] for i in positions]
                sub_variables = [term.variables[i - 1] for i in positions]
                if not _holds_in_cluster(
                    structure,
                    cover,
                    psi,
                    sub_variables,
                    sub_elements,
                    term.link_distance,
                    predicates,
                    check_well_defined,
                    budget,
                ):
                    good = False
                    break
            if good:
                total += 1
        return total

    if term.unary:
        return {a: tuple_counts(a) for a in universe}
    return tuple_counts(None)


def evaluate_cover_polynomial_unary(
    structure: Structure,
    cover: NeighbourhoodCover,
    polynomial: ClPolynomial,
    elements: "Optional[Sequence[Element]]" = None,
    predicates: "Optional[PredicateCollection]" = None,
    budget: "Optional[EvaluationBudget]" = None,
) -> Dict[Element, int]:
    """Evaluate a Lemma 7.6 output polynomial with cover semantics.

    Each basic cl-term in the polynomial is interpreted as a basic
    cover-cl-term (its ``psi`` checked inside covering clusters).
    """
    targets = list(elements) if elements is not None else list(structure.universe_order)
    unary_cache: Dict[BasicClTerm, Dict[Element, int]] = {}
    ground_cache: Dict[BasicClTerm, int] = {}
    # One ball cache per distinct link distance, shared across the
    # polynomial's basic terms (they usually all use the same one).
    shared_balls: Dict[int, _BallCache] = {}
    for basic in polynomial.basic_terms():
        balls = shared_balls.setdefault(
            basic.link_distance, _BallCache(structure, basic.link_distance)
        )
        as_cover = CoverTerm(
            basic.variables,
            basic.edges,
            basic.link_distance,
            ((frozenset(range(1, basic.width + 1)), basic.psi),),
            basic.unary,
        )
        if basic.unary:
            unary_cache[basic] = evaluate_basic_cover_unary(
                structure,
                cover,
                as_cover,
                None,
                predicates,
                budget=budget,
                ball_cache=balls,
            )
        else:
            companion = CoverTerm(
                basic.variables,
                basic.edges,
                basic.link_distance,
                ((frozenset(range(1, basic.width + 1)), basic.psi),),
                unary=True,
            )
            per_element = evaluate_basic_cover_unary(
                structure,
                cover,
                companion,
                None,
                predicates,
                budget=budget,
                ball_cache=balls,
            )
            ground_cache[basic] = sum(per_element.values())
    result: Dict[Element, int] = {}
    for element in targets:
        result[element] = polynomial.evaluate(
            lambda basic: unary_cache[basic][element]
            if basic.unary
            else ground_cache[basic]
        )
    return result


def _cluster_shard_values(
    structure: Structure,
    cover: NeighbourhoodCover,
    term: CoverTerm,
    psi: Formula,
    indices: Sequence[int],
    predicates: "Optional[PredicateCollection]",
    budget: "Optional[EvaluationBudget]",
) -> Dict[Element, int]:
    """One shard of the Section 8.2 loop: the listed clusters, in order.

    Shard-local state only (the induced substructure and its ball cache
    are per cluster), so shards are safe to run on any
    :class:`~repro.parallel.WorkerPool` backend; iterating a contiguous
    index range reproduces the serial loop's member order exactly.
    """
    metrics = active_metrics()
    tick = budget.tick if budget is not None else None
    inc = metrics.inc if metrics is not None else None
    instrumented = tick is not None or inc is not None
    values: Dict[Element, int] = {}
    for index in indices:
        members = cover.members_with_cluster(index)
        if not members:
            continue
        local = induced(structure, cover.clusters[index])
        balls = _BallCache(local, term.link_distance)
        for element in members:
            total = 0
            tuples = pattern_tuples(
                local, element, term.width, term.edges, term.link_distance, balls
            )
            if not instrumented:
                for tup in tuples:
                    if satisfies(
                        local,
                        psi,
                        dict(zip(term.variables, tup)),
                        predicates,
                        budget,
                    ):
                        total += 1
            else:
                for tup in tuples:
                    if tick is not None:
                        tick("cover.tuple")
                    if inc is not None:
                        inc("cover_eval.tuple")
                    if satisfies(
                        local,
                        psi,
                        dict(zip(term.variables, tup)),
                        predicates,
                        budget,
                    ):
                        total += 1
            values[element] = total
    return values


@traced("cover_eval.per_cluster")
def evaluate_per_cluster(
    structure: Structure,
    cover: NeighbourhoodCover,
    term: CoverTerm,
    predicates: "Optional[PredicateCollection]" = None,
    budget: "Optional[EvaluationBudget]" = None,
    workers: "Optional[int]" = None,
    backend: str = "thread",
    retry: "Optional[RetryPolicy]" = None,
    on_shard_failure: str = "raise",
) -> "Dict[Element, int] | PartialResult":
    """Section 8.2's per-cluster evaluation of a unary basic cover-cl-term.

    For each cluster X, evaluates the count *inside* ``A[X]`` for exactly the
    elements assigned to X (the paper's ``Q`` relativisation).  Requires the
    cover to be a ``k * link_distance``-neighbourhood cover so that patterns
    measured in the cluster agree with patterns in A.

    Clusters are independent, so with ``workers > 1`` they are sharded
    (contiguously, in cluster-index order) across a
    :class:`~repro.parallel.WorkerPool`; merging the shard dicts in shard
    order makes the result byte-identical to the serial loop at every
    worker count.  ``backend="process"`` ships each shard to a child
    interpreter (inputs must be picklable; only the standard predicate
    collection is supported there).

    A ``retry`` policy re-runs a failed shard alone (fresh budget slice,
    deterministic backoff).  ``on_shard_failure="salvage"`` keeps the
    completed shards when retries are exhausted and returns a
    :class:`~repro.robust.partial.PartialResult` carrying the failed
    cluster ids and the coverage fraction; a run without failures still
    returns the plain dict.
    """
    validate_failure_mode(on_shard_failure)
    if not term.unary or not term.is_basic():
        raise FormulaError("per-cluster evaluation expects a unary basic term")
    needed = term.width * term.link_distance
    if cover.radius < needed:
        raise CoverError(
            f"per-cluster evaluation needs a {needed}-neighbourhood cover; "
            f"this one has radius parameter {cover.radius}"
        )
    psi = term.component_formulas[0][1]
    pool = WorkerPool(workers, backend)
    indices = [
        index
        for index in range(len(cover.clusters))
        if cover.members_with_cluster(index)
    ]
    plain = retry is None and on_shard_failure == "raise"
    if (pool.workers <= 1 or len(indices) <= 1) and plain:
        return _cluster_shard_values(
            structure, cover, term, psi, indices, predicates, budget
        )
    shards = shard(indices, max(pool.workers, 1))
    chunk_sizes = [
        sum(len(cover.members_with_cluster(i)) for i in chunk)
        for chunk in shards
    ]
    if pool.backend == "process":
        from ..parallel.tasks import run_per_cluster_shards

        joined = run_per_cluster_shards(
            pool,
            structure,
            cover,
            term,
            psi,
            shards,
            predicates,
            budget,
            retry=retry,
            salvage=on_shard_failure == "salvage",
        )
        if on_shard_failure != "salvage":
            return joined
        return _merge_unary_outcomes(
            joined, shards, chunk_sizes, "evaluate_per_cluster"
        )
    tasks = [
        lambda b, chunk=chunk: _cluster_shard_values(
            structure, cover, term, psi, chunk, predicates, b
        )
        for chunk in shards
    ]
    if on_shard_failure == "salvage":
        outcomes = pool.run_tasks(
            tasks, budget, retry=retry, on_failure="salvage"
        )
        return _merge_unary_outcomes(
            outcomes, shards, chunk_sizes, "evaluate_per_cluster"
        )
    values: Dict[Element, int] = {}
    for part in pool.run_tasks(tasks, budget, retry=retry):
        values.update(part)
    return values
