"""Brute-force baseline evaluator with the same API as
:class:`repro.core.evaluator.Foc1Evaluator`.

Wraps the literal Definition 3.1 semantics of :mod:`repro.logic.semantics`:
quantifiers and counting terms scan the full universe, giving the
``n^width`` behaviour the scaling benchmarks (E3) compare against.  It also
serves as the correctness oracle in the property tests — which is why its
input validation mirrors :class:`~repro.core.evaluator.Foc1Evaluator`'s
exactly: both engines accept and reject the same inputs (same
``check_fragment`` knob, same :class:`~repro.errors.FragmentError` /
:class:`~repro.errors.EvaluationError` paths), so a differential test can
never silently compare them on an input only one of them validated.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import EvaluationError
from ..logic.foc1 import assert_foc1
from ..logic.predicates import PredicateCollection, standard_collection
from ..logic.semantics import count_solutions, evaluate, satisfies, solutions
from ..logic.syntax import Formula, Term, Variable, free_variables
from ..obs import traced
from ..robust.budget import EvaluationBudget
from ..structures.structure import Element, Structure
from .query import Foc1Query


class BruteForceEvaluator:
    """Reference evaluator: same interface, no cleverness whatsoever.

    The optional ``budget`` makes even the naive ``n^k`` scans cancellable:
    it is drawn on once per quantifier/counting iteration, so a
    :class:`~repro.errors.BudgetExceededError` stops runaway evaluations of
    adversarial inputs (Section 4's hardness results make those
    unavoidable for full FOC(P)).

    ``check_fragment`` matches :class:`~repro.core.evaluator.Foc1Evaluator`:
    on by default, so the oracle rejects exactly what the subject engine
    rejects; pass ``False`` to evaluate full FOC(P) (the naive semantics
    handles it — slowly).
    """

    def __init__(
        self,
        predicates: "Optional[PredicateCollection]" = None,
        budget: "Optional[EvaluationBudget]" = None,
        check_fragment: bool = True,
    ):
        self.predicates = predicates if predicates is not None else standard_collection()
        self.budget = budget
        self.check_fragment = check_fragment

    @traced("baseline.model_check")
    def model_check(self, structure: Structure, sentence: Formula) -> bool:
        if free_variables(sentence):
            raise EvaluationError("model_check expects a sentence")
        if self.check_fragment:
            assert_foc1(sentence)
        return satisfies(structure, sentence, None, self.predicates, self.budget)

    @traced("baseline.ground_term_value")
    def ground_term_value(self, structure: Structure, term: Term) -> int:
        if free_variables(term):
            raise EvaluationError("ground_term_value expects a ground term")
        if self.check_fragment:
            assert_foc1(term)
        return evaluate(term, structure, None, self.predicates, self.budget)

    @traced("baseline.unary_term_values")
    def unary_term_values(
        self,
        structure: Structure,
        term: Term,
        variable: Variable,
        elements: "Optional[Sequence[Element]]" = None,
    ) -> Dict[Element, int]:
        extra = free_variables(term) - {variable}
        if extra:
            raise EvaluationError(f"term has unexpected free variables {sorted(extra)}")
        if self.check_fragment:
            assert_foc1(term)
        targets = (
            list(elements) if elements is not None else list(structure.universe_order)
        )
        return {
            a: evaluate(term, structure, {variable: a}, self.predicates, self.budget)
            for a in targets
        }

    @traced("baseline.count")
    def count(
        self, structure: Structure, formula: Formula, variables: Sequence[Variable]
    ) -> int:
        missing = free_variables(formula) - set(variables)
        if missing:
            raise EvaluationError(f"free variables {sorted(missing)} not listed")
        if len(set(variables)) != len(variables):
            raise EvaluationError("count variables must be pairwise distinct")
        if self.check_fragment:
            assert_foc1(formula)
        return count_solutions(
            structure, formula, variables, self.predicates, self.budget
        )

    def solutions(
        self, structure: Structure, formula: Formula, variables: Sequence[Variable]
    ) -> Iterator[Tuple[Element, ...]]:
        missing = free_variables(formula) - set(variables)
        if missing:
            raise EvaluationError(f"free variables {sorted(missing)} not listed")
        if self.check_fragment:
            assert_foc1(formula)
        yield from solutions(
            structure, formula, variables, self.predicates, self.budget
        )

    @traced("baseline.evaluate_query")
    def evaluate_query(self, structure: Structure, query: Foc1Query) -> List[Tuple]:
        if self.check_fragment:
            query.validate_foc1()
        return query.evaluate_naive(structure, self.predicates, self.budget)
