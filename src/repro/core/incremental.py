"""Database updates — a prototype for the paper's open question (2).

Section 9 asks whether the evaluation machinery can support updates; [16]
achieved this for FOC(P) on bounded-degree classes.  The locality analysis
suggests the natural algorithm: the value ``u^A[a]`` of a unary basic
cl-term depends only on the ball of radius

    D = evaluation_radius + psi_radius

around ``a`` (Lemma 6.1 for the counted tuples, plus psi's own locality).
Inserting or deleting one tuple can therefore only change the values of
elements within distance D of the touched entries — measured in the old
*or* the new structure, since both the before- and after-neighbourhoods
matter.  On bounded-degree structures that affected set has constant size,
giving constant-time-per-update maintenance (modulo structure rebuilding,
which this prototype keeps simple and immutable).

:class:`IncrementalUnaryCache` maintains ``u^A[a]`` for all ``a`` under
single-tuple insertions and deletions, recomputing only the affected
elements; the tests compare every state against full recomputation.

Recomputation goes through :func:`repro.core.local_eval.evaluate_basic_unary`,
which reuses the compile-once BFS pattern order
(:func:`repro.core.local_eval.pattern_order`) — the maintained term's
pattern graph never changes across updates, so the static half of the walk
is paid exactly once for the cache's lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..errors import FormulaError, SignatureError
from ..logic.predicates import PredicateCollection
from ..robust.budget import EvaluationBudget
from ..structures.gaifman import ball
from ..structures.structure import Element, Structure, Tup
from .clterms import BasicClTerm
from .local_eval import evaluate_basic_unary


def _with_tuple(structure: Structure, relation: str, tup: Tup, present: bool) -> Structure:
    """A copy of the structure with ``tup`` added to / removed from a relation.

    Delegates to :meth:`Structure.with_tuple`, which validates only the
    delta and shares the untouched relations and their caches — rebuilding
    and revalidating all of ``||A||`` per single-tuple update made every
    update Omega(||A||) regardless of the locality analysis above.
    """
    if structure.signature.get(relation) is None:
        raise SignatureError(f"no relation named {relation!r}")
    return structure.with_tuple(relation, tuple(tup), present)


@dataclass
class UpdateStats:
    """Bookkeeping for one maintained cache."""

    updates: int = 0
    recomputed_elements: int = 0

    def recompute_ratio(self, order: int) -> float:
        if self.updates == 0 or order == 0:
            # No updates, or an empty universe (nothing to recompute per
            # update): the ratio is 0 by convention, never a division crash.
            return 0.0
        return self.recomputed_elements / (self.updates * order)


class IncrementalUnaryCache:
    """Maintains ``u^A[a]`` for all ``a`` under single-tuple updates.

    Parameters
    ----------
    structure:
        The initial structure.
    term:
        A *unary* basic cl-term whose ``psi`` is genuinely
        ``psi_radius``-local (Definition 6.2's contract).
    """

    def __init__(
        self,
        structure: Structure,
        term: BasicClTerm,
        predicates: "Optional[PredicateCollection]" = None,
        budget: "Optional[EvaluationBudget]" = None,
    ):
        if not term.unary:
            raise FormulaError("incremental maintenance needs a unary basic cl-term")
        self.term = term
        self.predicates = predicates
        self.budget = budget
        self.structure = structure
        self.stats = UpdateStats()
        self._dependency_radius = term.evaluation_radius() + term.psi_radius
        self.values: Dict[Element, int] = evaluate_basic_unary(
            structure, term, None, predicates, budget=budget
        )

    def value(self, element: Element) -> int:
        return self.values[element]

    def insert(self, relation: str, tup: Tup) -> None:
        """Insert a tuple and repair the affected values."""
        self._apply(relation, tup, present=True)

    def delete(self, relation: str, tup: Tup) -> None:
        """Delete a tuple and repair the affected values."""
        self._apply(relation, tup, present=False)

    def _apply(self, relation: str, tup: Tup, present: bool) -> None:
        old_structure = self.structure
        new_structure = _with_tuple(old_structure, relation, tuple(tup), present)
        if new_structure.relation(relation) == old_structure.relation(relation):
            return  # no-op update (tuple already present/absent)
        entries = [entry for entry in tup]
        affected: Set[Element] = set()
        if entries:
            affected |= ball(old_structure, entries, self._dependency_radius)
            affected |= ball(new_structure, entries, self._dependency_radius)
        # Compute first, commit after: a budget exhaustion mid-repair must
        # leave the cache at its pre-update (consistent) state, not with a
        # new structure and stale values.
        repaired: Dict[Element, int] = {}
        if affected:
            if self.budget is not None:
                self.budget.tick("incremental.repair", weight=len(affected))
            repaired = evaluate_basic_unary(
                new_structure,
                self.term,
                sorted(affected, key=repr),
                self.predicates,
                budget=self.budget,
            )
        self.structure = new_structure
        self.values.update(repaired)
        self.stats.updates += 1
        self.stats.recomputed_elements += len(affected)

    def verify(self) -> None:
        """Full recomputation check (test/debug helper); raises on mismatch."""
        fresh = evaluate_basic_unary(self.structure, self.term, None, self.predicates)
        if fresh != self.values:
            broken = {
                a: (self.values.get(a), fresh[a])
                for a in fresh
                if self.values.get(a) != fresh[a]
            }
            raise AssertionError(f"incremental cache out of sync at {broken}")
