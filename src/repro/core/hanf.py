"""Hanf-type evaluation on bounded-degree structures — the [16] baseline.

Kuske and Schweikardt's fixed-parameter *linear* algorithm for FOC(P) on
bounded-degree classes rests on Hanf normal form: the value of an r-local
unary term at ``a`` depends only on the isomorphism type of the pointed
r-neighbourhood ``(N_r(a), a)``, and on bounded-degree structures only a
constant number of such types occur.

This module implements the operational core of that idea:

* :func:`neighbourhood_type_census` — partition the universe into classes
  of elements with isomorphic pointed r-neighbourhoods (cheap invariant
  buckets refined by exact isomorphism, which is affordable precisely
  because bounded degree keeps balls small);
* :func:`evaluate_basic_unary_hanf` — evaluate a unary basic cl-term once
  per type and broadcast, instead of once per element.

On a degree-<= d structure the number of types is a function of (d, r)
only, so the census pass is the whole cost — the paper's Section 1 summary
of [16] made executable.  The tests check type-soundness (same type =>
same value) and agreement with element-wise evaluation; benchmark E8
measures the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import FormulaError
from ..logic.predicates import PredicateCollection
from ..structures.gaifman import ball, distances_from, induced
from ..structures.operations import are_isomorphic, relabel
from ..structures.structure import Element, Structure
from .clterms import BasicClTerm
from .local_eval import evaluate_basic_unary


@dataclass(frozen=True)
class PointedBall:
    """The r-neighbourhood of an element with the element distinguished."""

    structure: Structure
    centre: Element

    def invariant(self) -> Tuple:
        """A cheap isomorphism invariant for pre-bucketing: order, relation
        sizes, sorted distance-degree profile, and the centre's profile."""
        adjacency = self.structure.adjacency()
        layers = distances_from(self.structure, [self.centre])
        profile = tuple(
            sorted((layers.get(a, -1), len(adjacency[a])) for a in self.structure.universe_order)
        )
        relation_sizes = tuple(
            sorted((s.name, len(rel)) for s, rel in self.structure.relations().items())
        )
        return (
            self.structure.order(),
            relation_sizes,
            profile,
            len(adjacency[self.centre]),
        )

    def isomorphic_to(self, other: "PointedBall", limit: int) -> bool:
        """Exact pointed isomorphism: relabel both centres to a reserved
        marker so any isomorphism must map centre to centre."""
        if self.structure.order() != other.structure.order():
            return False

        def pin(ball_: "PointedBall") -> Structure:
            return relabel(
                ball_.structure,
                lambda v, centre=ball_.centre: ("CENTRE",) if v == centre else ("o", v),
            )

        left = _mark_centre(pin(self))
        right = _mark_centre(pin(other))
        return are_isomorphic(left, right, limit=limit)


def _mark_centre(structure: Structure) -> Structure:
    """Add a unary relation holding exactly the centre marker element."""
    from ..structures.operations import expansion
    from ..structures.signature import Signature

    if "CentreMark" in structure.signature:
        return structure
    return expansion(
        structure,
        Signature.of(CentreMark=1),
        {"CentreMark": [(("CENTRE",),)]},
    )


@dataclass
class TypeCensus:
    """The outcome of a neighbourhood-type census."""

    radius: int
    #: one representative element per type
    representatives: List[Element]
    #: element -> index into representatives
    assignment: Dict[Element, int]

    def class_sizes(self) -> List[int]:
        sizes = [0] * len(self.representatives)
        for index in self.assignment.values():
            sizes[index] += 1
        return sizes


def neighbourhood_type_census(
    structure: Structure,
    radius: int,
    iso_limit: int = 16,
) -> TypeCensus:
    """Partition elements by the isomorphism type of their pointed
    r-neighbourhood.

    ``iso_limit`` caps the ball size for which exact isomorphism testing is
    attempted; larger balls fall back to invariant-only classes, which can
    only *split* true types (never merge them), keeping downstream
    evaluation sound at the cost of fewer shared computations.
    """
    if radius < 0:
        raise FormulaError("radius must be non-negative")
    buckets: Dict[Tuple, List[Tuple[Element, PointedBall]]] = {}
    for element in structure.universe_order:
        region = ball(structure, [element], radius)
        pointed = PointedBall(induced(structure, region), element)
        buckets.setdefault(pointed.invariant(), []).append((element, pointed))

    representatives: List[Element] = []
    assignment: Dict[Element, int] = {}
    for _, members in sorted(buckets.items(), key=lambda kv: repr(kv[0])):
        classes: List[Tuple[PointedBall, int]] = []
        for element, pointed in members:
            placed = False
            if pointed.structure.order() <= iso_limit:
                for class_ball, class_index in classes:
                    if class_ball.structure.order() <= iso_limit and pointed.isomorphic_to(
                        class_ball, iso_limit
                    ):
                        assignment[element] = class_index
                        placed = True
                        break
            if not placed:
                index = len(representatives)
                representatives.append(element)
                classes.append((pointed, index))
                assignment[element] = index
    return TypeCensus(radius, representatives, assignment)


def evaluate_basic_unary_hanf(
    structure: Structure,
    term: BasicClTerm,
    predicates: "Optional[PredicateCollection]" = None,
    iso_limit: int = 16,
) -> Dict[Element, int]:
    """Evaluate ``u^A[a]`` for all ``a`` by computing one value per
    neighbourhood type (the [16] strategy).

    Sound because the term's value at ``a`` is determined by the pointed
    ball of radius ``evaluation_radius + psi_radius`` around ``a``
    (Lemma 6.1 plus psi's locality).
    """
    if not term.unary:
        raise FormulaError("Hanf evaluation needs a unary basic cl-term")
    dependency_radius = term.evaluation_radius() + term.psi_radius
    census = neighbourhood_type_census(structure, dependency_radius, iso_limit)
    per_type = evaluate_basic_unary(
        structure, term, census.representatives, predicates
    )
    return {
        element: per_type[census.representatives[index]]
        for element, index in census.assignment.items()
    }
