"""Connected local terms (Definition 6.2) and cover terms (Definitions 7.4,
7.5), plus the polynomial algebra over them that Lemmas 6.4 and 7.6 produce.

A *basic cl-term* counts tuples that (a) realise a prescribed connectivity
pattern ``G`` — encoded by the formula ``delta_G,D`` whose edges mean
``dist <= D`` and non-edges ``dist > D`` — and (b) satisfy an r-local
formula ``psi``.  The paper's Definition 6.2 uses the link distance
``D = 2r + 1``; the cover terms of Section 7 use ``D = r``.  We carry the
link distance explicitly so one representation serves both sections (and the
basic-local-sentence translation of Theorem 6.8, which needs ``D = 2r``).

A *cl-term* is an integer polynomial over basic cl-terms; we normalise it to
a sum of monomials ``coefficient * product(basic terms)``, which makes the
inclusion–exclusion recursion of Lemma 6.4/7.6 a pure polynomial
computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..errors import FormulaError
from ..logic.locality import delta_formula, graph_components, is_connected_graph
from ..logic.syntax import (
    And,
    CountTerm,
    Formula,
    Variable,
    conjunction,
    free_variables,
)

Edges = FrozenSet[Tuple[int, int]]


def _check_edges(k: int, edges: Iterable[Tuple[int, int]]) -> Edges:
    normalised = set()
    for i, j in edges:
        if i == j:
            raise FormulaError("pattern graphs have no self-loops")
        a, b = min(i, j), max(i, j)
        if not (1 <= a < b <= k):
            raise FormulaError(f"edge ({i},{j}) out of range for k={k}")
        normalised.add((a, b))
    return frozenset(normalised)


@dataclass(frozen=True)
class BasicClTerm:
    """A basic cl-term of radius ``psi_radius`` and width ``k`` (Def. 6.2).

    * ``variables = (y1, ..., yk)``;
    * ``psi`` — an FO formula r-local around the variables;
    * ``edges`` — a *connected* pattern graph G on [k];
    * ``link_distance`` — the threshold D of ``delta_G,D`` (paper: 2r+1);
    * ``unary`` — if True the term is ``#(y2..yk).(psi ∧ delta)`` with free
      variable y1, otherwise the ground term ``#(y1..yk).(psi ∧ delta)``.
    """

    variables: Tuple[Variable, ...]
    psi: Formula
    psi_radius: int
    link_distance: int
    edges: Edges
    unary: bool

    def __post_init__(self) -> None:
        k = len(self.variables)
        if k < 1:
            raise FormulaError("basic cl-terms have width >= 1")
        if len(set(self.variables)) != k:
            raise FormulaError("cl-term variables must be pairwise distinct")
        object.__setattr__(self, "edges", _check_edges(k, self.edges))
        if not is_connected_graph(k, self.edges):
            raise FormulaError("basic cl-terms require a connected pattern graph")
        if self.psi_radius < 0 or self.link_distance < 0:
            raise FormulaError("radii must be non-negative")
        extra = free_variables(self.psi) - set(self.variables)
        if extra:
            raise FormulaError(f"psi has unexpected free variables {sorted(extra)}")

    # -- derived data -----------------------------------------------------------

    @property
    def width(self) -> int:
        return len(self.variables)

    @property
    def free_variable(self) -> Optional[Variable]:
        return self.variables[0] if self.unary else None

    def evaluation_radius(self) -> int:
        """The exploration radius R of Remark 6.3: a connected pattern keeps
        all of ``N_r(a-bar)`` inside ``N_R(a_1)`` for
        ``R = r + (k-1) * link_distance`` (Lemma 6.1)."""
        return self.psi_radius + (self.width - 1) * self.link_distance

    def delta(self) -> Formula:
        return delta_formula(self.variables, self.edges, self.link_distance)

    def body(self) -> Formula:
        """``psi ∧ delta_G,D`` — the counting body."""
        return And(self.psi, self.delta())

    def count_term(self) -> CountTerm:
        """The term as a plain FOC(P) counting term (for the naive oracle)."""
        bound = self.variables[1:] if self.unary else self.variables
        return CountTerm(tuple(bound), self.body())

    @classmethod
    def paper(
        cls,
        variables: Tuple[Variable, ...],
        psi: Formula,
        radius: int,
        edges: Iterable[Tuple[int, int]],
        unary: bool = False,
    ) -> "BasicClTerm":
        """Definition 6.2's convention: link distance ``2r + 1``."""
        return cls(
            tuple(variables), psi, radius, 2 * radius + 1, frozenset(edges), unary
        )


@dataclass(frozen=True)
class ClPolynomial:
    """An integer polynomial over basic cl-terms in normal form.

    ``monomials`` maps each multiset of basic terms (stored as a sorted
    tuple) to its integer coefficient; the empty product is the constant
    term.  Lemma 6.4's recursion only ever adds, negates and multiplies such
    polynomials, so this normal form is closed under everything we need.
    """

    monomials: Tuple[Tuple[Tuple[BasicClTerm, ...], int], ...]

    @staticmethod
    def _normalise(
        entries: Iterable[Tuple[Tuple[BasicClTerm, ...], int]]
    ) -> "ClPolynomial":
        merged: Dict[Tuple[BasicClTerm, ...], int] = {}
        for factors, coefficient in entries:
            key = tuple(sorted(factors, key=repr))
            merged[key] = merged.get(key, 0) + coefficient
        cleaned = tuple(
            sorted(
                ((k, c) for k, c in merged.items() if c != 0),
                key=lambda pair: (len(pair[0]), repr(pair[0])),
            )
        )
        return ClPolynomial(cleaned)

    @classmethod
    def constant(cls, value: int) -> "ClPolynomial":
        return cls._normalise([((), value)])

    @classmethod
    def of(cls, term: BasicClTerm) -> "ClPolynomial":
        return cls._normalise([((term,), 1)])

    def __add__(self, other: "ClPolynomial") -> "ClPolynomial":
        return self._normalise(list(self.monomials) + list(other.monomials))

    def __neg__(self) -> "ClPolynomial":
        return self._normalise([(f, -c) for f, c in self.monomials])

    def __sub__(self, other: "ClPolynomial") -> "ClPolynomial":
        return self + (-other)

    def __mul__(self, other: "ClPolynomial") -> "ClPolynomial":
        entries = []
        for factors_a, coefficient_a in self.monomials:
            for factors_b, coefficient_b in other.monomials:
                entries.append((factors_a + factors_b, coefficient_a * coefficient_b))
        return self._normalise(entries)

    def basic_terms(self) -> Tuple[BasicClTerm, ...]:
        """Distinct basic cl-terms occurring in the polynomial."""
        seen: Dict[BasicClTerm, None] = {}
        for factors, _ in self.monomials:
            for factor in factors:
                seen.setdefault(factor, None)
        return tuple(seen)

    def max_width(self) -> int:
        return max((t.width for t in self.basic_terms()), default=0)

    def max_radius(self) -> int:
        return max((t.psi_radius for t in self.basic_terms()), default=0)

    def evaluate(self, valuation: Callable[[BasicClTerm], int]) -> int:
        """Evaluate under a valuation of the basic terms (memoised)."""
        cache: Dict[BasicClTerm, int] = {}

        def value_of(term: BasicClTerm) -> int:
            if term not in cache:
                cache[term] = valuation(term)
            return cache[term]

        total = 0
        for factors, coefficient in self.monomials:
            product = coefficient
            for factor in factors:
                product *= value_of(factor)
                if product == 0:
                    break
            total += product
        return total


# ---------------------------------------------------------------------------
# Cover terms (Definitions 7.4 / 7.5)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CoverTerm:
    """A cover term: pattern graph G on [k] (any), one formula per connected
    component of G, link distance r, evaluated relative to a neighbourhood
    cover (Definition 7.5).  When G is connected this is a basic
    cover-cl-term (Definition 7.4).

    ``component_formulas`` maps each component (frozenset of 1-based
    positions) to its formula ``psi_I(y-bar_I)``.
    """

    variables: Tuple[Variable, ...]
    edges: Edges
    link_distance: int
    component_formulas: Tuple[Tuple[FrozenSet[int], Formula], ...]
    unary: bool

    def __post_init__(self) -> None:
        k = len(self.variables)
        if k < 1:
            raise FormulaError("cover terms have width >= 1")
        if len(set(self.variables)) != k:
            raise FormulaError("cover-term variables must be pairwise distinct")
        object.__setattr__(self, "edges", _check_edges(k, self.edges))
        components = graph_components(k, self.edges)
        given = {frozenset(component) for component, _ in self.component_formulas}
        expected = {frozenset(component) for component in components}
        if given != expected:
            raise FormulaError(
                "component_formulas must cover exactly the components of G; "
                f"expected {sorted(map(sorted, expected))}, got {sorted(map(sorted, given))}"
            )
        for component, formula in self.component_formulas:
            allowed = {self.variables[i - 1] for i in component}
            extra = free_variables(formula) - allowed
            if extra:
                raise FormulaError(
                    f"psi for component {sorted(component)} mentions {sorted(extra)}"
                )

    @property
    def width(self) -> int:
        return len(self.variables)

    def components(self) -> Tuple[FrozenSet[int], ...]:
        return tuple(component for component, _ in self.component_formulas)

    def formula_for(self, component: FrozenSet[int]) -> Formula:
        for candidate, formula in self.component_formulas:
            if candidate == component:
                return formula
        raise FormulaError(f"no formula for component {sorted(component)}")

    def is_basic(self) -> bool:
        """Connected pattern — a basic cover-cl-term (Definition 7.4)."""
        return len(self.component_formulas) == 1

    def body(self) -> Formula:
        """``delta_G,r ∧ AND_I psi_I`` as a plain FO+ formula (for oracles)."""
        parts: List[Formula] = [delta_formula(self.variables, self.edges, self.link_distance)]
        for _, formula in sorted(
            self.component_formulas, key=lambda pair: sorted(pair[0])
        ):
            parts.append(formula)
        return conjunction(parts)

    def count_term(self) -> CountTerm:
        bound = self.variables[1:] if self.unary else self.variables
        return CountTerm(tuple(bound), self.body())
