"""The two-parameter q-rank measure for FO+ (Section 7).

The paper fine-tunes how much a distance atom ``dist(x,y) <= d`` may cost:
an FO+ formula has *q-rank at most l* if its quantifier rank is at most l
and every distance atom in the scope of ``i <= l`` quantifiers has bound
``d <= (4q)^(q + l - i)``.  The threshold function is ``f_q(l) = (4q)^(q+l)``.

This module implements the measure exactly, plus helpers the rank-preserving
machinery (Theorem 7.1, Lemmas 7.8/7.9) uses: checking membership, computing
the minimal admissible ``l``, and the radius bookkeeping ``r = f_q(l)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import FormulaError
from ..logic.syntax import (
    And,
    Atom,
    Bottom,
    DistAtom,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
)


def fq(q: int, level: int) -> int:
    """``f_q(l) = (4q)^(q+l)`` — the radius scale of Section 7."""
    if q < 1:
        raise FormulaError("q must be at least 1")
    if level < 0:
        raise FormulaError("level must be non-negative")
    return (4 * q) ** (q + level)


def _walk(formula: Formula, depth: int, record: List[Tuple[int, int]]) -> int:
    """Return quantifier rank; record (quantifier_depth, bound) per dist atom."""
    if isinstance(formula, (Eq, Atom, Top, Bottom)):
        return 0
    if isinstance(formula, DistAtom):
        record.append((depth, formula.bound))
        return 0
    if isinstance(formula, Not):
        return _walk(formula.inner, depth, record)
    if isinstance(formula, (Or, And, Implies, Iff)):
        return max(
            _walk(formula.left, depth, record),
            _walk(formula.right, depth, record),
        )
    if isinstance(formula, (Exists, Forall)):
        return 1 + _walk(formula.inner, depth + 1, record)
    raise FormulaError(
        f"q-rank is defined for FO+ formulas; found {type(formula).__name__}"
    )


@dataclass(frozen=True)
class QRankReport:
    """Diagnostics for the q-rank check of one formula."""

    quantifier_rank: int
    distance_atoms: Tuple[Tuple[int, int], ...]  # (scope depth i, bound d)
    q: int
    level: int
    within: bool


def q_rank_report(formula: Formula, q: int, level: int) -> QRankReport:
    """Check whether ``formula`` has q-rank at most ``level`` and report why."""
    record: List[Tuple[int, int]] = []
    rank = _walk(formula, 0, record)
    within = rank <= level and all(
        depth <= level and bound <= fq(q, level - depth)
        for depth, bound in record
    )
    return QRankReport(rank, tuple(record), q, level, within)


def has_q_rank(formula: Formula, q: int, level: int) -> bool:
    """``formula`` has q-rank at most ``level`` (w.r.t. the parameter q)."""
    return q_rank_report(formula, q, level).within


def minimal_level(formula: Formula, q: int, cap: int = 32) -> Optional[int]:
    """Smallest l <= cap with q-rank at most l, or None if no l <= cap works."""
    for level in range(cap + 1):
        if has_q_rank(formula, q, level):
            return level
    return None


def admissible_distance_bound(q: int, level: int, depth: int) -> int:
    """The largest bound a distance atom at quantifier depth ``depth`` may
    carry inside a formula of q-rank ``level``: ``(4q)^(q + level - depth)``."""
    if depth > level:
        raise FormulaError("distance atoms deeper than the rank are inadmissible")
    return fq(q, level - depth)
