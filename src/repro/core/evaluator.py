"""The FOC1(P) evaluation engine (Theorem 5.5 / Lemma 5.7 pipeline).

Since the plan-layer refactor the engine is a *facade* over
:mod:`repro.plan`: every public call canonicalises its input
(:func:`repro.plan.normalise.canonicalise`), fetches or compiles an
immutable :class:`~repro.plan.ir.QueryPlan` from the plan cache, and runs
it through a fresh :class:`~repro.plan.executor.PlanExecutor`.  The paper's
static analyses — stratification by #-depth (Theorem 6.10), counting-term
decomposition (Lemma 6.4), guard selection (Remark 6.3) — happen once per
distinct (normalised expression, signature, options) triple instead of
once per call; the runtime machinery (guarded enumeration, memoisation,
budgets, faults, metrics) lives in the shared executor.

The cache is keyed on the *canonicalised* AST, so alpha-equivalent queries
share a plan, and every node a plan retains is a compile-time deep copy —
caller ASTs are never pinned by the cache (see the memo-lifetime contract
in :mod:`repro.plan.executor`).

The brute-force oracle with the same API lives in
:mod:`repro.core.baseline`; it keeps the literal Definition 3.1 semantics
and no plan layer, which is exactly what makes it a useful differential
oracle.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from ..errors import EvaluationError
from ..logic.foc1 import assert_foc1
from ..logic.predicates import PredicateCollection, standard_collection
from ..logic.syntax import (
    Expression,
    Formula,
    Term,
    Variable,
    free_variables,
)
from ..obs import traced
from ..parallel import WorkerPool, shard
from ..plan.cache import PlanCache, default_plan_cache
from ..plan.compiler import compile_plan
from ..plan.executor import ExecutionState, PlanExecutor
from ..plan.ir import PlanOptions, QueryPlan
from ..plan.normalise import canonicalise, flatten_conjuncts, replace_atoms
from ..robust.budget import EvaluationBudget
from ..robust.partial import PartialResult, ShardFailure, validate_failure_mode
from ..robust.retry import RetryPolicy
from ..structures.signature import Signature
from ..structures.structure import Element, Structure
from .query import Foc1Query

#: Backwards-compatible aliases: the evaluation session and its structural
#: helpers moved to the plan layer; tests and downstream code may still
#: import them from here.
_Session = ExecutionState
_flatten_and = flatten_conjuncts
_replace_atoms = replace_atoms


class Foc1Evaluator:
    """Evaluator for FOC1(P) sentences, terms, counting, and queries.

    Parameters
    ----------
    predicates:
        The numerical predicate collection (the P-oracle).  Defaults to the
        paper's standard collection.
    use_factoring:
        Factor conjunctions into variable-disjoint components and multiply
        counts (the Lemma 6.4 product step).  Disable for ablation E10.
    use_guards:
        Generate candidates from relation indexes / balls instead of the
        whole universe (Remark 6.3).  Disable for ablation E10.
    check_fragment:
        Verify inputs are in FOC1(P) and raise
        :class:`~repro.errors.FragmentError` otherwise.  The check is the
        contract of Theorem 5.5; disable only to experiment with the
        (intractable) full logic.
    budget:
        Optional :class:`~repro.robust.budget.EvaluationBudget` consumed
        cooperatively by the hot loops (memo misses, guarded enumeration,
        predicate materialisation).  Exhaustion raises
        :class:`~repro.errors.BudgetExceededError`; Section 4's hardness
        results mean dense/adversarial inputs *will* need this.
    plan_cache:
        The :class:`~repro.plan.cache.PlanCache` compiled plans are stored
        in.  Defaults to the process-wide shared cache, so repeated and
        cross-engine evaluations of the same query reuse one plan; pass a
        private instance to isolate (benchmarks do).
    workers:
        Worker count for the parallel entry points (sharded
        :meth:`unary_term_values` targets and :meth:`count_many` inputs).
        ``None`` resolves ``REPRO_WORKERS`` (default 1 = serial, the
        pre-parallel code path).  See ``docs/PARALLEL.md``.
    parallel_backend:
        ``"thread"`` (default) or ``"process"``; ignored at ``workers=1``.
    retry:
        Optional :class:`~repro.robust.retry.RetryPolicy` applied by the
        parallel entry points: a transiently failing shard is re-run —
        alone, under a fresh budget slice — instead of aborting the whole
        evaluation.
    on_shard_failure:
        ``"raise"`` (default): a permanently failed shard aborts the call.
        ``"salvage"``: the parallel entry points keep completed shards and
        return a :class:`~repro.robust.partial.PartialResult` when
        failures remain (the plain result whenever nothing was lost).
    """

    def __init__(
        self,
        predicates: "Optional[PredicateCollection]" = None,
        use_factoring: bool = True,
        use_guards: bool = True,
        check_fragment: bool = True,
        budget: "Optional[EvaluationBudget]" = None,
        plan_cache: "Optional[PlanCache]" = None,
        workers: "Optional[int]" = None,
        parallel_backend: str = "thread",
        retry: "Optional[RetryPolicy]" = None,
        on_shard_failure: str = "raise",
    ):
        self.predicates = predicates if predicates is not None else standard_collection()
        self.use_factoring = use_factoring
        self.use_guards = use_guards
        self.check_fragment = check_fragment
        self.budget = budget
        self.plan_cache = plan_cache if plan_cache is not None else default_plan_cache()
        self.pool = WorkerPool(workers, parallel_backend)
        self.retry = retry
        self.on_shard_failure = validate_failure_mode(on_shard_failure)

    # -- compile-once plumbing ----------------------------------------------------

    def _plan(
        self,
        kind: str,
        expressions: Sequence[Expression],
        variables: Sequence[Variable],
        structure: Structure,
    ) -> QueryPlan:
        """Fetch (or compile) the plan for one engine operation.

        The cache key is built from the canonicalised expressions, so
        alpha-equivalent inputs share an entry and the key never references
        caller AST objects.
        """
        return self._plan_for_signature(
            kind, expressions, variables, structure.signature
        )

    def _plan_for_signature(
        self,
        kind: str,
        expressions: Sequence[Expression],
        variables: Sequence[Variable],
        signature: Signature,
    ) -> QueryPlan:
        """The signature-keyed core of :meth:`_plan` — what batch entry
        points use to compile once and execute across many structures."""
        options = PlanOptions(self.use_factoring, self.use_guards)
        canon = tuple(canonicalise(e) for e in expressions)
        key: Hashable = (
            kind,
            canon,
            tuple(variables),
            signature,
            options,
        )
        return self.plan_cache.get_or_compile(
            key,
            lambda: compile_plan(
                kind, canon, tuple(variables), signature, options
            ),
        )

    def _executor(self, plan: QueryPlan, structure: Structure) -> PlanExecutor:
        return PlanExecutor(plan, structure, self.predicates, self.budget)

    # -- public API --------------------------------------------------------------

    @traced("foc1.model_check")
    def model_check(self, structure: Structure, sentence: Formula) -> bool:
        """Decide ``A |= phi`` for an FOC1(P) sentence."""
        if free_variables(sentence):
            raise EvaluationError("model_check expects a sentence; use count()")
        if self.check_fragment:
            assert_foc1(sentence)
        plan = self._plan("model_check", (sentence,), (), structure)
        return self._executor(plan, structure).model_check()

    @traced("foc1.ground_term_value")
    def ground_term_value(self, structure: Structure, term: Term) -> int:
        """Compute ``t^A`` for a ground FOC1(P) counting term."""
        if free_variables(term):
            raise EvaluationError("ground_term_value expects a ground term")
        if self.check_fragment:
            assert_foc1(term)
        plan = self._plan("ground_term", (term,), (), structure)
        return self._executor(plan, structure).ground_term_value()

    @traced("foc1.unary_term_values")
    def unary_term_values(
        self,
        structure: Structure,
        term: Term,
        variable: Variable,
        elements: "Optional[Sequence[Element]]" = None,
    ) -> "Dict[Element, int] | PartialResult":
        """``t^A[a]`` for all ``a`` (the simultaneous evaluation of Lemma 5.7's
        stronger form).

        With ``workers > 1`` the targets are sharded across the engine's
        pool: one compiled plan, one executor (and hence one memo/ball
        state) per shard, results merged in shard order — byte-identical
        to the serial pass.  Thread backend only; each shard re-runs the
        plan's materialisation steps, a fixed per-worker cost that the
        per-element saving amortises on all but tiny structures.

        The engine's ``retry`` policy re-runs failed shards alone; with
        ``on_shard_failure="salvage"`` a permanently failed shard no
        longer aborts the call — completed shards come back in a
        :class:`~repro.robust.partial.PartialResult` (the plain dict when
        nothing was lost).
        """
        extra = free_variables(term) - {variable}
        if extra:
            raise EvaluationError(f"term has unexpected free variables {sorted(extra)}")
        if self.check_fragment:
            assert_foc1(term)
        plan = self._plan("unary_term", (term,), (variable,), structure)
        targets = (
            list(elements)
            if elements is not None
            else list(structure.universe_order)
        )
        plain = self.retry is None and self.on_shard_failure == "raise"
        if (self.pool.workers <= 1 or len(targets) <= 1) and plain:
            return self._executor(plan, structure).unary_term_values(
                variable, targets
            )
        chunks = shard(targets, max(self.pool.workers, 1))
        tasks = [
            lambda b, chunk=chunk: PlanExecutor(
                plan, structure, self.predicates, b
            ).unary_term_values(variable, chunk)
            for chunk in chunks
        ]
        if self.on_shard_failure == "salvage":
            outcomes = self.pool.run_tasks(
                tasks, self.budget, retry=self.retry, on_failure="salvage"
            )
            values: Dict[Element, int] = {}
            failures: List[ShardFailure] = []
            for outcome in outcomes:
                if outcome.error is None:
                    values.update(outcome.value)
                else:
                    failures.append(
                        ShardFailure(
                            shard=outcome.index,
                            items=tuple(chunks[outcome.index]),
                            error_type=type(outcome.error).__name__,
                            error=str(outcome.error),
                            attempts=outcome.attempts,
                        )
                    )
            if not failures:
                return values
            return PartialResult(
                operation="unary_term_values",
                value=values,
                failures=failures,
                expected=len(targets),
                covered=len(values),
            )
        values = {}
        for part in self.pool.run_tasks(tasks, self.budget, retry=self.retry):
            values.update(part)
        return values

    @traced("foc1.count_many")
    def count_many(
        self,
        structures: Sequence[Structure],
        formula: Formula,
        variables: Sequence[Variable],
    ) -> "List[int] | PartialResult":
        """``|phi(A_i)|`` for a batch of structures — one plan, many inputs.

        The formula is validated once and compiled once per *distinct
        signature* in the batch (plans are structure-independent, so a
        homogeneous batch reuses a single compiled plan for every input);
        execution then fans out across the engine's pool with proportional
        budget slices, and the results come back in input order.  The
        process backend ships ``(plan, structure)`` payloads to child
        interpreters and is restricted to the standard predicate
        collection (closures do not pickle).

        The engine's ``retry`` policy re-runs failed batch entries alone;
        with ``on_shard_failure="salvage"`` permanent failures leave
        ``None`` holes in the batch, returned inside a
        :class:`~repro.robust.partial.PartialResult` (the plain list when
        nothing was lost).
        """
        structures = list(structures)
        missing = free_variables(formula) - set(variables)
        if missing:
            raise EvaluationError(f"free variables {sorted(missing)} not listed")
        if len(set(variables)) != len(variables):
            raise EvaluationError("count variables must be pairwise distinct")
        if self.check_fragment:
            assert_foc1(formula)
        if not structures:
            return []
        plans = [
            self._plan_for_signature(
                "count", (formula,), tuple(variables), s.signature
            )
            for s in structures
        ]
        salvage = self.on_shard_failure == "salvage"
        plain = self.retry is None and not salvage
        if (self.pool.workers <= 1 or len(structures) <= 1) and plain:
            return [
                PlanExecutor(
                    plans[i], structures[i], self.predicates, self.budget
                ).count_value()
                for i in range(len(structures))
            ]
        if self.pool.backend == "process" and self.pool.workers > 1:
            from ..parallel.tasks import run_count_many_shards

            joined = run_count_many_shards(
                self.pool,
                plans,
                structures,
                self.budget,
                retry=self.retry,
                salvage=salvage,
            )
            if not salvage:
                return joined
            outcomes = joined
        else:
            tasks = [
                lambda b, i=i: PlanExecutor(
                    plans[i], structures[i], self.predicates, b
                ).count_value()
                for i in range(len(structures))
            ]
            if not salvage:
                return self.pool.run_tasks(
                    tasks, self.budget, retry=self.retry
                )
            outcomes = self.pool.run_tasks(
                tasks, self.budget, retry=self.retry, on_failure="salvage"
            )
        # Salvage merge: the batch comes back with ``None`` holes at the
        # failed positions plus a structured account of what was lost.
        counts = [
            outcome.value if outcome.error is None else None
            for outcome in outcomes
        ]
        failures = [
            ShardFailure(
                shard=outcome.index,
                items=(outcome.index,),
                error_type=type(outcome.error).__name__,
                error=str(outcome.error),
                attempts=outcome.attempts,
            )
            for outcome in outcomes
            if outcome.error is not None
        ]
        if not failures:
            return counts
        return PartialResult(
            operation="count_many",
            value=counts,
            failures=failures,
            expected=len(structures),
            covered=len(structures) - len(failures),
        )

    @traced("foc1.count")
    def count(
        self, structure: Structure, formula: Formula, variables: Sequence[Variable]
    ) -> int:
        """The counting problem: ``|phi(A)|`` over the listed variables
        (Corollary 5.6)."""
        missing = free_variables(formula) - set(variables)
        if missing:
            raise EvaluationError(f"free variables {sorted(missing)} not listed")
        if len(set(variables)) != len(variables):
            raise EvaluationError("count variables must be pairwise distinct")
        if self.check_fragment:
            assert_foc1(formula)
        plan = self._plan("count", (formula,), tuple(variables), structure)
        return self._executor(plan, structure).count_value()

    def solutions(
        self, structure: Structure, formula: Formula, variables: Sequence[Variable]
    ) -> Iterator[Tuple[Element, ...]]:
        """Enumerate ``phi(A)`` using guarded enumeration."""
        missing = free_variables(formula) - set(variables)
        if missing:
            raise EvaluationError(f"free variables {sorted(missing)} not listed")
        if self.check_fragment:
            assert_foc1(formula)
        plan = self._plan("solutions", (formula,), tuple(variables), structure)
        yield from self._executor(plan, structure).solutions()

    @traced("foc1.evaluate_query")
    def evaluate_query(self, structure: Structure, query: Foc1Query) -> List[Tuple]:
        """``q(A)`` for an FOC1(P)-query (Definition 5.2)."""
        if self.check_fragment:
            query.validate_foc1()
        plan = self._plan(
            "query",
            (query.condition, *query.head_terms),
            query.head_variables,
            structure,
        )
        return self._executor(plan, structure).query_rows()
