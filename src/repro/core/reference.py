"""Set-based reference implementations of the local-evaluation hot paths.

The columnar refactor rewrote :mod:`repro.core.local_eval` (and the BFS
primitives under it) onto interned-id kernels.  This module preserves the
original element-space implementations verbatim as a *reference oracle*:
the differential tests (``tests/core/test_differential_columnar.py``) and
the kernel benchmarks (``benchmarks/bench_kernels.py``) run both and
assert byte-identical results.

Nothing here is used by the engine itself — it exists so the
representation refactor stays falsifiable.  The code intentionally
mirrors the pre-columnar implementations, including their reliance on
:meth:`Structure.adjacency` (the dict-of-frozensets Gaifman graph) and
per-call ``set(edges)`` rebuilds.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Sequence, Tuple

from ..errors import UniverseError
from ..logic.predicates import PredicateCollection
from ..logic.semantics import satisfies
from ..structures.gaifman import induced
from ..structures.structure import Element, Structure
from .clterms import BasicClTerm, Edges
from .local_eval import _is_quantifier_free, pattern_order

__all__ = [
    "reference_distances_from",
    "reference_ball",
    "ReferenceBallCache",
    "reference_pattern_tuples",
    "reference_evaluate_basic_unary",
]


def reference_distances_from(
    structure: Structure,
    sources: Iterable[Element],
    radius: "float | None" = None,
) -> Dict[Element, int]:
    """Multi-source BFS over the dict adjacency (the pre-columnar
    ``gaifman.distances_from``)."""
    adjacency = structure.adjacency()
    dist: Dict[Element, int] = {}
    frontier = deque()
    for source in sources:
        if source not in structure:
            raise UniverseError(f"{source!r} is not a universe element")
        if source not in dist:
            dist[source] = 0
            frontier.append(source)
    while frontier:
        node = frontier.popleft()
        d = dist[node]
        if radius is not None and d >= radius:
            continue
        for neighbour in adjacency[node]:
            if neighbour not in dist:
                dist[neighbour] = d + 1
                frontier.append(neighbour)
    return dist


def reference_ball(
    structure: Structure, centres: Iterable[Element], radius: int
) -> FrozenSet[Element]:
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return frozenset(reference_distances_from(structure, centres, radius))


class ReferenceBallCache:
    """The pre-columnar ``_BallCache``: element-keyed frozenset D-balls."""

    __slots__ = ("structure", "distance", "_cache")

    def __init__(self, structure: Structure, distance: int):
        self.structure = structure
        self.distance = distance
        self._cache: Dict[Element, FrozenSet[Element]] = {}

    def __call__(self, element: Element) -> FrozenSet[Element]:
        cached = self._cache.get(element)
        if cached is None:
            cached = frozenset(
                reference_distances_from(self.structure, [element], self.distance)
            )
            self._cache[element] = cached
        return cached


def reference_pattern_tuples(
    structure: Structure,
    first: Element,
    k: int,
    edges: Edges,
    link_distance: int,
    ball_cache: "Optional[ReferenceBallCache]" = None,
) -> Iterator[Tuple[Element, ...]]:
    """The pre-columnar pattern walk: per-candidate frozenset membership
    tests and a per-invocation ``set(edges)`` rebuild."""
    if k == 1:
        yield (first,)
        return
    balls = (
        ball_cache
        if ball_cache is not None
        else ReferenceBallCache(structure, link_distance)
    )
    order = pattern_order(k, edges)
    edge_set = set(edges)

    placed: Dict[int, Element] = {1: first}

    def extend(step: int) -> Iterator[Tuple[Element, ...]]:
        if step == len(order):
            yield tuple(placed[i] for i in range(1, k + 1))
            return
        position, parent = order[step]
        for candidate in balls(placed[parent]):
            ok = True
            for other, value in placed.items():
                expected = (min(other, position), max(other, position)) in edge_set
                actual = candidate in balls(value)
                if expected != actual:
                    ok = False
                    break
            if not ok:
                continue
            placed[position] = candidate
            yield from extend(step + 1)
            del placed[position]

    yield from extend(0)


def reference_evaluate_basic_unary(
    structure: Structure,
    term: BasicClTerm,
    elements: "Optional[Sequence[Element]]" = None,
    predicates: "Optional[PredicateCollection]" = None,
    evaluate_psi_locally: bool = True,
) -> Dict[Element, int]:
    """``u^A[a]`` by the pre-columnar ball-exploration loop."""
    targets = (
        list(elements) if elements is not None else list(structure.universe_order)
    )
    balls = ReferenceBallCache(structure, term.link_distance)
    quantifier_free = _is_quantifier_free(term.psi)
    check_locally = evaluate_psi_locally and not quantifier_free
    values: Dict[Element, int] = {}
    for element in targets:
        total = 0
        for tup in reference_pattern_tuples(
            structure, element, term.width, term.edges, term.link_distance, balls
        ):
            assignment = dict(zip(term.variables, tup))
            if check_locally:
                local = induced(
                    structure, reference_ball(structure, tup, term.psi_radius)
                )
                holds = satisfies(local, term.psi, assignment, predicates)
            else:
                holds = satisfies(structure, term.psi, assignment, predicates)
            if holds:
                total += 1
        values[element] = total
    return values
