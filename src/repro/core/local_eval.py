"""Local evaluation of basic cl-terms by ball exploration (Remark 6.3).

A basic cl-term with a *connected* pattern graph G confines every counted
tuple to the ball ``N_R(a1)`` with ``R = r + (k-1) * D`` (Lemma 6.1), so its
unary version can be evaluated at an element by exploring only that ball,
and its ground version by summing the unary values over all elements:
``g^A = sum_a u^A[a]`` — exactly the paper's Remark 6.3.

The tuple enumeration walks the pattern graph G in BFS order from vertex 1:
each next position is pattern-adjacent to an already placed one, so its
candidates come from a D-ball around a placed element rather than from the
whole universe.  On structures with small balls this is the source of the
near-linear behaviour of the whole pipeline.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..errors import FormulaError
from ..logic.predicates import PredicateCollection
from ..logic.semantics import satisfies
from ..logic.syntax import Formula, Variable
from ..obs import active_metrics, traced
from ..robust.budget import EvaluationBudget
from ..structures.gaifman import neighbourhood
from ..structures.structure import Element, Structure
from .clterms import BasicClTerm, ClPolynomial, Edges


def _is_quantifier_free(formula: Formula) -> bool:
    from ..logic.syntax import Exists, Forall, subexpressions

    return not any(isinstance(n, (Exists, Forall)) for n in subexpressions(formula))


class _BallCache:
    """Memoised D-balls for one structure and one distance, in id space.

    The pattern walk consumes :meth:`ball_ids` (sorted interned ids — the
    candidate stream) and :meth:`bitset` (the O(1) membership side of the
    exactness checks); both are memoised per element id.  Calling the
    cache with an *element* keeps the historical frozenset-of-elements
    contract for external callers.

    Per-call state only (no shared scratch buffers), so one cache may be
    handed to pattern walks running on any thread — though shards of the
    parallel paths still build their own to keep the memo contention-free.
    """

    __slots__ = (
        "structure",
        "distance",
        "kernel",
        "interner",
        "_ids",
        "_bitsets",
        "_metrics",
    )

    def __init__(self, structure: Structure, distance: int):
        self.structure = structure
        self.distance = distance
        self.kernel = structure.columnar()
        self.interner = self.kernel.interner
        self._ids: Dict[int, List[int]] = {}
        self._bitsets: Dict[int, int] = {}
        self._metrics = active_metrics()

    def ball_ids(self, eid: int) -> List[int]:
        """Sorted ids of ``N_D(eid)`` (memoised)."""
        cached = self._ids.get(eid)
        if cached is None:
            cached = self.kernel.ball_ids((eid,), self.distance)
            self._ids[eid] = cached
            if self._metrics is not None:
                self._metrics.inc("local.ball.expansion")
                self._metrics.inc("local.ball.memo.miss")
                self._metrics.observe("local.ball.size", len(cached))
        elif self._metrics is not None:
            self._metrics.inc("local.ball.memo.hit")
        return cached

    def bitset(self, eid: int) -> int:
        """``N_D(eid)`` as an int bitset (memoised)."""
        cached = self._bitsets.get(eid)
        if cached is None:
            cached = self.kernel.bitset(self.ball_ids(eid))
            self._bitsets[eid] = cached
        return cached

    def __call__(self, element: Element) -> FrozenSet[Element]:
        elements = self.interner.elements
        return frozenset(
            elements[i] for i in self.ball_ids(self.interner.id_of(element))
        )


#: Compile-once cache for pattern walk orders: the BFS placement order
#: depends only on (k, edges), never on the structure, so it is computed
#: once per distinct pattern graph for the life of the process (the same
#: compile/execute split the plan layer applies to full expressions —
#: cover_eval, incremental maintenance and the Section 8.2 loop all walk
#: the same handful of patterns thousands of times).
_PATTERN_ORDERS: Dict[Tuple[int, Edges], Tuple[Tuple[int, int], ...]] = {}


def pattern_order(k: int, edges: Edges) -> Tuple[Tuple[int, int], ...]:
    """BFS order over the connected pattern graph from vertex 1, cached.

    Returns ((position, parent_position), ...) for positions 2..k in
    placement order; parent_position is already placed and pattern-adjacent.
    """
    key = (k, edges)
    cached = _PATTERN_ORDERS.get(key)
    if cached is not None:
        return cached
    adjacency: Dict[int, List[int]] = {i: [] for i in range(1, k + 1)}
    for i, j in edges:
        adjacency[i].append(j)
        adjacency[j].append(i)
    order: List[Tuple[int, int]] = []
    seen = {1}
    frontier = deque([1])
    while frontier:
        node = frontier.popleft()
        for neighbour in sorted(adjacency[node]):
            if neighbour not in seen:
                seen.add(neighbour)
                order.append((neighbour, node))
                frontier.append(neighbour)
    if len(seen) != k:
        raise FormulaError("pattern graph must be connected")
    result = tuple(order)
    _PATTERN_ORDERS[key] = result
    return result


#: Backwards-compatible alias (pre-plan-layer name).
_pattern_order = pattern_order


#: Compiled pattern plans: per (k, edges), the BFS placement steps with the
#: exactness checks pre-resolved.  A step is ``(position, parent, checks)``
#: where ``checks`` lists ``(other_position, expected)`` pairs — ``expected``
#: is the edge-set membership that used to be recomputed per candidate per
#: placed position (and ``set(edges)`` itself rebuilt per invocation).  The
#: parent position is omitted from the checks: the candidate is drawn from
#: the parent's D-ball and parent-position is a pattern edge by BFS-order
#: construction, so that check is always satisfied.
_PATTERN_PLANS: Dict[
    Tuple[int, Edges], Tuple[Tuple[int, int, Tuple[Tuple[int, bool], ...]], ...]
] = {}


def pattern_plan(
    k: int, edges: Edges
) -> Tuple[Tuple[int, int, Tuple[Tuple[int, bool], ...]], ...]:
    """The compiled walk plan for one pattern graph, cached for the process."""
    key = (k, edges)
    cached = _PATTERN_PLANS.get(key)
    if cached is not None:
        return cached
    order = pattern_order(k, edges)
    edge_set = set(edges)
    steps: List[Tuple[int, int, Tuple[Tuple[int, bool], ...]]] = []
    placed_order = [1]
    for position, parent in order:
        checks = tuple(
            (other, (min(other, position), max(other, position)) in edge_set)
            for other in placed_order
            if other != parent
        )
        steps.append((position, parent, checks))
        placed_order.append(position)
    result = tuple(steps)
    _PATTERN_PLANS[key] = result
    return result


def pattern_tuples(
    structure: Structure,
    first: Element,
    k: int,
    edges: Edges,
    link_distance: int,
    ball_cache: "Optional[_BallCache]" = None,
) -> Iterator[Tuple[Element, ...]]:
    """All tuples ``(a1, ..., ak)`` with ``a1 = first`` whose connectivity
    pattern at the link distance is *exactly* the connected graph G: pattern
    edges mean ``dist <= D`` and non-edges ``dist > D``.

    Tuples may repeat elements (a repeated element forces a pattern edge,
    which the exactness check enforces automatically).  The walk runs
    entirely in id space — candidates stream from sorted ball-id arrays and
    each exactness check is one bitset probe — converting back to elements
    only as tuples are yielded.  The same tuples come out as from the
    set-based reference walk (``repro.core.reference``), in sorted-id
    rather than hash order.
    """
    if k == 1:
        yield (first,)
        return
    balls = ball_cache if ball_cache is not None else _BallCache(structure, link_distance)
    plan = pattern_plan(k, edges)
    elements = balls.interner.elements
    last_step = len(plan) - 1

    placed_ids = [0] * (k + 1)  # 1-based positions
    placed_ids[1] = balls.interner.id_of(first)

    def extend(step: int) -> Iterator[Tuple[Element, ...]]:
        position, parent, checks = plan[step]
        tests = [
            (balls.bitset(placed_ids[other]), expected)
            for other, expected in checks
        ]
        candidates = balls.ball_ids(placed_ids[parent])
        if step == last_step:
            for candidate in candidates:
                for bs, expected in tests:
                    if ((bs >> candidate) & 1) != expected:
                        break
                else:
                    placed_ids[position] = candidate
                    yield tuple(elements[placed_ids[i]] for i in range(1, k + 1))
            return
        for candidate in candidates:
            for bs, expected in tests:
                if ((bs >> candidate) & 1) != expected:
                    break
            else:
                placed_ids[position] = candidate
                yield from extend(step + 1)

    yield from extend(0)


@traced("local.evaluate_basic_unary")
def evaluate_basic_unary(
    structure: Structure,
    term: BasicClTerm,
    elements: "Optional[Sequence[Element]]" = None,
    predicates: "Optional[PredicateCollection]" = None,
    evaluate_psi_locally: bool = True,
    budget: "Optional[EvaluationBudget]" = None,
) -> Dict[Element, int]:
    """``u^A[a]`` for all ``a`` (or the given elements) by ball exploration.

    With ``evaluate_psi_locally`` the formula ``psi`` is checked inside the
    r-neighbourhood ``N_r(a-bar)`` — correct whenever psi really is r-local
    (which Definition 6.2 requires); switching it off evaluates psi globally
    (always correct, the ablation baseline of experiment E10).
    """
    if not term.unary:
        raise FormulaError("evaluate_basic_unary needs a unary basic cl-term")
    targets = list(elements) if elements is not None else list(structure.universe_order)
    balls = _BallCache(structure, term.link_distance)
    quantifier_free = _is_quantifier_free(term.psi)
    # Resolve the per-tuple budget hook once: the inner loop is the hot
    # path, and even a repeated `is not None` test per tuple is measurable,
    # so the instrumented and plain loops are kept as separate paths.
    tick = budget.tick if budget is not None else None
    check_locally = evaluate_psi_locally and not quantifier_free
    values: Dict[Element, int] = {}
    for element in targets:
        total = 0
        tuples = pattern_tuples(
            structure, element, term.width, term.edges, term.link_distance, balls
        )
        if tick is None:
            for tup in tuples:
                if _psi_holds(
                    structure,
                    term.psi,
                    term.variables,
                    tup,
                    term.psi_radius,
                    predicates,
                    check_locally,
                ):
                    total += 1
        else:
            for tup in tuples:
                tick("local.tuple")
                if _psi_holds(
                    structure,
                    term.psi,
                    term.variables,
                    tup,
                    term.psi_radius,
                    predicates,
                    check_locally,
                ):
                    total += 1
        values[element] = total
    return values


def evaluate_basic_ground(
    structure: Structure,
    term: BasicClTerm,
    predicates: "Optional[PredicateCollection]" = None,
    evaluate_psi_locally: bool = True,
) -> int:
    """``g^A`` for a ground basic cl-term: the Remark 6.3 sum over the unary
    companion ``u(y1) = #(y2..yk).body``."""
    if term.unary:
        raise FormulaError("evaluate_basic_ground needs a ground basic cl-term")
    companion = BasicClTerm(
        term.variables,
        term.psi,
        term.psi_radius,
        term.link_distance,
        term.edges,
        unary=True,
    )
    values = evaluate_basic_unary(
        structure, companion, None, predicates, evaluate_psi_locally
    )
    return sum(values.values())


def _psi_holds(
    structure: Structure,
    psi: Formula,
    variables: Tuple[Variable, ...],
    tup: Tuple[Element, ...],
    radius: int,
    predicates: "Optional[PredicateCollection]",
    locally: bool,
) -> bool:
    assignment = dict(zip(variables, tup))
    if not locally:
        return satisfies(structure, psi, assignment, predicates)
    local = neighbourhood(structure, tup, radius)
    return satisfies(local, psi, assignment, predicates)


def evaluate_polynomial_ground(
    structure: Structure,
    polynomial: ClPolynomial,
    predicates: "Optional[PredicateCollection]" = None,
    evaluate_psi_locally: bool = True,
) -> int:
    """Evaluate a ground cl-term (polynomial over ground basic cl-terms)."""
    for term in polynomial.basic_terms():
        if term.unary:
            raise FormulaError("ground polynomial contains a unary basic term")
    return polynomial.evaluate(
        lambda term: evaluate_basic_ground(
            structure, term, predicates, evaluate_psi_locally
        )
    )


def evaluate_polynomial_unary(
    structure: Structure,
    polynomial: ClPolynomial,
    elements: "Optional[Sequence[Element]]" = None,
    predicates: "Optional[PredicateCollection]" = None,
    evaluate_psi_locally: bool = True,
) -> Dict[Element, int]:
    """Evaluate a unary cl-term pointwise.

    Ground basic factors are evaluated once and reused across all elements;
    unary factors are evaluated per element.
    """
    targets = list(elements) if elements is not None else list(structure.universe_order)
    ground_cache: Dict[BasicClTerm, int] = {}
    unary_cache: Dict[BasicClTerm, Dict[Element, int]] = {}
    for term in polynomial.basic_terms():
        if term.unary:
            unary_cache[term] = evaluate_basic_unary(
                structure, term, targets, predicates, evaluate_psi_locally
            )
        else:
            ground_cache[term] = evaluate_basic_ground(
                structure, term, predicates, evaluate_psi_locally
            )
    result: Dict[Element, int] = {}
    for element in targets:
        result[element] = polynomial.evaluate(
            lambda term: unary_cache[term][element]
            if term.unary
            else ground_cache[term]
        )
    return result
