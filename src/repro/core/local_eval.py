"""Local evaluation of basic cl-terms by ball exploration (Remark 6.3).

A basic cl-term with a *connected* pattern graph G confines every counted
tuple to the ball ``N_R(a1)`` with ``R = r + (k-1) * D`` (Lemma 6.1), so its
unary version can be evaluated at an element by exploring only that ball,
and its ground version by summing the unary values over all elements:
``g^A = sum_a u^A[a]`` — exactly the paper's Remark 6.3.

The tuple enumeration walks the pattern graph G in BFS order from vertex 1:
each next position is pattern-adjacent to an already placed one, so its
candidates come from a D-ball around a placed element rather than from the
whole universe.  On structures with small balls this is the source of the
near-linear behaviour of the whole pipeline.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..errors import FormulaError
from ..logic.predicates import PredicateCollection
from ..logic.semantics import satisfies
from ..logic.syntax import Formula, Variable
from ..obs import active_metrics, traced
from ..robust.budget import EvaluationBudget
from ..structures.gaifman import distances_from, neighbourhood
from ..structures.structure import Element, Structure
from .clterms import BasicClTerm, ClPolynomial, Edges


def _is_quantifier_free(formula: Formula) -> bool:
    from ..logic.syntax import Exists, Forall, subexpressions

    return not any(isinstance(n, (Exists, Forall)) for n in subexpressions(formula))


class _BallCache:
    """Memoised D-balls (as frozensets) for one structure and one distance."""

    __slots__ = ("structure", "distance", "_cache", "_metrics")

    def __init__(self, structure: Structure, distance: int):
        self.structure = structure
        self.distance = distance
        self._cache: Dict[Element, FrozenSet[Element]] = {}
        self._metrics = active_metrics()

    def __call__(self, element: Element) -> FrozenSet[Element]:
        cached = self._cache.get(element)
        if cached is None:
            cached = frozenset(
                distances_from(self.structure, [element], self.distance)
            )
            self._cache[element] = cached
            if self._metrics is not None:
                self._metrics.inc("local.ball.expansion")
                self._metrics.inc("local.ball.memo.miss")
                self._metrics.observe("local.ball.size", len(cached))
        elif self._metrics is not None:
            self._metrics.inc("local.ball.memo.hit")
        return cached


#: Compile-once cache for pattern walk orders: the BFS placement order
#: depends only on (k, edges), never on the structure, so it is computed
#: once per distinct pattern graph for the life of the process (the same
#: compile/execute split the plan layer applies to full expressions —
#: cover_eval, incremental maintenance and the Section 8.2 loop all walk
#: the same handful of patterns thousands of times).
_PATTERN_ORDERS: Dict[Tuple[int, Edges], Tuple[Tuple[int, int], ...]] = {}


def pattern_order(k: int, edges: Edges) -> Tuple[Tuple[int, int], ...]:
    """BFS order over the connected pattern graph from vertex 1, cached.

    Returns ((position, parent_position), ...) for positions 2..k in
    placement order; parent_position is already placed and pattern-adjacent.
    """
    key = (k, edges)
    cached = _PATTERN_ORDERS.get(key)
    if cached is not None:
        return cached
    adjacency: Dict[int, List[int]] = {i: [] for i in range(1, k + 1)}
    for i, j in edges:
        adjacency[i].append(j)
        adjacency[j].append(i)
    order: List[Tuple[int, int]] = []
    seen = {1}
    frontier = deque([1])
    while frontier:
        node = frontier.popleft()
        for neighbour in sorted(adjacency[node]):
            if neighbour not in seen:
                seen.add(neighbour)
                order.append((neighbour, node))
                frontier.append(neighbour)
    if len(seen) != k:
        raise FormulaError("pattern graph must be connected")
    result = tuple(order)
    _PATTERN_ORDERS[key] = result
    return result


#: Backwards-compatible alias (pre-plan-layer name).
_pattern_order = pattern_order


def pattern_tuples(
    structure: Structure,
    first: Element,
    k: int,
    edges: Edges,
    link_distance: int,
    ball_cache: "Optional[_BallCache]" = None,
) -> Iterator[Tuple[Element, ...]]:
    """All tuples ``(a1, ..., ak)`` with ``a1 = first`` whose connectivity
    pattern at the link distance is *exactly* the connected graph G: pattern
    edges mean ``dist <= D`` and non-edges ``dist > D``.

    Tuples may repeat elements (a repeated element forces a pattern edge,
    which the exactness check enforces automatically).
    """
    if k == 1:
        yield (first,)
        return
    balls = ball_cache if ball_cache is not None else _BallCache(structure, link_distance)
    order = pattern_order(k, edges)
    edge_set = set(edges)

    placed: Dict[int, Element] = {1: first}

    def extend(step: int) -> Iterator[Tuple[Element, ...]]:
        if step == len(order):
            yield tuple(placed[i] for i in range(1, k + 1))
            return
        position, parent = order[step]
        for candidate in balls(placed[parent]):
            # exactness check against every already placed position
            ok = True
            for other, value in placed.items():
                expected = (min(other, position), max(other, position)) in edge_set
                actual = candidate in balls(value)
                if expected != actual:
                    ok = False
                    break
            if not ok:
                continue
            placed[position] = candidate
            yield from extend(step + 1)
            del placed[position]

    yield from extend(0)


@traced("local.evaluate_basic_unary")
def evaluate_basic_unary(
    structure: Structure,
    term: BasicClTerm,
    elements: "Optional[Sequence[Element]]" = None,
    predicates: "Optional[PredicateCollection]" = None,
    evaluate_psi_locally: bool = True,
    budget: "Optional[EvaluationBudget]" = None,
) -> Dict[Element, int]:
    """``u^A[a]`` for all ``a`` (or the given elements) by ball exploration.

    With ``evaluate_psi_locally`` the formula ``psi`` is checked inside the
    r-neighbourhood ``N_r(a-bar)`` — correct whenever psi really is r-local
    (which Definition 6.2 requires); switching it off evaluates psi globally
    (always correct, the ablation baseline of experiment E10).
    """
    if not term.unary:
        raise FormulaError("evaluate_basic_unary needs a unary basic cl-term")
    targets = list(elements) if elements is not None else list(structure.universe_order)
    balls = _BallCache(structure, term.link_distance)
    quantifier_free = _is_quantifier_free(term.psi)
    # Resolve the per-tuple budget hook once: the inner loop is the hot
    # path, and even a repeated `is not None` test per tuple is measurable,
    # so the instrumented and plain loops are kept as separate paths.
    tick = budget.tick if budget is not None else None
    check_locally = evaluate_psi_locally and not quantifier_free
    values: Dict[Element, int] = {}
    for element in targets:
        total = 0
        tuples = pattern_tuples(
            structure, element, term.width, term.edges, term.link_distance, balls
        )
        if tick is None:
            for tup in tuples:
                if _psi_holds(
                    structure,
                    term.psi,
                    term.variables,
                    tup,
                    term.psi_radius,
                    predicates,
                    check_locally,
                ):
                    total += 1
        else:
            for tup in tuples:
                tick("local.tuple")
                if _psi_holds(
                    structure,
                    term.psi,
                    term.variables,
                    tup,
                    term.psi_radius,
                    predicates,
                    check_locally,
                ):
                    total += 1
        values[element] = total
    return values


def evaluate_basic_ground(
    structure: Structure,
    term: BasicClTerm,
    predicates: "Optional[PredicateCollection]" = None,
    evaluate_psi_locally: bool = True,
) -> int:
    """``g^A`` for a ground basic cl-term: the Remark 6.3 sum over the unary
    companion ``u(y1) = #(y2..yk).body``."""
    if term.unary:
        raise FormulaError("evaluate_basic_ground needs a ground basic cl-term")
    companion = BasicClTerm(
        term.variables,
        term.psi,
        term.psi_radius,
        term.link_distance,
        term.edges,
        unary=True,
    )
    values = evaluate_basic_unary(
        structure, companion, None, predicates, evaluate_psi_locally
    )
    return sum(values.values())


def _psi_holds(
    structure: Structure,
    psi: Formula,
    variables: Tuple[Variable, ...],
    tup: Tuple[Element, ...],
    radius: int,
    predicates: "Optional[PredicateCollection]",
    locally: bool,
) -> bool:
    assignment = dict(zip(variables, tup))
    if not locally:
        return satisfies(structure, psi, assignment, predicates)
    local = neighbourhood(structure, tup, radius)
    return satisfies(local, psi, assignment, predicates)


def evaluate_polynomial_ground(
    structure: Structure,
    polynomial: ClPolynomial,
    predicates: "Optional[PredicateCollection]" = None,
    evaluate_psi_locally: bool = True,
) -> int:
    """Evaluate a ground cl-term (polynomial over ground basic cl-terms)."""
    for term in polynomial.basic_terms():
        if term.unary:
            raise FormulaError("ground polynomial contains a unary basic term")
    return polynomial.evaluate(
        lambda term: evaluate_basic_ground(
            structure, term, predicates, evaluate_psi_locally
        )
    )


def evaluate_polynomial_unary(
    structure: Structure,
    polynomial: ClPolynomial,
    elements: "Optional[Sequence[Element]]" = None,
    predicates: "Optional[PredicateCollection]" = None,
    evaluate_psi_locally: bool = True,
) -> Dict[Element, int]:
    """Evaluate a unary cl-term pointwise.

    Ground basic factors are evaluated once and reused across all elements;
    unary factors are evaluated per element.
    """
    targets = list(elements) if elements is not None else list(structure.universe_order)
    ground_cache: Dict[BasicClTerm, int] = {}
    unary_cache: Dict[BasicClTerm, Dict[Element, int]] = {}
    for term in polynomial.basic_terms():
        if term.unary:
            unary_cache[term] = evaluate_basic_unary(
                structure, term, targets, predicates, evaluate_psi_locally
            )
        else:
            ground_cache[term] = evaluate_basic_ground(
                structure, term, predicates, evaluate_psi_locally
            )
    result: Dict[Element, int] = {}
    for element in targets:
        result[element] = polynomial.evaluate(
            lambda term: unary_cache[term][element]
            if term.unary
            else ground_cache[term]
        )
    return result
