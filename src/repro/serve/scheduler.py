"""Fair-share scheduling: deficit round-robin over per-tenant queues.

The service runs every admitted query one *preemptible budget quantum*
at a time, so the scheduling currency is evaluation steps, not wall
time.  Deficit round-robin (Shreedhar & Varghese) fits exactly: each
tenant holds a step *deficit* that grows by one quantum's worth per
round and shrinks by the steps its queries actually spend, so a tenant
whose queries are ten times heavier gets one dispatch for every ten a
light tenant gets — one heavy tenant cannot starve the rest, and an
idle tenant accumulates no credit (its deficit resets when its queue
empties, the classic anti-burst rule).

The scheduler is a pure data structure: every method is called from the
service's event loop thread only, so it needs no locking, and its
decisions depend only on the push/credit sequence — deterministic for a
deterministic submission schedule.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

__all__ = ["DeficitRoundRobin"]


class DeficitRoundRobin:
    """Step-metered DRR across tenants; FIFO within a tenant."""

    def __init__(self, quantum: int) -> None:
        if quantum < 1:
            raise ValueError("quantum must be a positive step count")
        self.quantum = quantum
        #: Active tenants in round order (OrderedDict as a ring buffer).
        self._queues: "OrderedDict[str, Deque[Any]]" = OrderedDict()
        self._deficit: Dict[str, int] = {}

    # -- enqueue --------------------------------------------------------------

    def push(self, tenant: str, job: Any) -> None:
        """Append ``job`` to ``tenant``'s queue (joining the round if new)."""
        queue = self._queues.get(tenant)
        if queue is None:
            queue = deque()
            self._queues[tenant] = queue
            self._deficit.setdefault(tenant, 0)
        queue.append(job)

    def push_front(self, tenant: str, job: Any) -> None:
        """Re-queue a preempted job at the *head* of its tenant's queue.

        A suspended query resumes before the tenant's younger queries:
        its deficit charge already paid for the dispatch, and FIFO
        within a tenant keeps per-tenant latency predictable.
        """
        queue = self._queues.get(tenant)
        if queue is None:
            queue = deque()
            self._queues[tenant] = queue
            self._deficit.setdefault(tenant, 0)
        queue.appendleft(job)

    # -- dispatch -------------------------------------------------------------

    def next(self) -> "Optional[Tuple[str, Any]]":
        """Pop the next ``(tenant, job)`` to dispatch, or ``None`` if idle.

        Visits tenants in round order; a visited tenant earns one
        ``quantum`` of deficit and serves queries while its deficit
        stays positive, paying one quantum per dispatch up front
        (:meth:`credit` refunds the unspent part when the quantum
        returns).  A tenant whose queue empties leaves the round and
        forfeits its deficit.
        """
        rounds = len(self._queues)
        for _ in range(rounds):
            tenant, queue = next(iter(self._queues.items()))
            if not queue:
                # Queue drained since the last visit: drop from the
                # round, forfeit credit (anti-burst).
                del self._queues[tenant]
                self._deficit.pop(tenant, None)
                continue
            if self._deficit[tenant] <= 0:
                self._deficit[tenant] += self.quantum
            if self._deficit[tenant] > 0:
                job = queue.popleft()
                self._deficit[tenant] -= self.quantum
                if not queue:
                    del self._queues[tenant]
                    self._deficit.pop(tenant, None)
                elif self._deficit[tenant] <= 0:
                    self._queues.move_to_end(tenant)
                # A tenant whose refunds left it genuinely in credit
                # keeps the floor (classic DRR: serve within the earned
                # quantum) — its cheap queries cost their true weight.
                return tenant, job
            self._queues.move_to_end(tenant)
        return None

    def credit(self, tenant: str, unspent: int) -> None:
        """Refund the unspent part of a dispatched quantum.

        The dispatch charged a full quantum; a query that suspended (or
        finished) after ``spent`` steps refunds ``quantum - spent``, so
        light queries cost their true weight.  Refunds for tenants that
        have left the round are dropped — deficits never outlive the
        backlog that earned them.
        """
        if unspent <= 0 or tenant not in self._queues:
            return
        self._deficit[tenant] = self._deficit.get(tenant, 0) + min(
            unspent, self.quantum
        )

    def charge(self, tenant: str, steps: int) -> None:
        """Charge extra steps (beyond the dispatch quantum) to ``tenant``.

        Used for batched work attributed to tenants whose member jobs
        were collected without a dispatch of their own.
        """
        if steps <= 0 or tenant not in self._queues:
            return
        self._deficit[tenant] = self._deficit.get(tenant, 0) - steps

    # -- batch collection -----------------------------------------------------

    def collect(self, match, limit: int) -> List[Tuple[str, Any]]:
        """Remove and return up to ``limit`` queued jobs with ``match(job)``.

        Scans tenants in round order, heads first — the jobs most about
        to be dispatched anyway — so batching never *delays* anything
        it collects.  Tenants whose queues empty leave the round.
        """
        collected: List[Tuple[str, Any]] = []
        if limit <= 0:
            return collected
        for tenant in list(self._queues.keys()):
            queue = self._queues[tenant]
            kept: Deque[Any] = deque()
            while queue and len(collected) < limit:
                job = queue.popleft()
                if match(job):
                    collected.append((tenant, job))
                else:
                    kept.append(job)
            kept.extend(queue)
            if kept:
                self._queues[tenant] = kept
            else:
                del self._queues[tenant]
                self._deficit.pop(tenant, None)
            if len(collected) >= limit:
                break
        return collected

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def pending(self, tenant: str) -> int:
        queue = self._queues.get(tenant)
        return len(queue) if queue is not None else 0

    def tenants(self) -> Iterator[str]:
        return iter(self._queues.keys())

    def deficit(self, tenant: str) -> int:
        return self._deficit.get(tenant, 0)
