"""Admission control: bounded queues and typed load shedding.

An overloaded service has exactly two honest options per request: run it
(eventually, fairly) or refuse it *now* with a machine-readable reason.
Unbounded queueing — the dishonest third option — converts overload
into unbounded latency and memory, so the controller bounds everything:

* per-tenant **waiting queue** depth (``max_queue``),
* per-tenant **in-flight** requests, queued plus running
  (``max_inflight``),
* per-tenant **step quota** per accounting window (``step_quota``) —
  the deficit-round-robin scheduler already guarantees *fair* progress,
  the quota additionally caps a tenant's absolute spend,
* a **global in-flight** ceiling (``max_total_inflight``), and
* a **drain** switch that refuses everything during shutdown.

Every refusal raises :class:`~repro.errors.AdmissionError` with
``reason`` set and bumps the matching ``serve.shed.<reason>`` counter
(catalogue in ``docs/OBSERVABILITY.md``).  Admitted work is tracked
until :meth:`AdmissionController.release`, and step spend is charged
back per quantum so the quota meters actual work, not guesses.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import AdmissionError
from ..obs.metrics import MetricsRegistry

__all__ = ["AdmissionController", "TenantQuota"]

#: The shed reasons, in the order the controller checks them.
SHED_REASONS = ("draining", "saturated", "concurrency", "queue_full", "steps")


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits.

    ``max_inflight`` bounds queued + running requests, ``max_queue``
    bounds the waiting portion, and ``step_quota`` (``None`` = no cap)
    bounds total evaluation steps charged per accounting window —
    :meth:`AdmissionController.refill` opens the next window.
    """

    max_inflight: int = 8
    max_queue: int = 6
    step_quota: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if self.step_quota is not None and self.step_quota < 1:
            raise ValueError("step_quota must be positive when set")


class AdmissionController:
    """Tracks in-flight work per tenant and decides admit vs shed.

    Thread-safe (one lock) so sheds and releases can be counted from
    the event loop and quantum threads alike; all checks in
    :meth:`admit` happen under the lock, so the bounds are exact, not
    racy estimates.
    """

    def __init__(
        self,
        quota: TenantQuota = TenantQuota(),
        per_tenant: "Optional[Dict[str, TenantQuota]]" = None,
        max_total_inflight: "Optional[int]" = None,
        metrics: "Optional[MetricsRegistry]" = None,
    ) -> None:
        if max_total_inflight is not None and max_total_inflight < 1:
            raise ValueError("max_total_inflight must be positive when set")
        self.default_quota = quota
        self.per_tenant = dict(per_tenant or {})
        self.max_total_inflight = max_total_inflight
        self._metrics = metrics
        self._lock = threading.Lock()
        self._queued: Dict[str, int] = {}
        self._running: Dict[str, int] = {}
        self._steps_spent: Dict[str, int] = {}
        self._admitted = 0
        self._shed: Dict[str, int] = {reason: 0 for reason in SHED_REASONS}
        self.draining = False

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.per_tenant.get(tenant, self.default_quota)

    # -- the admit / run / release lifecycle ---------------------------------

    def admit(self, tenant: str) -> None:
        """Admit one request into ``tenant``'s queue, or shed it.

        Raises :class:`~repro.errors.AdmissionError` with the first
        violated bound as ``reason``; on success the request is counted
        as queued until :meth:`start` moves it to running.
        """
        quota = self.quota_for(tenant)
        with self._lock:
            if self.draining:
                self._reject(
                    tenant,
                    "draining",
                    "service is draining and admits no new work",
                )
            total = sum(self._queued.values()) + sum(self._running.values())
            if (
                self.max_total_inflight is not None
                and total >= self.max_total_inflight
            ):
                self._reject(
                    tenant,
                    "saturated",
                    f"service at global in-flight ceiling "
                    f"({self.max_total_inflight})",
                )
            queued = self._queued.get(tenant, 0)
            running = self._running.get(tenant, 0)
            if queued + running >= quota.max_inflight:
                self._reject(
                    tenant,
                    "concurrency",
                    f"tenant at in-flight quota ({quota.max_inflight})",
                )
            if queued >= quota.max_queue:
                self._reject(
                    tenant,
                    "queue_full",
                    f"tenant queue full ({quota.max_queue} waiting)",
                )
            if (
                quota.step_quota is not None
                and self._steps_spent.get(tenant, 0) >= quota.step_quota
            ):
                self._reject(
                    tenant,
                    "steps",
                    f"tenant exhausted its step quota "
                    f"({quota.step_quota} per window)",
                )
            self._queued[tenant] = queued + 1
            self._admitted += 1
            if self._metrics is not None:
                self._metrics.inc("serve.admitted")
                self._metrics.inc(f"serve.tenant.{tenant}.admitted")

    def _reject(self, tenant: str, reason: str, detail: str) -> None:
        self._shed[reason] = self._shed.get(reason, 0) + 1
        if self._metrics is not None:
            self._metrics.inc(f"serve.shed.{reason}")
            self._metrics.inc(f"serve.tenant.{tenant}.shed")
        raise AdmissionError(
            f"request shed for tenant {tenant!r}: {detail}",
            reason=reason,
            tenant=tenant,
        )

    def start(self, tenant: str) -> None:
        """A queued request was dispatched into a quantum."""
        with self._lock:
            self._queued[tenant] = max(0, self._queued.get(tenant, 0) - 1)
            self._running[tenant] = self._running.get(tenant, 0) + 1

    def requeue(self, tenant: str) -> None:
        """A running request was preempted and went back to the queue."""
        with self._lock:
            self._running[tenant] = max(0, self._running.get(tenant, 0) - 1)
            self._queued[tenant] = self._queued.get(tenant, 0) + 1

    def release(self, tenant: str) -> None:
        """A running request reached a terminal outcome."""
        with self._lock:
            self._running[tenant] = max(0, self._running.get(tenant, 0) - 1)
            if self._metrics is not None:
                self._metrics.inc(f"serve.tenant.{tenant}.completed")

    def charge_steps(self, tenant: str, steps: int) -> None:
        """Charge evaluation steps against ``tenant``'s window quota."""
        if steps <= 0:
            return
        with self._lock:
            self._steps_spent[tenant] = (
                self._steps_spent.get(tenant, 0) + steps
            )

    def refill(self, tenant: "Optional[str]" = None) -> None:
        """Open a new accounting window (all tenants, or just one)."""
        with self._lock:
            if tenant is None:
                self._steps_spent.clear()
            else:
                self._steps_spent.pop(tenant, None)

    # -- introspection --------------------------------------------------------

    def inflight(self, tenant: "Optional[str]" = None) -> int:
        with self._lock:
            if tenant is None:
                return sum(self._queued.values()) + sum(
                    self._running.values()
                )
            return self._queued.get(tenant, 0) + self._running.get(tenant, 0)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "admitted": self._admitted,
                "shed": dict(self._shed),
                "shed_total": sum(self._shed.values()),
                "queued": dict(self._queued),
                "running": dict(self._running),
                "steps_spent": dict(self._steps_spent),
                "draining": self.draining,
            }
