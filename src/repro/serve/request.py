"""Request/response types for the multi-tenant query service.

A :class:`QueryRequest` names one evaluation the service should perform
on behalf of one tenant; a :class:`QueryResponse` is the terminal
outcome of an *admitted* request.  Admission refusals never produce a
response — they raise a typed
:class:`~repro.errors.AdmissionError` from ``submit`` instead, so a
shed request fails fast and loud rather than timing out by silence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..errors import ReproError
from ..logic.parser import parse_formula, parse_term
from ..logic.printer import pretty
from ..logic.syntax import Expression
from ..plan.normalise import canonicalise
from ..robust.checkpoint import Checkpoint, fingerprint
from ..structures.structure import Structure

__all__ = ["OPERATIONS", "QueryRequest", "QueryResponse"]

#: The engine operations a request may name (the CLI subcommand names).
OPERATIONS = ("check", "count", "term", "unary")


@dataclass(frozen=True)
class QueryRequest:
    """One tenant-attributed evaluation request.

    ``expression`` may be source text (parsed on submission) or an
    already-parsed :class:`~repro.logic.syntax.Expression`.  ``count``
    requires ``variables``; ``unary`` requires ``variable``.  ``seed``
    feeds the sampling tier if the request is answered under the
    degradation policy — identical requests degrade to byte-identical
    estimates.
    """

    tenant: str
    operation: str
    structure: Structure
    expression: Any
    variables: Tuple[str, ...] = ()
    variable: str = ""
    request_id: str = ""
    seed: int = 0

    def __post_init__(self) -> None:
        if self.operation not in OPERATIONS:
            raise ReproError(
                f"unknown operation {self.operation!r}; "
                f"expected one of {OPERATIONS}"
            )
        if self.operation == "count" and not self.variables:
            raise ReproError("count requests need non-empty 'variables'")
        if self.operation == "unary" and not self.variable:
            raise ReproError("unary requests need a 'variable'")

    @property
    def count_only(self) -> bool:
        """Whether the answer is a single count the sampler could estimate."""
        return self.operation in ("count", "term")

    def parsed(self) -> Expression:
        """The request expression as an AST (parsing text if needed)."""
        if isinstance(self.expression, Expression):
            return self.expression
        if self.operation in ("check", "count"):
            return parse_formula(str(self.expression))
        return parse_term(str(self.expression))


def canonical_text(request: QueryRequest, expression: Expression) -> str:
    """The request's canonical query text (checkpoint/batch identity).

    Mirrors the CLI's ``_query_key`` composition so a checkpoint taken
    by the service and one taken by ``python -m repro`` agree on what
    "the same query" means.
    """
    text = pretty(canonicalise(expression))
    if request.operation == "count":
        text += f" | vars={','.join(request.variables)}"
    elif request.operation == "unary":
        text += f" | var={request.variable}"
    return text


def query_key(request: QueryRequest, expression: Expression) -> str:
    """The checkpoint fingerprint for this request."""
    return fingerprint(
        request.operation, canonical_text(request, expression), request.structure
    )


@dataclass
class QueryResponse:
    """Terminal outcome of one admitted request.

    ``status`` is ``"ok"`` for a completed answer or ``"suspended"``
    when a bounded drain gave up granting further quanta — the response
    then carries the final :class:`~repro.robust.checkpoint.Checkpoint`
    so the work is handed back, not orphaned.  ``approximate`` marks
    answers produced by the sampling tier under the degradation policy;
    an estimate is never returned without the flag.
    """

    request_id: str
    tenant: str
    operation: str
    value: Any = None
    status: str = "ok"
    approximate: bool = False
    quanta: int = 0
    resumes: int = 0
    steps: int = 0
    batched: bool = False
    latency_s: float = 0.0
    queue_wait_s: float = 0.0
    checkpoint: Optional[Checkpoint] = field(default=None, repr=False)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe view (checkpoint reduced to its summary dict)."""
        payload = {
            "schema": "repro-serve-response/1",
            "request_id": self.request_id,
            "tenant": self.tenant,
            "operation": self.operation,
            "status": self.status,
            "value": self.value
            if isinstance(self.value, (int, float, bool, str, type(None)))
            else repr(self.value),
            "approximate": self.approximate,
            "quanta": self.quanta,
            "resumes": self.resumes,
            "steps": self.steps,
            "batched": self.batched,
            "latency_s": self.latency_s,
            "queue_wait_s": self.queue_wait_s,
        }
        payload["checkpoint"] = (
            self.checkpoint.to_dict() if self.checkpoint is not None else None
        )
        return payload
