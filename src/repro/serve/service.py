"""The asyncio multi-tenant query service: :class:`QueryService`.

Architecture (see ``docs/SERVING.md`` for the operator view)::

    submit() ──> AdmissionController ──> DeficitRoundRobin queues
                     │ (typed shed)            │
                     ▼                         ▼  one preemptible quantum
                AdmissionError          executor thread pool
                                               │
                         done ◄── SuspendedError ──► checkpoint, re-queue

* **Admission** (:mod:`repro.serve.admission`): bounded per-tenant
  queues and quotas; refusals raise
  :class:`~repro.errors.AdmissionError`, never queue without bound.
* **Scheduling** (:mod:`repro.serve.scheduler`): deficit round-robin
  across tenants, metered in evaluation steps.  Every dispatched query
  runs one *preemptible* :class:`~repro.robust.EvaluationBudget`
  quantum on an executor thread; quantum exhaustion raises
  :class:`~repro.errors.SuspendedError`, the quantum's
  :class:`~repro.robust.checkpoint.CheckpointSession` snapshot is kept
  in memory on the job, and the job re-queues at the head of its
  tenant's queue — admitted work is *never* killed.
* **Batching**: compatible ``count`` requests (same canonical formula
  and counted variables) collected from the queue heads run as one
  :meth:`~repro.robust.guard.RobustEvaluator.count_many` batch under a
  proportionally larger quantum, one plan for the whole batch through
  the shared :class:`~repro.plan.cache.PlanCache`.
* **Degradation**: with thresholds configured, count-only requests
  whose predicted cost (:class:`~repro.cost.model.CostModel` over the
  *warm* plan) or whose observed saturation
  (:class:`~repro.cost.saturation.SaturationTracker`) crosses the line
  are answered by the sampling tier with ``approximate=True`` — the
  service sheds exactness before shedding tenants.
* **Drain**: :meth:`QueryService.drain` stops admission (typed
  ``draining`` sheds) and finishes in-flight work; with a bounded
  ``grace`` the stragglers are suspended once more and handed back as
  ``status="suspended"`` responses carrying their final checkpoint —
  every admitted request gets a terminal response, no checkpoint is
  orphaned.

Determinism: exact answers are byte-identical to an unloaded serial
run at any worker count and any preemption schedule — restored
checkpoint state only ever skips work (see
:mod:`repro.robust.checkpoint`), and the 30-seed serving differential
gate (``tests/serve/test_differential_service.py``) enforces it.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..approx.evaluator import ApproxEvaluator
from ..cost.model import CostModel
from ..cost.saturation import SaturationTracker
from ..cost.stats import structure_stats
from ..errors import BudgetExceededError, ReproError, SuspendedError
from ..logic.predicates import PredicateCollection
from ..obs.metrics import (
    MetricsRegistry,
    active_metrics,
    reset_thread_metrics,
    set_thread_metrics,
)
from ..plan.cache import PlanCache, default_plan_cache
from ..plan.ir import PlanOptions
from ..plan.normalise import canonicalise
from ..robust.budget import EvaluationBudget
from ..robust.checkpoint import (
    Checkpoint,
    CheckpointSession,
    checkpoint_session,
)
from ..robust.guard import RobustEvaluator
from .admission import AdmissionController, TenantQuota
from .request import QueryRequest, QueryResponse, canonical_text, query_key
from .scheduler import DeficitRoundRobin

__all__ = ["QueryService"]


@dataclass(eq=False)
class _Job:
    """One admitted request plus its live scheduling state."""

    request: QueryRequest
    expression: Any
    key: str
    batch_key: "Optional[Tuple]"
    future: "asyncio.Future[QueryResponse]"
    admitted_at: float
    first_dispatch_at: "Optional[float]" = None
    checkpoint: "Optional[Checkpoint]" = None
    boost: int = 1
    last_progress: "Optional[Tuple]" = None
    quanta: int = 0
    drain_quanta: int = 0
    steps: int = 0
    degrade_checked: bool = False
    degraded: bool = False
    batched: bool = False


@dataclass
class _Unit:
    """What one executor quantum runs: a single job or a count batch."""

    members: List[Tuple[str, _Job]]
    saturation: float = 0.0
    checkpoint: "Optional[Checkpoint]" = None

    @property
    def is_batch(self) -> bool:
        return len(self.members) > 1

    @property
    def primary(self) -> Tuple[str, _Job]:
        return self.members[0]


@dataclass
class _Outcome:
    """What a quantum reports back to the event loop."""

    kind: str  # "done" | "suspended" | "error"
    value: Any = None
    values: "Optional[List[Any]]" = None
    approximate: bool = False
    checkpoint: "Optional[Checkpoint]" = None
    error: "Optional[BaseException]" = None
    steps: int = 0
    detail: str = ""


def _progress_signature(
    checkpoint: "Optional[Checkpoint]",
) -> "Optional[Tuple]":
    """What a suspended quantum durably recorded (see test_preemption)."""
    if checkpoint is None:
        return None
    return (
        checkpoint.steps_spent,
        sum(len(r.strata) for r in checkpoint.exec_state.values()),
        sum(len(r.memo) for r in checkpoint.exec_state.values()),
        sum(len(s) for s in checkpoint.shards.values()),
    )


@dataclass
class _ServiceStats:
    completed: int = 0
    suspended: int = 0
    resumes: int = 0
    degraded: int = 0
    batches: int = 0
    batched_requests: int = 0
    errors: int = 0
    drain_suspended: int = 0
    steps: int = 0
    latencies: List[float] = field(default_factory=list)


class QueryService:
    """A long-lived, multi-tenant, preemptible front-end over the engines.

    Parameters
    ----------
    workers:
        Concurrent quantum slots (executor threads).  This is the
        *service* concurrency; ``eval_workers`` is the per-quantum
        engine parallelism (``None`` resolves ``REPRO_WORKERS``).
    quantum_steps:
        The preemptible budget quantum in evaluation steps — the
        scheduling currency.  Small quanta preempt (and re-queue) more;
        large quanta lower overhead.
    quantum_seconds:
        Optional wall-clock bound per quantum on top of the step bound.
    quota / quotas / max_total_inflight:
        Admission limits: the default :class:`TenantQuota`, optional
        per-tenant overrides, and the global in-flight ceiling
        (defaults to ``workers * 8``).
    batch_max:
        Compatible ``count`` requests merged per dispatch (1 disables
        batching).
    degrade_cost_threshold / degrade_saturation:
        Degradation triggers (``None`` disables each): predicted exact
        cost in abstract step units, and smoothed saturation level
        (1.0 = at capacity).  Degraded answers come from the sampling
        tier flagged ``approximate=True``; exact-only deployments leave
        both unset and the service never degrades.
    epsilon / delta:
        The sampling tier's accuracy target for degraded answers (the
        per-request ``seed`` keeps them reproducible).
    degrade_budget_factor:
        Step budget for one degraded answer, in quanta; a sampler that
        exceeds it falls back to the exact preemptible path.
    plan_cache / predicates / check_fragment / metrics:
        Shared compile cache (defaults to the process-wide one), the
        predicate collection, fragment enforcement for the cascade, and
        the :class:`~repro.obs.MetricsRegistry` receiving ``serve.*``
        counters (defaults to the globally active registry, if any).
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        eval_workers: "Optional[int]" = None,
        quantum_steps: int = 20_000,
        quantum_seconds: "Optional[float]" = None,
        quota: TenantQuota = TenantQuota(),
        quotas: "Optional[Dict[str, TenantQuota]]" = None,
        max_total_inflight: "Optional[int]" = None,
        batch_max: int = 8,
        degrade_cost_threshold: "Optional[float]" = None,
        degrade_saturation: "Optional[float]" = None,
        epsilon: float = 0.1,
        delta: float = 0.05,
        degrade_budget_factor: int = 8,
        plan_cache: "Optional[PlanCache]" = None,
        predicates: "Optional[PredicateCollection]" = None,
        check_fragment: bool = True,
        metrics: "Optional[MetricsRegistry]" = None,
    ) -> None:
        if workers < 1:
            raise ReproError("service workers must be a positive integer")
        if quantum_steps < 1:
            raise ReproError("quantum_steps must be a positive integer")
        if batch_max < 1:
            raise ReproError("batch_max must be >= 1")
        if degrade_budget_factor < 1:
            raise ReproError("degrade_budget_factor must be >= 1")
        self.workers = workers
        self.eval_workers = eval_workers
        self.quantum_steps = quantum_steps
        self.quantum_seconds = quantum_seconds
        self.batch_max = batch_max
        self.degrade_cost_threshold = degrade_cost_threshold
        self.degrade_saturation = degrade_saturation
        self.epsilon = epsilon
        self.delta = delta
        self.degrade_budget_factor = degrade_budget_factor
        self.plan_cache = (
            plan_cache if plan_cache is not None else default_plan_cache()
        )
        self.predicates = predicates
        self.check_fragment = check_fragment
        self._metrics = metrics if metrics is not None else active_metrics()
        if max_total_inflight is None:
            max_total_inflight = workers * 8
        self.admission = AdmissionController(
            quota=quota,
            per_tenant=quotas,
            max_total_inflight=max_total_inflight,
            metrics=self._metrics,
        )
        self.saturation = SaturationTracker(capacity=workers)
        self._drr = DeficitRoundRobin(quantum_steps)
        self._stats = _ServiceStats()
        self._jobs: "set[_Job]" = set()
        self._running_units = 0
        self._started = False
        self._draining = False
        self._drain_grace: "Optional[int]" = None
        self._loop: "Optional[asyncio.AbstractEventLoop]" = None
        self._executor: "Optional[ThreadPoolExecutor]" = None
        self._workers: List["asyncio.Task"] = []
        self._work: "Optional[asyncio.Event]" = None

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Spin up the executor and the worker loops (idempotent)."""
        if self._started:
            return
        self._loop = asyncio.get_running_loop()
        self._work = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._draining = False
        self.admission.draining = False
        self._workers = [
            self._loop.create_task(self._worker_loop(i))
            for i in range(self.workers)
        ]
        self._started = True

    async def drain(self, grace: "Optional[int]" = None) -> None:
        """Stop admitting, finish (or checkpoint) in-flight work, stop.

        ``grace`` bounds how many *further* quanta each in-flight query
        may consume: ``None`` runs everything to completion; ``0``
        suspends every queued query at its very next dispatch.  Either
        way every admitted request's future resolves — stragglers get a
        ``status="suspended"`` response carrying their checkpoint — and
        the service retains none: :meth:`orphaned_checkpoints` is 0
        after a drain.
        """
        if not self._started:
            return
        self._draining = True
        self.admission.draining = True
        self._drain_grace = grace
        assert self._work is not None
        self._work.set()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        assert self._executor is not None
        self._executor.shutdown(wait=True)
        self._executor = None
        self._started = False

    async def close(self) -> None:
        """Drain (unbounded grace) and release resources."""
        await self.drain()

    async def __aenter__(self) -> "QueryService":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # -- the front door -------------------------------------------------------

    async def submit(self, request: QueryRequest) -> QueryResponse:
        """Admit, schedule and await one request.

        Raises :class:`~repro.errors.AdmissionError` when shed (typed,
        immediate) and :class:`~repro.errors.ReproError` for malformed
        requests; an *admitted* request always resolves to a
        :class:`QueryResponse`.
        """
        if not self._started:
            raise ReproError("QueryService is not started (use 'async with')")
        expression = request.parsed()
        key = query_key(request, expression)
        batch_key: "Optional[Tuple]" = None
        if self.batch_max > 1 and request.operation == "count":
            batch_key = (
                "count",
                canonical_text(request, expression),
                tuple(request.variables),
            )
        self.admission.admit(request.tenant)
        assert self._loop is not None and self._work is not None
        job = _Job(
            request=request,
            expression=expression,
            key=key,
            batch_key=batch_key,
            future=self._loop.create_future(),
            admitted_at=time.monotonic(),
        )
        self._jobs.add(job)
        self._drr.push(request.tenant, job)
        self.saturation.update(self._running_units, len(self._drr))
        self._work.set()
        return await job.future

    # -- scheduling loop ------------------------------------------------------

    async def _worker_loop(self, index: int) -> None:
        assert self._loop is not None and self._work is not None
        while True:
            unit = self._take_unit()
            if unit is None:
                if (
                    self._draining
                    and len(self._drr) == 0
                    and self._running_units == 0
                ):
                    self._work.set()  # release idle siblings to exit too
                    return
                self._work.clear()
                if len(self._drr) == 0 and not self._draining:
                    await self._work.wait()
                elif len(self._drr) == 0:
                    # Draining, queue empty, but a sibling still runs a
                    # unit that may re-queue its job: wait for the wake.
                    await self._work.wait()
                continue
            self._running_units += 1
            self.saturation.update(self._running_units, len(self._drr))
            try:
                outcome = await self._loop.run_in_executor(
                    self._executor, self._run_unit, unit
                )
            except Exception as error:  # noqa: BLE001 — defensive: a bug
                # in the quantum runner must terminate the request with
                # the error, never hang its future.
                outcome = _Outcome(kind="error", error=error)
            self._running_units -= 1
            self._handle_outcome(unit, outcome)
            self.saturation.update(self._running_units, len(self._drr))
            self._work.set()

    def _take_unit(self) -> "Optional[_Unit]":
        picked = self._drr.next()
        if picked is None:
            return None
        tenant, item = picked
        now = time.monotonic()
        if isinstance(item, _Unit):
            # A suspended batch re-queued as a unit: dispatch it whole.
            for member_tenant, job in item.members:
                self.admission.start(member_tenant)
            item.saturation = self.saturation.level()
            return item
        job = item
        self.admission.start(tenant)
        if job.first_dispatch_at is None:
            job.first_dispatch_at = now
        # The degrade decision happens once, at first dispatch: a job
        # the policy sends to the sampling tier answers alone (cheaply)
        # instead of joining an exact batch.
        if not job.degrade_checked:
            job.degrade_checked = True
            job.degraded = self._should_degrade(job, self.saturation.level())
        members = [(tenant, job)]
        if (
            job.batch_key is not None
            and job.checkpoint is None
            and not job.degraded
            and self.batch_max > 1
        ):
            extras = self._drr.collect(
                lambda other: (
                    isinstance(other, _Job)
                    and other.batch_key == job.batch_key
                    and other.checkpoint is None
                ),
                self.batch_max - 1,
            )
            for extra_tenant, extra in extras:
                self.admission.start(extra_tenant)
                if extra.first_dispatch_at is None:
                    extra.first_dispatch_at = now
                members.append((extra_tenant, extra))
            if len(members) > 1:
                for _, member in members:
                    member.batched = True
                self._stats.batches += 1
                self._stats.batched_requests += len(members)
                if self._metrics is not None:
                    self._metrics.inc("serve.batch.dispatched")
                    self._metrics.inc("serve.batch.merged", len(members) - 1)
        if job.checkpoint is not None and self._metrics is not None:
            self._metrics.inc("serve.preempt.resumed")
        return _Unit(members=members, saturation=self.saturation.level())

    # -- outcome handling (event loop thread) ---------------------------------

    def _handle_outcome(self, unit: _Unit, outcome: _Outcome) -> None:
        tenant, job = unit.primary
        quantum_share = self.quantum_steps * max(1, len(unit.members))
        per_member = outcome.steps // len(unit.members) if unit.members else 0
        self._stats.steps += outcome.steps
        if self._metrics is not None and outcome.steps:
            self._metrics.observe("serve.quantum.steps", outcome.steps)

        # Step accounting: the dispatching tenant paid one quantum up
        # front; refund its unspent share (or charge the overspend of a
        # boosted quantum) and charge the collected batch members their
        # share directly.
        if per_member <= self.quantum_steps:
            self._drr.credit(tenant, self.quantum_steps - per_member)
        else:
            self._drr.charge(tenant, per_member - self.quantum_steps)
        for member_tenant, member in unit.members:
            self.admission.charge_steps(member_tenant, per_member)
            member.steps += per_member
            member.quanta += 1
            if self._draining:
                member.drain_quanta += 1
        for member_tenant, _ in unit.members[1:]:
            self._drr.charge(member_tenant, per_member)

        if outcome.kind == "done":
            values = (
                outcome.values
                if outcome.values is not None
                else [outcome.value] * len(unit.members)
            )
            for (member_tenant, member), value in zip(unit.members, values):
                self._resolve(
                    member_tenant,
                    member,
                    value=value,
                    approximate=outcome.approximate,
                    status="ok",
                )
            return
        if outcome.kind == "error":
            for member_tenant, member in unit.members:
                self.admission.release(member_tenant)
                self._jobs.discard(member)
                self._stats.errors += 1
                if self._metrics is not None:
                    self._metrics.inc("serve.errors")
                if not member.future.done():
                    member.future.set_exception(outcome.error)
            return

        # Suspended: keep the checkpoint in memory and re-queue — unless
        # a bounded drain says hand the work back instead.
        self._stats.suspended += 1
        if self._metrics is not None:
            self._metrics.inc("serve.preempt.suspended")
        # Escalation: some work is atomic at checkpoint granularity (a
        # single huge memo entry), so a quantum that recorded no durable
        # progress doubles this job's next budget — the suspend/resume
        # loop always terminates.
        progress = _progress_signature(outcome.checkpoint)
        if progress is not None and progress[1:] == (
            (job.last_progress or (None,))[1:]
        ):
            job.boost = min(job.boost * 2, 1 << 20)
            if self._metrics is not None:
                self._metrics.inc("serve.preempt.boosted")
        job.last_progress = progress
        out_of_grace = (
            self._draining
            and self._drain_grace is not None
            and job.drain_quanta > self._drain_grace
        )
        if out_of_grace:
            for member_tenant, member in unit.members:
                member.checkpoint = outcome.checkpoint
                self._stats.drain_suspended += 1
                self._resolve(
                    member_tenant,
                    member,
                    value=None,
                    approximate=False,
                    status="suspended",
                    checkpoint=outcome.checkpoint,
                )
            return
        if unit.is_batch:
            unit.checkpoint = outcome.checkpoint
            for member_tenant, member in unit.members:
                member.checkpoint = outcome.checkpoint
                self.admission.requeue(member_tenant)
            self._drr.push_front(tenant, unit)
        else:
            job.checkpoint = outcome.checkpoint
            self.admission.requeue(tenant)
            self._drr.push_front(tenant, job)
        self._stats.resumes += 1

    def _resolve(
        self,
        tenant: str,
        job: _Job,
        *,
        value: Any,
        approximate: bool,
        status: str,
        checkpoint: "Optional[Checkpoint]" = None,
    ) -> None:
        self.admission.release(tenant)
        self._jobs.discard(job)
        now = time.monotonic()
        latency = now - job.admitted_at
        queue_wait = (
            (job.first_dispatch_at or now) - job.admitted_at
        )
        resumes = max(0, job.quanta - 1) if not job.degraded else 0
        response = QueryResponse(
            request_id=job.request.request_id,
            tenant=tenant,
            operation=job.request.operation,
            value=value,
            status=status,
            approximate=approximate,
            quanta=job.quanta,
            resumes=resumes,
            steps=job.steps,
            batched=job.batched,
            latency_s=latency,
            queue_wait_s=queue_wait,
            checkpoint=checkpoint,
        )
        if status == "ok":
            self._stats.completed += 1
            self._stats.latencies.append(latency)
            if approximate:
                self._stats.degraded += 1
        if self._metrics is not None:
            self._metrics.inc("serve.completed")
            self._metrics.observe("serve.latency_s", latency)
            self._metrics.observe("serve.queue_wait_s", queue_wait)
            if approximate:
                self._metrics.inc("serve.degraded")
            if status == "suspended":
                self._metrics.inc("serve.drain.suspended")
        if not job.future.done():
            job.future.set_result(response)

    # -- the quantum (executor thread) ----------------------------------------

    def _run_unit(self, unit: _Unit) -> _Outcome:
        # Thread hygiene first: this pool thread is reused across quanta
        # and across service sessions — never trust (or leak) a
        # thread-local metrics override (see docs/OBSERVABILITY.md).
        reset_thread_metrics()
        if self._metrics is not None:
            set_thread_metrics(self._metrics)
        try:
            if unit.is_batch:
                return self._run_batch_quantum(unit)
            return self._run_single_quantum(unit)
        finally:
            reset_thread_metrics()

    def _quantum_budget(
        self, members: int = 1, boost: int = 1
    ) -> EvaluationBudget:
        return EvaluationBudget(
            deadline=self.quantum_seconds,
            max_steps=self.quantum_steps * members * boost,
            preemptible=True,
        )

    def _engine(self, budget: EvaluationBudget) -> RobustEvaluator:
        return RobustEvaluator(
            predicates=self.predicates,
            budget=budget,
            check_fragment=self.check_fragment,
            plan_cache=self.plan_cache,
            workers=self.eval_workers,
            route="cascade",
        )

    def _run_single_quantum(self, unit: _Unit) -> _Outcome:
        tenant, job = unit.primary
        request = job.request
        if job.degraded:
            outcome = self._run_degraded(job)
            if outcome is not None:
                return outcome
            job.degraded = False  # sampler blew its budget: go exact
        budget = self._quantum_budget(boost=job.boost)
        session = (
            CheckpointSession(resume=job.checkpoint)
            if job.checkpoint is not None
            else CheckpointSession(
                operation=request.operation, query_key=job.key
            )
        )
        engine = self._engine(budget)
        try:
            with checkpoint_session(session):
                try:
                    value = self._execute(engine, job)
                except SuspendedError as error:
                    ckpt = error.checkpoint
                    if ckpt is None:
                        ckpt = session.snapshot(budget.steps)
                    return _Outcome(
                        kind="suspended",
                        checkpoint=ckpt,
                        steps=budget.steps,
                    )
            return _Outcome(kind="done", value=value, steps=budget.steps)
        except ReproError as error:
            return _Outcome(kind="error", error=error, steps=budget.steps)

    def _run_batch_quantum(self, unit: _Unit) -> _Outcome:
        jobs = [job for _, job in unit.members]
        first = jobs[0]
        structures = [job.request.structure for job in jobs]
        variables = list(first.request.variables)
        formula = first.expression
        budget = self._quantum_budget(len(jobs), boost=first.boost)
        session = (
            CheckpointSession(resume=unit.checkpoint)
            if unit.checkpoint is not None
            else CheckpointSession(
                operation="count_many", query_key=first.key
            )
        )
        engine = self._engine(budget)
        try:
            with checkpoint_session(session):
                try:
                    values = engine.count_many(structures, formula, variables)
                except SuspendedError as error:
                    ckpt = error.checkpoint
                    if ckpt is None:
                        ckpt = session.snapshot(budget.steps)
                    return _Outcome(
                        kind="suspended",
                        checkpoint=ckpt,
                        steps=budget.steps,
                    )
            return _Outcome(
                kind="done", values=list(values), steps=budget.steps
            )
        except ReproError as error:
            return _Outcome(kind="error", error=error, steps=budget.steps)

    @staticmethod
    def _execute(engine: RobustEvaluator, job: _Job):
        request = job.request
        if request.operation == "check":
            return engine.model_check(request.structure, job.expression)
        if request.operation == "count":
            return engine.count(
                request.structure, job.expression, list(request.variables)
            )
        if request.operation == "term":
            return engine.ground_term_value(request.structure, job.expression)
        return engine.unary_term_values(
            request.structure, job.expression, request.variable
        )

    # -- degradation ----------------------------------------------------------

    def _should_degrade(self, job: _Job, saturation: float) -> bool:
        if not job.request.count_only or job.checkpoint is not None:
            return False
        if (
            self.degrade_saturation is not None
            and saturation >= self.degrade_saturation
        ):
            return True
        if self.degrade_cost_threshold is not None:
            predicted = self._predicted_cost(job)
            if (
                predicted is not None
                and predicted >= self.degrade_cost_threshold
            ):
                return True
        return False

    def _predicted_cost(self, job: _Job) -> "Optional[float]":
        """Predicted exact (foc1) cost from the *warm* plan, else None.

        Prediction must not pay compile time on the scheduling path, so
        it consults :meth:`PlanCache.peek` — a cold plan simply doesn't
        trigger cost-based degradation (its first execution warms the
        cache for the next request).
        """
        request = job.request
        if request.operation == "count":
            kind, variables = "count", tuple(request.variables)
        else:
            kind, variables = "ground_term", ()
        canon = canonicalise(job.expression)
        cache_key = (
            kind,
            (canon,),
            variables,
            request.structure.signature,
            PlanOptions(),
        )
        plan = self.plan_cache.peek(cache_key)
        if plan is None:
            return None
        model = CostModel(structure_stats(request.structure))
        try:
            return model.foc1_cost(plan).estimate()
        except Exception:  # noqa: BLE001 — prediction is advisory only
            return None

    def _run_degraded(self, job: _Job) -> "Optional[_Outcome]":
        request = job.request
        budget = EvaluationBudget(
            deadline=self.quantum_seconds,
            max_steps=self.quantum_steps * self.degrade_budget_factor,
            preemptible=False,
        )
        sampler = ApproxEvaluator(
            predicates=self.predicates,
            budget=budget,
            epsilon=self.epsilon,
            delta=self.delta,
            seed=request.seed,
            workers=1,
        )
        try:
            if request.operation == "count":
                result = sampler.count(
                    request.structure, job.expression, list(request.variables)
                )
            else:
                result = sampler.ground_term_value(
                    request.structure, job.expression
                )
        except BudgetExceededError:
            # Too expensive even to sample: run exact quanta instead.
            # Visible as a counter because a degrade budget that always
            # blows makes the policy silently useless.
            if self._metrics is not None:
                self._metrics.inc("serve.degrade.fallback")
            return None
        except ReproError as error:
            return _Outcome(kind="error", error=error, steps=budget.steps)
        return _Outcome(
            kind="done",
            value=result.value,
            approximate=True,
            steps=budget.steps,
            detail=result.summary(),
        )

    # -- introspection --------------------------------------------------------

    def orphaned_checkpoints(self) -> int:
        """In-memory checkpoints not yet handed back to a client.

        Non-zero only while requests are in flight; a drained service
        reports 0 — the drain contract.
        """
        return sum(
            1
            for job in self._jobs
            if job.checkpoint is not None and not job.future.done()
        )

    def stats(self) -> Dict[str, Any]:
        latencies = sorted(self._stats.latencies)

        def percentile(q: float) -> "Optional[float]":
            if not latencies:
                return None
            index = min(
                len(latencies) - 1, int(round(q * (len(latencies) - 1)))
            )
            return latencies[index]

        return {
            "admission": self.admission.snapshot(),
            "saturation": self.saturation.level(),
            "completed": self._stats.completed,
            "suspended_quanta": self._stats.suspended,
            "resumes": self._stats.resumes,
            "degraded": self._stats.degraded,
            "batches": self._stats.batches,
            "batched_requests": self._stats.batched_requests,
            "errors": self._stats.errors,
            "drain_suspended": self._stats.drain_suspended,
            "steps": self._stats.steps,
            "latency_p50_s": percentile(0.50),
            "latency_p99_s": percentile(0.99),
            "pending": len(self._drr),
            "orphaned_checkpoints": self.orphaned_checkpoints(),
            "plan_cache": self.plan_cache.stats(),
        }
