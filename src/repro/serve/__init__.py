"""Multi-tenant preemptible query serving (see ``docs/SERVING.md``).

The package turns the single-query engines into a long-lived service:
:class:`QueryService` admits per-tenant request streams through a
bounded :class:`AdmissionController` (typed load shedding via
:class:`~repro.errors.AdmissionError`), schedules admitted work with
step-metered :class:`DeficitRoundRobin` fair sharing, runs every query
in preemptible budget quanta that checkpoint instead of dying, batches
compatible counts through ``count_many``, and — when configured —
degrades count-only answers to the sampling tier (always flagged
``approximate=True``) rather than shedding tenants.
"""

from ..errors import AdmissionError
from .admission import AdmissionController, TenantQuota
from .request import OPERATIONS, QueryRequest, QueryResponse
from .scheduler import DeficitRoundRobin
from .service import QueryService

__all__ = [
    "OPERATIONS",
    "AdmissionController",
    "AdmissionError",
    "DeficitRoundRobin",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "TenantQuota",
]
