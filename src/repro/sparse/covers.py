"""Neighbourhood covers (Sections 7 and 8.1, Theorem 8.1).

An r-neighbourhood cover assigns to every element ``a`` a connected cluster
``X(a)`` containing the whole ball ``N_r(a)``.  The paper's algorithm needs
covers that are simultaneously

* *shallow*: every cluster has radius at most 2r, and
* *sparse*: no element lies in more than ~n^delta clusters (max degree).

Theorem 8.1 guarantees such (r, 2r)-covers exist and are computable in
almost linear time on nowhere dense classes.  We implement the classic
centre-based construction: greedily pick an r-scattered set of centres (an
r-dominating, pairwise->r-separated set), give each centre the cluster
``N_2r(centre)``, and map each element to the cluster of a centre within
distance r.  On sparse graphs a packing argument keeps the degree low; on
cliques the construction degrades — exactly the contrast experiment E5
measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..obs import active_metrics, traced
from ..robust.budget import EvaluationBudget
from ..robust.faults import fault_check
from ..structures.columnar import bitset_of
from ..structures.gaifman import ball, induced, radius_of_set
from ..structures.structure import Element, Structure


class CoverError(ReproError):
    """The cover construction or validation failed."""


@dataclass(frozen=True)
class NeighbourhoodCover:
    """An r-neighbourhood cover X of a structure.

    ``clusters[i]`` is the i-th cluster's vertex set; ``assignment[a]`` is
    the index of the cluster ``X(a)``; ``centres[i]`` is a designated
    2r-centre of cluster i (``cen`` in Section 8.1).
    """

    structure: Structure
    radius: int
    clusters: Tuple[FrozenSet[Element], ...]
    assignment: Dict[Element, int]
    centres: Tuple[Element, ...]

    def cluster_of(self, element: Element) -> FrozenSet[Element]:
        """``X(a)``."""
        return self.clusters[self.assignment[element]]

    def cluster_index_of(self, element: Element) -> int:
        return self.assignment[element]

    @cached_property
    def _members_by_cluster(self) -> Dict[int, Tuple[Element, ...]]:
        # Grouped once, lazily.  The previous per-call universe scan made
        # members_with_cluster O(|A|) *per cluster*, which on degenerate
        # covers (one singleton cluster per element: r = 0, isolated
        # vertices, dense graphs) turned every caller that loops over all
        # clusters quadratic.
        grouped: Dict[int, List[Element]] = {}
        for element in self.structure.universe_order:
            grouped.setdefault(self.assignment[element], []).append(element)
        return {index: tuple(members) for index, members in grouped.items()}

    def members_with_cluster(self, index: int) -> Tuple[Element, ...]:
        """All ``a`` with ``X(a)`` = cluster ``index`` (the Q-sets of 8.2)."""
        return self._members_by_cluster.get(index, ())

    @cached_property
    def _cluster_bitsets(self) -> Tuple[int, ...]:
        # Each cluster as an int bitset over the structure's interned ids:
        # the s-covering test ``N_s(a-bar) ⊆ X`` becomes ``needed & ~X == 0``,
        # a few machine words per cluster instead of a frozenset-subset walk.
        # Built once, lazily — the per-tuple cover checks of cover_eval hit
        # this for every counted tuple.
        kernel = self.structure.columnar()
        id_of = kernel.interner._ids
        n = kernel.n
        return tuple(
            bitset_of((id_of[element] for element in cluster), n)
            for cluster in self.clusters
        )

    def _needed_bitset(self, elements: Sequence[Element], s: int) -> int:
        if s < 0:
            raise ValueError("radius must be non-negative")
        kernel = self.structure.columnar()
        interner = kernel.interner
        return kernel.ball_bitset(interner.ids(elements), s)

    def covers_tuple(self, index: int, elements: Sequence[Element], s: int) -> bool:
        """Whether cluster ``index`` s-covers the tuple: ``N_s(a-bar) ⊆ X``."""
        return self._needed_bitset(elements, s) & ~self._cluster_bitsets[index] == 0

    def clusters_s_covering(self, elements: Sequence[Element], s: int) -> List[int]:
        """Indices of all clusters that s-cover the tuple."""
        needed = self._needed_bitset(elements, s)
        return [
            index
            for index, cluster in enumerate(self._cluster_bitsets)
            if needed & ~cluster == 0
        ]

    # -- pickling ---------------------------------------------------------------

    def __getstate__(self):
        """Ship only the defining fields — the lazily built member groups
        and cluster bitsets rebuild on the receiving side, keeping
        process-backend payloads compact."""
        return (
            self.structure,
            self.radius,
            self.clusters,
            self.assignment,
            self.centres,
        )

    def __setstate__(self, state) -> None:
        structure, radius, clusters, assignment, centres = state
        object.__setattr__(self, "structure", structure)
        object.__setattr__(self, "radius", radius)
        object.__setattr__(self, "clusters", clusters)
        object.__setattr__(self, "assignment", assignment)
        object.__setattr__(self, "centres", centres)

    # -- statistics -------------------------------------------------------------

    def degree_of(self, element: Element) -> int:
        """Number of clusters containing ``element``."""
        return sum(1 for cluster in self.clusters if element in cluster)

    def max_degree(self) -> int:
        counts: Dict[Element, int] = {a: 0 for a in self.structure.universe_order}
        for cluster in self.clusters:
            for element in cluster:
                counts[element] += 1
        return max(counts.values(), default=0)

    def average_degree(self) -> float:
        order = self.structure.order()
        if order == 0:
            # The empty structure has an (empty) cover with no memberships;
            # its average degree is 0, not a ZeroDivisionError.
            return 0.0
        total = sum(len(cluster) for cluster in self.clusters)
        return total / order

    def max_cluster_radius(self) -> float:
        return max(
            (radius_of_set(self.structure, cluster) for cluster in self.clusters),
            default=0,
        )

    def verify(self, check_radius: "Optional[int]" = None) -> None:
        """Validate the cover property; raises :class:`CoverError` on failure.

        Checks: every element is assigned, ``N_r(a) ⊆ X(a)`` for all a, every
        cluster is connected, and (optionally) cluster radii <= check_radius.
        """
        for element in self.structure.universe_order:
            if element not in self.assignment:
                raise CoverError(f"element {element!r} has no cluster")
            cluster = self.cluster_of(element)
            needed = ball(self.structure, [element], self.radius)
            if not needed <= cluster:
                raise CoverError(
                    f"N_{self.radius}({element!r}) is not inside its cluster"
                )
        for index, cluster in enumerate(self.clusters):
            sub = induced(self.structure, cluster)
            from ..structures.gaifman import is_connected

            if not is_connected(sub):
                raise CoverError(f"cluster {index} is not connected")
        if check_radius is not None:
            worst = self.max_cluster_radius()
            if worst > check_radius:
                raise CoverError(
                    f"cluster radius {worst} exceeds the bound {check_radius}"
                )


@traced("cover.trivial")
def trivial_cover(structure: Structure, radius: int) -> NeighbourhoodCover:
    """The cover ``X(a) = N_r(a)`` — always valid, radius <= r, but with
    max degree up to |A| (the ablation baseline for E5)."""
    if radius < 0:
        raise CoverError("radius must be non-negative")
    clusters: List[FrozenSet[Element]] = []
    assignment: Dict[Element, int] = {}
    centres: List[Element] = []
    seen: Dict[FrozenSet[Element], int] = {}
    for element in structure.universe_order:
        cluster = ball(structure, [element], radius)
        index = seen.get(cluster)
        if index is None:
            index = len(clusters)
            seen[cluster] = index
            clusters.append(cluster)
            centres.append(element)
        assignment[element] = index
    _record_cover_metrics(clusters)
    return NeighbourhoodCover(
        structure, radius, tuple(clusters), assignment, tuple(centres)
    )


def _record_cover_metrics(clusters: Sequence[FrozenSet[Element]]) -> None:
    metrics = active_metrics()
    if metrics is None:
        return
    metrics.inc("cover.built")
    metrics.inc("cover.clusters", len(clusters))
    for cluster in clusters:
        metrics.observe("cover.cluster_size", len(cluster))


@traced("cover.sparse")
def sparse_cover(
    structure: Structure,
    radius: int,
    budget: "Optional[EvaluationBudget]" = None,
) -> NeighbourhoodCover:
    """The centre-based (r, 2r)-neighbourhood cover.

    1. Greedily pick centres: scan elements in universe order, keep an
       element as a centre iff it is at distance > r from every centre so
       far.  The resulting centre set is r-dominating and r-scattered.
    2. Cluster of centre c: ``N_2r(c)`` (connected, radius <= 2r).
    3. ``X(a)``: the cluster of the *closest* centre (<= r away), so
       ``N_r(a) ⊆ N_2r(c)``.

    On graphs from a nowhere dense class the r-scattering of the centres
    bounds how many clusters meet any single vertex (Theorem 8.1's n^delta);
    the construction itself is correct on *every* graph.
    """
    fault_check("cover.construct")
    if radius < 0:
        raise CoverError("radius must be non-negative")
    if radius == 0:
        # Each element's 0-ball is itself; one singleton cluster per element.
        return trivial_cover(structure, 0)

    # Id-space construction: universe order *is* id order, so scanning ids
    # 0..n-1 reproduces the original greedy scan element for element; the
    # closest-centre map becomes two flat arrays (-1 = not yet dominated).
    kernel = structure.columnar()
    elements = kernel.interner.elements
    n = kernel.n
    best_dist = [-1] * n
    centre_of = [-1] * n
    centre_ids: List[int] = []
    for eid in range(n):
        if budget is not None:
            budget.tick("cover.scan")
        if 0 <= best_dist[eid] <= radius:
            continue
        centre_index = len(centre_ids)
        centre_ids.append(eid)
        ids, dists = kernel.distances((eid,), radius)
        for covered, dist in zip(ids, dists):
            current = best_dist[covered]
            if current == -1 or dist < current:
                best_dist[covered] = dist
                centre_of[covered] = centre_index

    clusters = tuple(
        frozenset(elements[i] for i in kernel.ball_ids((centre,), 2 * radius))
        for centre in centre_ids
    )
    assignment = {elements[i]: centre_of[i] for i in range(n)}
    centres = tuple(elements[centre] for centre in centre_ids)
    _record_cover_metrics(clusters)
    return NeighbourhoodCover(structure, radius, clusters, assignment, centres)


def cover_statistics(cover: NeighbourhoodCover) -> Dict[str, float]:
    """Summary used by benchmark E5 and the EXPERIMENTS.md tables."""
    return {
        "clusters": len(cover.clusters),
        "max_degree": cover.max_degree(),
        "average_degree": cover.average_degree(),
        "max_cluster_radius": cover.max_cluster_radius(),
        "largest_cluster": max((len(c) for c in cover.clusters), default=0),
    }
