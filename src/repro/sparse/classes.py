"""Generators for structure families used as stand-ins for the paper's
abstract "nowhere dense classes" (and for dense control classes).

The paper's Main Theorem quantifies over effectively nowhere dense classes;
its hardness side (and the known lower bounds it cites) says the machinery
must *fail* on somewhere-dense classes.  The scaling benchmarks therefore
sweep over the canonical sparse families below and compare against dense
controls.

Every generator is deterministic given ``(parameters, seed)``; randomness
comes from :class:`random.Random` seeded explicitly, never the global RNG.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from ..errors import UniverseError
from ..structures.builders import (
    complete_graph,
    coloured_graph_structure,
    cycle_graph,
    graph_structure,
    grid_graph,
    path_graph,
)
from ..structures.structure import Structure


def random_tree(n: int, seed: int = 0) -> Structure:
    """A uniform random recursive tree on vertices 1..n (nowhere dense:
    trees have tree-width 1)."""
    if n < 1:
        raise UniverseError("tree needs at least one vertex")
    rng = random.Random(seed)
    edges = [(rng.randint(1, i - 1), i) for i in range(2, n + 1)]
    return graph_structure(range(1, n + 1), edges)


def bounded_degree_graph(n: int, max_degree: int = 3, seed: int = 0) -> Structure:
    """A random graph with a hard degree cap (bounded-degree class — the
    Kuske–Schweikardt regime, experiment E8).

    Edges are sampled uniformly and rejected when either endpoint is full;
    the result has max degree <= ``max_degree``.
    """
    if n < 1:
        raise UniverseError("graph needs at least one vertex")
    if max_degree < 0:
        raise UniverseError("degree bound must be non-negative")
    rng = random.Random(seed)
    degree = {v: 0 for v in range(1, n + 1)}
    edges: List[Tuple[int, int]] = []
    present = set()
    attempts = 4 * n * max(1, max_degree)
    for _ in range(attempts):
        u = rng.randint(1, n)
        v = rng.randint(1, n)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in present:
            continue
        if degree[u] >= max_degree or degree[v] >= max_degree:
            continue
        present.add(key)
        degree[u] += 1
        degree[v] += 1
        edges.append(key)
    return graph_structure(range(1, n + 1), edges)


def sparse_random_graph(n: int, average_degree: float = 2.0, seed: int = 0) -> Structure:
    """Erdos–Renyi G(n, m) with m = average_degree * n / 2 edges.

    For constant average degree these graphs have bounded expansion
    asymptotically almost surely, hence serve as a sparse family.
    """
    if n < 1:
        raise UniverseError("graph needs at least one vertex")
    rng = random.Random(seed)
    target = int(average_degree * n / 2)
    present = set()
    while len(present) < target and len(present) < n * (n - 1) // 2:
        u = rng.randint(1, n)
        v = rng.randint(1, n)
        if u != v:
            present.add((min(u, v), max(u, v)))
    return graph_structure(range(1, n + 1), sorted(present))


def dense_random_graph(n: int, probability: float = 0.5, seed: int = 0) -> Structure:
    """Erdos–Renyi G(n, p) with constant p — a somewhere-dense control."""
    if n < 1:
        raise UniverseError("graph needs at least one vertex")
    if not 0 <= probability <= 1:
        raise UniverseError("probability must lie in [0, 1]")
    rng = random.Random(seed)
    edges = [
        (u, v)
        for u in range(1, n + 1)
        for v in range(u + 1, n + 1)
        if rng.random() < probability
    ]
    return graph_structure(range(1, n + 1), edges)


def triangulated_grid(rows: int, cols: int) -> Structure:
    """A grid with one diagonal per cell — still planar, higher edge density."""
    base = grid_graph(rows, cols)
    extra = [
        ((r, c), (r + 1, c + 1))
        for r in range(rows - 1)
        for c in range(cols - 1)
    ]
    edges = {tuple(t) for t in base.relation("E")} | {
        (u, v) for u, v in extra
    } | {(v, u) for u, v in extra}
    return graph_structure(base.universe_order, edges, symmetric=False)


def caterpillar(spine: int, legs_per_vertex: int = 2, seed: int = 0) -> Structure:
    """A caterpillar tree: a path with pendant leaves (bounded tree-depth-ish,
    unbounded degree when legs grow)."""
    if spine < 1:
        raise UniverseError("caterpillar needs a spine")
    rng = random.Random(seed)
    vertices: List[Tuple[str, int, int]] = []
    edges = []
    for i in range(spine):
        vertices.append(("s", i, 0))
        if i > 0:
            edges.append((("s", i - 1, 0), ("s", i, 0)))
        legs = rng.randint(0, legs_per_vertex * 2) if seed else legs_per_vertex
        for leg in range(legs):
            vertices.append(("l", i, leg))
            edges.append((("s", i, 0), ("l", i, leg)))
    return graph_structure(vertices, edges)


def long_subdivided_clique(k: int, subdivision: int) -> Structure:
    """K_k with every edge subdivided ``subdivision`` times.

    For fixed k and growing subdivision these are nowhere dense (they are
    even planar for k <= 4); with subdivision ~ log n they witness classes
    that are nowhere dense but have unbounded expansion.
    """
    if k < 2:
        raise UniverseError("need k >= 2")
    vertices: List[object] = list(range(1, k + 1))
    edges = []
    for i in range(1, k + 1):
        for j in range(i + 1, k + 1):
            previous: object = i
            for step in range(subdivision):
                middle = ("sub", i, j, step)
                vertices.append(middle)
                edges.append((previous, middle))
                previous = middle
            edges.append((previous, j))
    return graph_structure(vertices, edges)


def coloured_digraph(
    n: int,
    average_out_degree: float = 2.0,
    red_fraction: float = 0.2,
    blue_fraction: float = 0.3,
    green_fraction: float = 0.3,
    seed: int = 0,
) -> Structure:
    """A random coloured digraph over Example 5.4's signature {E, R, B, G}."""
    if n < 1:
        raise UniverseError("graph needs at least one vertex")
    rng = random.Random(seed)
    target = int(average_out_degree * n)
    edges = set()
    while len(edges) < target and len(edges) < n * (n - 1):
        u = rng.randint(1, n)
        v = rng.randint(1, n)
        if u != v:
            edges.add((u, v))
    red = [v for v in range(1, n + 1) if rng.random() < red_fraction]
    blue = [v for v in range(1, n + 1) if rng.random() < blue_fraction]
    green = [v for v in range(1, n + 1) if rng.random() < green_fraction]
    return coloured_graph_structure(range(1, n + 1), sorted(edges), red, blue, green)


def nearly_square_grid(n: int) -> Structure:
    """A grid with ~n vertices, as square as possible (for size sweeps)."""
    rows = max(1, int(n**0.5))
    cols = max(1, (n + rows - 1) // rows)
    return grid_graph(rows, cols)


#: Sparse families for scaling sweeps: name -> generator(n, seed).
SPARSE_FAMILIES: Dict[str, Callable[[int, int], Structure]] = {
    "path": lambda n, seed: path_graph(max(1, n)),
    "cycle": lambda n, seed: cycle_graph(max(3, n)),
    "random_tree": random_tree,
    "grid": lambda n, seed: nearly_square_grid(n),
    "bounded_degree_3": lambda n, seed: bounded_degree_graph(n, 3, seed),
    "sparse_gnm": lambda n, seed: sparse_random_graph(n, 2.0, seed),
}

#: Dense controls: classes on which locality-based evaluation must degrade.
DENSE_FAMILIES: Dict[str, Callable[[int, int], Structure]] = {
    "clique": lambda n, seed: complete_graph(max(1, n)),
    "dense_gnp": lambda n, seed: dense_random_graph(n, 0.5, seed),
}
