"""The (rho, r)-splitter game of Section 8.

A class is nowhere dense iff for every radius r there is a bound lambda(r)
such that Splitter wins the (lambda(r), r)-game on every member.  The game
engine here plays Connector against Splitter on the Gaifman graph of a
structure and reports how many rounds Splitter needed — the empirical
quantity benchmark E6 sweeps: bounded on sparse families, ~n on cliques.

Both players are pluggable strategies.  The shipped Splitter strategies are
sound (always legal) and the engine verifies every move, so a buggy strategy
raises instead of corrupting measurements.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from ..errors import ReproError
from ..structures.structure import Element, Structure

Adjacency = Dict[Element, FrozenSet[Element]]

#: A strategy gets (adjacency of current graph, its vertex set, extra info)
#: and returns a vertex.  Connector picks any vertex; Splitter picks inside
#: the ball handed to it.
ConnectorStrategy = Callable[[Adjacency, Tuple[Element, ...]], Element]
SplitterStrategy = Callable[[Adjacency, Tuple[Element, ...], Element, FrozenSet[Element]], Element]


class SplitterGameError(ReproError):
    """A strategy made an illegal move."""


def _subgraph(adjacency: Adjacency, vertices: Set[Element]) -> Adjacency:
    return {
        v: frozenset(w for w in adjacency[v] if w in vertices)
        for v in adjacency
        if v in vertices
    }


def _ball(adjacency: Adjacency, centre: Element, radius: int) -> FrozenSet[Element]:
    seen = {centre}
    frontier = deque([(centre, 0)])
    while frontier:
        node, dist = frontier.popleft()
        if dist >= radius:
            continue
        for neighbour in adjacency[node]:
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append((neighbour, dist + 1))
    return frozenset(seen)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


def connector_max_ball(radius: int) -> ConnectorStrategy:
    """Adversarial Connector: picks the vertex with the largest r-ball,
    i.e. keeps the game alive as long as possible against naive Splitters."""

    def strategy(adjacency: Adjacency, vertices: Tuple[Element, ...]) -> Element:
        best = None
        best_size = -1
        for vertex in vertices:
            size = len(_ball(adjacency, vertex, radius))
            if size > best_size:
                best = vertex
                best_size = size
        assert best is not None
        return best

    return strategy


def connector_first() -> ConnectorStrategy:
    """Deterministic cheap Connector: the first vertex in order."""

    def strategy(adjacency: Adjacency, vertices: Tuple[Element, ...]) -> Element:
        return vertices[0]

    return strategy


def splitter_take_connector() -> SplitterStrategy:
    """Splitter removes Connector's own vertex — the simplest sound strategy
    (wins on trees and more, in possibly many rounds)."""

    def strategy(
        adjacency: Adjacency,
        vertices: Tuple[Element, ...],
        connector_vertex: Element,
        ball_vertices: FrozenSet[Element],
    ) -> Element:
        return connector_vertex

    return strategy


def splitter_ball_centre() -> SplitterStrategy:
    """Splitter removes a most-central vertex of the ball: the vertex of the
    ball minimising its eccentricity *within the induced ball subgraph*.

    Intuition: central vertices separate the ball into smaller pieces,
    mirroring the inductive strategy in [13]'s nowhere-dense proof.
    """

    def strategy(
        adjacency: Adjacency,
        vertices: Tuple[Element, ...],
        connector_vertex: Element,
        ball_vertices: FrozenSet[Element],
    ) -> Element:
        ball_adjacency = _subgraph(adjacency, set(ball_vertices))
        best = connector_vertex
        best_score = None
        for candidate in sorted(ball_vertices, key=repr):
            # eccentricity of candidate within the ball subgraph
            seen = {candidate: 0}
            frontier = deque([candidate])
            while frontier:
                node = frontier.popleft()
                for neighbour in ball_adjacency[node]:
                    if neighbour not in seen:
                        seen[neighbour] = seen[node] + 1
                        frontier.append(neighbour)
            reached = len(seen)
            eccentricity = max(seen.values()) if seen else 0
            # Prefer reaching everything (connected view), then low eccentricity,
            # then high degree (a separator heuristic).
            score = (-reached, eccentricity, -len(ball_adjacency[candidate]))
            if best_score is None or score < best_score:
                best_score = score
                best = candidate
        return best

    return strategy


def splitter_max_degree() -> SplitterStrategy:
    """Splitter removes the highest-degree vertex of the ball (hub removal)."""

    def strategy(
        adjacency: Adjacency,
        vertices: Tuple[Element, ...],
        connector_vertex: Element,
        ball_vertices: FrozenSet[Element],
    ) -> Element:
        ball_adjacency = _subgraph(adjacency, set(ball_vertices))
        return max(
            sorted(ball_vertices, key=repr),
            key=lambda v: len(ball_adjacency[v]),
        )

    return strategy


# ---------------------------------------------------------------------------
# Game engine
# ---------------------------------------------------------------------------


@dataclass
class SplitterGameResult:
    """Outcome of one play of the (rounds_limit, radius)-splitter game."""

    radius: int
    rounds_played: int
    splitter_won: bool
    history: List[Tuple[Element, Element]] = field(default_factory=list)
    #: Size of the game graph at the start of each round (diagnostics).
    graph_sizes: List[int] = field(default_factory=list)


def play_splitter_game(
    structure: Structure,
    radius: int,
    rounds_limit: int,
    splitter: "Optional[SplitterStrategy]" = None,
    connector: "Optional[ConnectorStrategy]" = None,
) -> SplitterGameResult:
    """Play the (rounds_limit, radius)-splitter game on the Gaifman graph.

    Returns after Splitter wins (the ball minus her pick is empty) or after
    ``rounds_limit`` rounds (Connector wins).  Every move is validated.
    """
    if radius < 0:
        raise SplitterGameError("radius must be non-negative")
    if rounds_limit < 1:
        raise SplitterGameError("the game needs at least one round")
    splitter = splitter or splitter_ball_centre()
    connector = connector or connector_max_ball(radius)

    adjacency: Adjacency = dict(structure.adjacency())
    vertices: Tuple[Element, ...] = tuple(structure.universe_order)
    result = SplitterGameResult(radius=radius, rounds_played=0, splitter_won=False)

    for _ in range(rounds_limit):
        result.graph_sizes.append(len(vertices))
        connector_vertex = connector(adjacency, vertices)
        if connector_vertex not in set(vertices):
            raise SplitterGameError("Connector picked a vertex outside the game graph")
        ball_vertices = _ball(adjacency, connector_vertex, radius)
        splitter_vertex = splitter(adjacency, vertices, connector_vertex, ball_vertices)
        if splitter_vertex not in ball_vertices:
            raise SplitterGameError("Splitter must pick inside Connector's ball")
        result.history.append((connector_vertex, splitter_vertex))
        result.rounds_played += 1
        remaining = set(ball_vertices) - {splitter_vertex}
        if not remaining:
            result.splitter_won = True
            return result
        adjacency = _subgraph(adjacency, remaining)
        vertices = tuple(v for v in vertices if v in remaining)
    return result


def rounds_needed(
    structure: Structure,
    radius: int,
    rounds_cap: "Optional[int]" = None,
    splitter: "Optional[SplitterStrategy]" = None,
    connector: "Optional[ConnectorStrategy]" = None,
) -> int:
    """Rounds our Splitter strategy needs to win; ``rounds_cap`` (default
    |A| + 1, which always suffices for the take-connector strategy on finite
    graphs where balls shrink) bounds the play."""
    cap = rounds_cap if rounds_cap is not None else structure.order() + 1
    result = play_splitter_game(structure, radius, cap, splitter, connector)
    if not result.splitter_won:
        return cap
    return result.rounds_played
