"""Nowhere-dense substrate: graph families, splitter games, and
neighbourhood covers (Section 8 of the paper)."""

from .classes import (
    DENSE_FAMILIES,
    SPARSE_FAMILIES,
    bounded_degree_graph,
    caterpillar,
    coloured_digraph,
    dense_random_graph,
    long_subdivided_clique,
    nearly_square_grid,
    random_tree,
    sparse_random_graph,
    triangulated_grid,
)
from .splitter import (
    SplitterGameError,
    SplitterGameResult,
    connector_first,
    connector_max_ball,
    play_splitter_game,
    rounds_needed,
    splitter_ball_centre,
    splitter_max_degree,
    splitter_take_connector,
)
from .covers import (
    CoverError,
    NeighbourhoodCover,
    cover_statistics,
    sparse_cover,
    trivial_cover,
)
from .measures import ball_growth, degeneracy, degree_statistics, sparsity_report

__all__ = [name for name in dir() if not name.startswith("_")]
