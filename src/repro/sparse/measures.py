"""Sparsity measures used to characterise the generated families.

Nowhere denseness itself is an asymptotic property of a *class*; for a single
finite structure we report proxies that the sparsity literature associates
with it: degeneracy, average degree, and ball-growth profiles.  The
experiment harness uses these to label workloads (and to sanity-check that
the "sparse" generators really are sparse and the controls are not).
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional, Sequence

from ..structures.gaifman import distances_from
from ..structures.structure import Element, Structure


def degree_statistics(structure: Structure) -> Dict[str, float]:
    """Min/avg/max Gaifman degree."""
    adjacency = structure.adjacency()
    degrees = [len(adjacency[a]) for a in structure.universe_order]
    return {
        "min_degree": min(degrees),
        "avg_degree": sum(degrees) / len(degrees),
        "max_degree": max(degrees),
    }


def degeneracy(structure: Structure) -> int:
    """Graph degeneracy via min-degree peeling (linear-time bucket queue).

    Degeneracy d means every subgraph has a vertex of degree <= d; classes of
    bounded degeneracy contain all the sparse families we generate, and
    degeneracy ~n/2 flags the dense controls.
    """
    adjacency = {a: set(ns) for a, ns in structure.adjacency().items()}
    degrees = {a: len(ns) for a, ns in adjacency.items()}
    max_degree = max(degrees.values(), default=0)
    buckets: List[set] = [set() for _ in range(max_degree + 1)]
    for vertex, degree in degrees.items():
        buckets[degree].add(vertex)
    removed = set()
    result = 0
    for _ in range(len(degrees)):
        for degree in range(max_degree + 1):
            if buckets[degree]:
                vertex = buckets[degree].pop()
                break
        else:
            break
        result = max(result, degrees[vertex])
        removed.add(vertex)
        for neighbour in adjacency[vertex]:
            if neighbour in removed:
                continue
            old = degrees[neighbour]
            buckets[old].discard(neighbour)
            degrees[neighbour] = old - 1
            buckets[old - 1].add(neighbour)
    return result


def ball_growth(
    structure: Structure,
    radius: int,
    sample: "Optional[Sequence[Element]]" = None,
) -> Dict[int, float]:
    """Average ball size |N_i(a)| for i = 0..radius over a vertex sample.

    Near-linear growth (paths/trees/grids) vs immediate saturation (cliques)
    is the clearest single picture of why locality-based evaluation wins on
    sparse inputs.
    """
    vertices = list(sample) if sample is not None else list(structure.universe_order)
    sizes: Dict[int, List[int]] = {i: [] for i in range(radius + 1)}
    for vertex in vertices:
        reach = distances_from(structure, [vertex], radius)
        for i in range(radius + 1):
            sizes[i].append(sum(1 for d in reach.values() if d <= i))
    return {i: statistics.fmean(values) for i, values in sizes.items()}


def sparsity_report(structure: Structure, radius: int = 3) -> Dict[str, object]:
    """One-stop report used when labelling benchmark workloads."""
    report: Dict[str, object] = {
        "order": structure.order(),
        "size": structure.size(),
        "degeneracy": degeneracy(structure),
    }
    report.update(degree_statistics(structure))
    sample = list(structure.universe_order)[: min(30, structure.order())]
    growth = ball_growth(structure, radius, sample)
    report["ball_growth"] = growth
    report["ball_saturation"] = growth[radius] / structure.order()
    return report
