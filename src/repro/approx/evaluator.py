"""The sampling-based approximate counting engine.

Exact FOC(P) counting is AW[*]-hard already on trees (Section 4 of the
paper), and the dense control families sit outside every tractability
guarantee this repository implements.  :class:`ApproxEvaluator` is the
escape hatch: draw uniform assignments from the ``n^k`` candidate space,
check each one against the literal Definition 3.1 semantics
(:func:`repro.logic.semantics.satisfies`), and scale the hit fraction —
the classical Monte-Carlo estimator behind sampling-based first-order
counting (Dreier & Rossmanith, arXiv:2010.14814), with sample sizes
planned by :mod:`repro.approx.planner`.

Determinism contract
--------------------
Every draw comes from an explicit ``random.Random`` instance seeded with
the string ``"approx:{seed}:{block}"`` — never the global RNG.  String
seeding hashes through SHA-512, so the stream is identical across
processes and platforms (the same trick :mod:`repro.robust.faults`
uses).  Sampling is organised in fixed-size blocks, each with its own
seeded RNG; block hit counts are folded in block order, so the estimate
is byte-identical whether the blocks ran serially, on threads, or on
process workers, at any worker count.

The hot loop ticks the shared :class:`~repro.robust.budget.EvaluationBudget`
once per sample (site ``approx.sample``) and per-sample satisfaction
checks tick it further, so a sampling run is exactly as preemptible and
killable as any exact stage; ``approx.*`` counters and a trace span make
the run observable.
"""

from __future__ import annotations

import random
import time
from typing import List, Optional, Sequence, Tuple

from ..cost.model import CardBound, CardinalityEstimator
from ..cost.stats import structure_stats
from ..errors import ReproError
from ..logic.predicates import PredicateCollection, standard_collection
from ..logic.semantics import satisfies
from ..logic.syntax import CountTerm, Formula, Term, Variable, free_variables
from ..obs import active_metrics, span
from ..parallel import resolve_workers
from ..robust.budget import EvaluationBudget
from ..structures.structure import Structure
from .planner import DEFAULT_MAX_SAMPLES, DEFAULT_MIN_DENSITY, SamplePlan, plan_samples
from .result import ApproxResult

__all__ = ["ApproxEvaluator", "sample_blocks"]

#: Samples per deterministic block.  Small enough that parallel shards
#: balance, large enough that the per-block RNG setup amortises.
BLOCK_SIZE = 512

#: Pilot pre-sample: a fixed-size seeded draw whose observed hit rate
#: refines the planner's density floor.  The conservative ``min_density``
#: floor sizes plans for near-worst-case sparsity; on the dense inputs
#: this tier exists for, the true density is high and the pilot shrinks
#: the main plan by an order of magnitude — deterministically, since the
#: pilot stream is just another seeded namespace.
_PILOT_SIZE = 512

#: Only refine when the floor-based plan is this much bigger than the
#: pilot itself (otherwise just run it) and the floor is heuristic.
_PILOT_TRIGGER = 4 * _PILOT_SIZE

#: Shrink the pilot's density estimate before trusting it as a floor —
#: guards against the pilot overestimating and under-sizing the run.
_PILOT_SAFETY = 0.8


def _block_rng(namespace: str, seed: int, block: int) -> random.Random:
    """The one place block RNGs are built: explicit, string-seeded
    (SHA-512 based, stable across processes), never the global RNG."""
    return random.Random(f"{namespace}:{seed}:{block}")


def sample_blocks(
    structure: Structure,
    formula: Formula,
    variables: Sequence[Variable],
    predicates: "Optional[PredicateCollection]",
    seed: int,
    blocks: Sequence[Tuple[int, int]],
    budget: "Optional[EvaluationBudget]" = None,
    namespace: str = "approx",
) -> List[Tuple[int, int, int]]:
    """Run ``blocks`` (pairs of ``(block_index, sample_count)``) and
    return ``(block_index, hits, samples)`` triples.

    Module-level and picklable-argument so the process backend can run
    it in child workers; the serial and thread paths use the same code.
    """
    collection = predicates if predicates is not None else standard_collection()
    universe = structure.universe_order
    n = len(universe)
    names = list(variables)
    registry = active_metrics()
    results: List[Tuple[int, int, int]] = []
    for block, count in blocks:
        rng = _block_rng(namespace, seed, block)
        hits = 0
        for _ in range(count):
            if budget is not None:
                budget.tick("approx.sample")
            assignment = {
                name: universe[rng.randrange(n)] for name in names
            }
            if satisfies(structure, formula, assignment, collection, budget):
                hits += 1
        results.append((block, hits, count))
        if registry is not None:
            registry.inc("approx.samples", count)
            registry.inc("approx.hits", hits)
    return results


class ApproxEvaluator:
    """Seeded ``(1 +- epsilon, delta)`` approximate counting.

    Parameters
    ----------
    predicates:
        Numerical predicate collection for the per-sample checks.
    budget:
        Shared :class:`EvaluationBudget`; the sampling loop ticks it per
        sample, so runs are bounded and preemptible like exact stages.
    epsilon / delta:
        The relative accuracy target and failure probability the sample
        size is planned for (see :mod:`repro.approx.planner` for what is
        provable and what leans on the density floor).
    seed:
        Reproducibility seed.  Identical ``(query, structure, seed,
        epsilon, delta)`` inputs yield byte-identical results at any
        worker count and backend.
    min_density / max_samples / method:
        Forwarded to :func:`~repro.approx.planner.plan_samples`.
    workers / parallel_backend:
        Sampling fans blocks out across a
        :class:`~repro.parallel.WorkerPool` when ``workers > 1``
        (``"thread"`` or ``"process"``); the block fold keeps the
        answer independent of the layout.
    """

    def __init__(
        self,
        predicates: "Optional[PredicateCollection]" = None,
        budget: "Optional[EvaluationBudget]" = None,
        epsilon: float = 0.1,
        delta: float = 0.05,
        seed: int = 0,
        min_density: float = DEFAULT_MIN_DENSITY,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        method: str = "hoeffding",
        workers: "Optional[int]" = None,
        parallel_backend: str = "thread",
    ):
        # The standard collection holds closures and cannot pickle;
        # remembering "caller gave us nothing" lets the process backend
        # ship None and rebuild it child-side instead.
        self._default_predicates = predicates is None
        self.predicates = (
            predicates if predicates is not None else standard_collection()
        )
        self.budget = budget
        self.epsilon = epsilon
        self.delta = delta
        self.seed = seed
        self.min_density = min_density
        self.max_samples = max_samples
        self.method = method
        self.workers = resolve_workers(workers)
        self.parallel_backend = parallel_backend

    # -- engine API ------------------------------------------------------------

    def count(
        self,
        structure: Structure,
        formula: Formula,
        variables: Sequence[Variable],
        budget: "Optional[EvaluationBudget]" = None,
    ) -> ApproxResult:
        """Estimate ``|phi(A)|`` over assignments of ``variables``."""
        names = list(variables)
        if not names:
            raise ReproError("approximate counting needs at least one variable")
        if len(set(names)) != len(names):
            raise ReproError(f"counted variables must be distinct, got {names}")
        missing = free_variables(formula) - set(names)
        if missing:
            raise ReproError(
                f"variables {sorted(missing)} are free but not counted"
            )
        use_budget = budget if budget is not None else self.budget
        started = time.monotonic()
        plan, bound = self._plan(structure, formula, names)
        registry = active_metrics()
        if registry is not None:
            registry.inc("approx.count")
        with span("approx.count"):
            plan = self._refine_with_pilot(
                structure, formula, names, plan, bound, use_budget, registry
            )
            if registry is not None:
                registry.inc("approx.samples_planned", plan.samples)
            per_block = self._block_layout(plan)
            outcomes = self._run_blocks(
                structure, formula, names, per_block, use_budget
            )
        return self._fold(plan, outcomes, started)

    def ground_term_value(
        self,
        structure: Structure,
        term: Term,
        budget: "Optional[EvaluationBudget]" = None,
    ) -> ApproxResult:
        """Estimate a ground counting term ``#(x-bar). phi``."""
        if not isinstance(term, CountTerm):
            raise ReproError(
                "the approximate tier evaluates counting terms only "
                f"(got {type(term).__name__})"
            )
        if free_variables(term):
            raise ReproError(
                "the approximate tier evaluates ground terms only; "
                f"free variables: {sorted(free_variables(term))}"
            )
        return self.count(structure, term.inner, term.variables, budget=budget)

    # -- machinery -------------------------------------------------------------

    def _plan(
        self,
        structure: Structure,
        formula: Formula,
        names: List[Variable],
    ) -> Tuple[SamplePlan, "Optional[CardBound]"]:
        n = structure.order()
        space = float(n) ** len(names)
        bound: "Optional[CardBound]" = None
        try:
            estimator = CardinalityEstimator(structure_stats(structure))
            bound = estimator.count_bound(tuple(names), formula)
        except Exception:
            # The estimator is advisory; a formula it cannot price just
            # loses the provable floor, never the run.
            bound = None
        plan = plan_samples(
            space,
            self.epsilon,
            self.delta,
            bound=bound,
            min_density=self.min_density,
            max_samples=self.max_samples,
            method=self.method,
        )
        return plan, bound

    def _refine_with_pilot(
        self,
        structure: Structure,
        formula: Formula,
        names: List[Variable],
        plan: SamplePlan,
        bound: "Optional[CardBound]",
        budget: "Optional[EvaluationBudget]",
        registry,
    ) -> SamplePlan:
        """Refine a heuristic-floor plan with a small seeded pre-sample.

        When the floor is provable the plan is already as tight as the
        proof allows; otherwise a ``_PILOT_SIZE`` draw from its own seed
        namespace estimates the true density, and a floor of
        ``_PILOT_SAFETY`` times that estimate replans the run — the step
        that makes the dense inputs this tier targets affordable.  A
        zero-hit pilot proves nothing and keeps the conservative plan.
        Everything here is a pure function of ``(seed, inputs)``, so
        determinism survives.
        """
        if plan.provable or plan.samples <= _PILOT_TRIGGER:
            return plan
        pilot = sample_blocks(
            structure, formula, names, self.predicates, self.seed,
            [(0, _PILOT_SIZE)], budget, namespace="approx-pilot",
        )
        _, pilot_hits, pilot_count = pilot[0]
        if registry is not None:
            registry.inc("approx.pilot_samples", pilot_count)
        if not pilot_hits:
            return plan
        refined_floor = max(
            plan.floor,
            _PILOT_SAFETY * (pilot_hits / pilot_count) * plan.space,
        )
        return plan_samples(
            plan.space,
            self.epsilon,
            self.delta,
            bound=bound,
            min_density=min(1.0, refined_floor / plan.space),
            max_samples=self.max_samples,
            method=self.method,
        )

    def _block_layout(self, plan: SamplePlan) -> List[Tuple[int, int]]:
        """``(block_index, sample_count)`` pairs covering ``plan.samples``.

        Median-of-means aligns sampling blocks with the estimator's
        blocks (one RNG stream per median block); Hoeffding uses fixed
        ``BLOCK_SIZE`` chunks.
        """
        if plan.method == "median_of_means":
            per_block = plan.samples // plan.blocks
            return [(i, per_block) for i in range(plan.blocks)]
        layout: List[Tuple[int, int]] = []
        remaining = plan.samples
        block = 0
        while remaining > 0:
            size = min(BLOCK_SIZE, remaining)
            layout.append((block, size))
            remaining -= size
            block += 1
        return layout

    def _run_blocks(
        self,
        structure: Structure,
        formula: Formula,
        names: List[Variable],
        per_block: List[Tuple[int, int]],
        budget: "Optional[EvaluationBudget]",
    ) -> List[Tuple[int, int, int]]:
        if self.workers > 1 and len(per_block) > 1:
            from ..parallel.pool import WorkerPool
            from ..parallel.tasks import run_approx_shards

            pool = WorkerPool(self.workers, backend=self.parallel_backend)
            predicates = None if self._default_predicates else self.predicates
            return run_approx_shards(
                pool,
                structure,
                formula,
                names,
                predicates,
                self.seed,
                per_block,
                budget,
            )
        return sample_blocks(
            structure, formula, names, self.predicates, self.seed,
            per_block, budget,
        )

    def _fold(
        self,
        plan: SamplePlan,
        outcomes: List[Tuple[int, int, int]],
        started: float,
    ) -> ApproxResult:
        # Fold in block order: the estimate must not depend on which
        # worker finished first.
        import math

        ordered = sorted(outcomes)
        hits = sum(h for _, h, _ in ordered)
        samples = sum(c for _, _, c in ordered)
        if plan.method == "median_of_means":
            block_means = sorted(h / c for _, h, c in ordered if c)
            mid = len(block_means) // 2
            if len(block_means) % 2:
                density = block_means[mid]
            else:
                density = (block_means[mid - 1] + block_means[mid]) / 2.0
        else:
            density = hits / samples if samples else 0.0
        estimate = density * plan.space
        # Post-hoc Hoeffding interval from the samples actually drawn —
        # no density assumption, honest even on truncated plans.
        half = (
            plan.space
            * math.sqrt(math.log(2.0 / plan.delta) / (2.0 * samples))
            if samples
            else plan.space
        )
        ci_low = max(0.0, estimate - half)
        ci_high = min(plan.space, estimate + half)
        registry = active_metrics()
        elapsed = time.monotonic() - started
        if registry is not None:
            registry.observe("approx.elapsed_s", elapsed)
            registry.observe("approx.ci_width", ci_high - ci_low)
        return ApproxResult(
            estimate=estimate,
            value=int(round(estimate)),
            ci_low=ci_low,
            ci_high=ci_high,
            epsilon=plan.epsilon,
            delta=plan.delta,
            seed=self.seed,
            samples=samples,
            hits=hits,
            space=plan.space,
            method=plan.method,
            truncated=plan.truncated,
            provable=plan.provable,
            elapsed=elapsed,
        )
