"""Sampling-based approximate counting with ``(1 +- epsilon, delta)`` guarantees.

The escape hatch for inputs where every exact engine blows up (dense
graphs, Section 4 hardness): a seeded Monte-Carlo estimator over the
assignment space, planned by Hoeffding / median-of-means bounds and
returning an :class:`ApproxResult` that is explicitly marked
approximate.  See ``docs/ENGINES.md`` for the tier's contract.
"""

from .evaluator import ApproxEvaluator, sample_blocks
from .planner import DEFAULT_MAX_SAMPLES, DEFAULT_MIN_DENSITY, SamplePlan, plan_samples
from .result import ApproxResult

__all__ = [
    "ApproxEvaluator",
    "ApproxResult",
    "DEFAULT_MAX_SAMPLES",
    "DEFAULT_MIN_DENSITY",
    "SamplePlan",
    "plan_samples",
    "sample_blocks",
]
