"""The value type of the approximate tier: an estimate that says so.

Every exact engine in this repository returns plain integers; the
sampler returns an :class:`ApproxResult` instead, so an approximate
answer can never be silently mistaken for an exact one.  The result
carries the point estimate, a post-hoc Hoeffding confidence interval
(computed from the samples actually drawn, with no density assumption —
honest even when the plan's relative target leaned on a heuristic
floor), the ``(epsilon, delta)`` the run was planned for, and the full
reproducibility tuple: seed, samples, hits, method.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

__all__ = ["ApproxResult"]


@dataclass(frozen=True)
class ApproxResult:
    """One sampling-based count estimate with its uncertainty.

    ``estimate`` is ``space * hits / samples`` (Hoeffding method) or the
    median of the per-block estimates (median-of-means); ``value`` is
    the same number rounded to the nearest integer for callers that
    need a count-shaped answer.  ``ci_low``/``ci_high`` bound the true
    count with probability at least ``1 - delta`` given the samples
    actually drawn.  Identical ``(query, structure, seed, epsilon,
    delta)`` inputs yield byte-identical results.
    """

    estimate: float
    value: int
    ci_low: float
    ci_high: float
    epsilon: float
    delta: float
    seed: int
    samples: int
    hits: int
    space: float
    method: str
    truncated: bool
    provable: bool
    elapsed: float = 0.0

    def ci_width(self) -> float:
        return self.ci_high - self.ci_low

    def relative_error_vs(self, exact: int) -> float:
        """Observed relative error against a known exact count."""
        if exact == 0:
            return 0.0 if self.estimate == 0 else math.inf
        return abs(self.estimate - exact) / exact

    def summary(self) -> str:
        tail = " (truncated)" if self.truncated else ""
        return (
            f"~{self.estimate:.6g} in [{self.ci_low:.6g}, {self.ci_high:.6g}] "
            f"(eps={self.epsilon}, delta={self.delta}, seed={self.seed}, "
            f"{self.hits}/{self.samples} hits, {self.method}){tail}"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe view (for ``--report-json``); always marked approximate."""
        return {
            "schema": "repro-approx-result/1",
            "approximate": True,
            "estimate": self.estimate,
            "value": self.value,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "seed": self.seed,
            "samples": self.samples,
            "hits": self.hits,
            "space": self.space,
            "method": self.method,
            "truncated": self.truncated,
            "provable": self.provable,
            "elapsed": self.elapsed,
        }
