"""Sample-size planning for the approximate counting tier.

The sampler estimates ``|phi(A)|`` by drawing uniform assignments from
the space of ``n^k`` candidate tuples and checking each against the
Definition 3.1 semantics.  The fraction of hits ``p-hat`` estimates the
true density ``p = count / space``, and Hoeffding's inequality converts
a sample size into an *additive* guarantee on ``p-hat``:

    P(|p-hat - p| > eps_add) <= 2 exp(-2 m eps_add^2)
    =>  m >= ln(2 / delta) / (2 eps_add^2).

The user asks for a *relative* ``(1 +- epsilon)`` guarantee on the count
(Dreier & Rossmanith, arXiv:2010.14814).  Relative and additive targets
are linked through a lower bound on the count: with ``count >= floor``,
an additive error of ``epsilon * floor / space`` on ``p-hat`` implies a
relative error of at most ``epsilon`` on the estimate.  The floor comes
from the cost layer's :class:`~repro.cost.model.CardBound` when it
proves one (e.g. a single positive atom counts exactly the relation
cardinality), and otherwise from the heuristic density assumption
``count >= min_density * space`` — in which case the plan is honestly
marked non-provable and the post-hoc confidence interval on the result
(which never uses the floor) is the guarantee to trust.

The ``median_of_means`` method plans ``k = ceil(8 ln(1/delta))`` blocks
of ``ceil(1 / eps_add^2)`` samples each: a Bernoulli mean has variance
at most 1/4, so Chebyshev bounds each block's failure probability by
1/4 and the median over ``k`` blocks fails with probability at most
``delta``.  For bounded (0/1) samples Hoeffding needs fewer draws; the
alternative exists for heavy-tailed extensions and as a cross-check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import ReproError

__all__ = ["SamplePlan", "plan_samples", "DEFAULT_MAX_SAMPLES", "DEFAULT_MIN_DENSITY"]

#: Hard ceiling on planned samples; plans that want more are truncated
#: (and say so) rather than silently run forever.
DEFAULT_MAX_SAMPLES = 500_000

#: Heuristic density floor used when no provable lower bound exists.
DEFAULT_MIN_DENSITY = 0.05

#: Never plan fewer draws than this — tiny plans make the post-hoc
#: interval degenerate and cost nothing to round up.
_MIN_SAMPLES = 32


@dataclass(frozen=True)
class SamplePlan:
    """How many samples to draw, and what that promises.

    ``floor`` is the count lower bound the relative-to-additive
    conversion assumed; ``provable`` records whether that floor is a
    :class:`~repro.cost.model.CardBound` proof or the ``min_density``
    heuristic.  ``truncated`` plans hit ``max_samples`` and deliver a
    wider interval than requested.
    """

    samples: int
    epsilon: float
    delta: float
    space: float
    floor: float
    method: str
    blocks: int
    truncated: bool
    provable: bool

    def additive_epsilon(self) -> float:
        """The additive density target the sample count was sized for."""
        return self.epsilon * self.floor / self.space if self.space else 0.0


def plan_samples(
    space: float,
    epsilon: float,
    delta: float,
    bound=None,
    min_density: float = DEFAULT_MIN_DENSITY,
    max_samples: int = DEFAULT_MAX_SAMPLES,
    method: str = "hoeffding",
) -> SamplePlan:
    """Size a sampling run for a ``(1 +- epsilon, delta)`` count estimate.

    ``space`` is the assignment-space size ``n^k``; ``bound`` is an
    optional duck-typed cardinality bound (``.lower`` attribute, as on
    :class:`~repro.cost.model.CardBound`) whose positive lower end, when
    it beats the ``min_density`` floor, makes the plan provable.
    """
    if not 0.0 < epsilon:
        raise ReproError(f"epsilon must be positive, got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ReproError(f"delta must lie in (0, 1), got {delta}")
    if space < 1.0:
        raise ReproError(f"assignment space must be at least 1, got {space}")
    if not 0.0 < min_density <= 1.0:
        raise ReproError(f"min_density must lie in (0, 1], got {min_density}")
    if max_samples < _MIN_SAMPLES:
        raise ReproError(
            f"max_samples must be at least {_MIN_SAMPLES}, got {max_samples}"
        )
    if method not in ("hoeffding", "median_of_means"):
        raise ReproError(
            f"method must be 'hoeffding' or 'median_of_means', got {method!r}"
        )

    heuristic_floor = min_density * space
    provable_lower = 0.0
    if bound is not None:
        lower = getattr(bound, "lower", 0.0)
        if lower is not None and lower > 0:
            provable_lower = float(lower)
    floor = min(space, max(provable_lower, heuristic_floor, 1.0))
    provable = provable_lower >= floor

    eps_add = epsilon * floor / space
    if method == "median_of_means":
        blocks = max(1, math.ceil(8.0 * math.log(1.0 / delta)))
        per_block = max(1, math.ceil(1.0 / (eps_add * eps_add)))
        wanted = blocks * per_block
    else:
        blocks = 1
        wanted = math.ceil(math.log(2.0 / delta) / (2.0 * eps_add * eps_add))
    wanted = max(_MIN_SAMPLES, wanted)

    truncated = wanted > max_samples
    samples = min(wanted, max_samples)
    if method == "median_of_means":
        # Keep whole blocks so the median stays well-defined.
        per_block = max(1, samples // blocks)
        samples = per_block * blocks
    return SamplePlan(
        samples=samples,
        epsilon=epsilon,
        delta=delta,
        space=float(space),
        floor=floor,
        method=method,
        blocks=blocks,
        truncated=truncated,
        provable=provable,
    )
