"""Builders turning familiar combinatorial objects into sigma-structures.

The paper's running examples live on three kinds of structures:

* (directed) graphs over the signature {E/2} — Sections 3-8;
* coloured digraphs over {E/2, R/1, B/1, G/1} — Example 5.4;
* strings over {<=/2} ∪ {P_a/1 : a in Sigma} — Theorem 4.3;
* trees (as symmetric edge relations) — Theorem 4.1.

Everything here is deterministic given its arguments; random families live in
:mod:`repro.sparse.classes`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from ..errors import UniverseError
from .signature import GRAPH_SIGNATURE, Signature
from .structure import Element, Structure

#: Signature of Example 5.4: digraph with three colour predicates.
COLOURED_GRAPH_SIGNATURE = Signature.of(E=2, R=1, B=1, G=1)


def graph_structure(
    vertices: Iterable[Element],
    edges: Iterable[Tuple[Element, Element]],
    symmetric: bool = True,
) -> Structure:
    """A graph as an {E/2}-structure.

    With ``symmetric=True`` (the default) each edge is closed under reversal,
    modelling the undirected graphs of Sections 4 and 8; with ``False`` the
    edge list is taken as a directed relation (Examples 3.2 and 5.4).
    """
    edge_set: Set[Tuple[Element, Element]] = set()
    for u, v in edges:
        edge_set.add((u, v))
        if symmetric:
            edge_set.add((v, u))
    return Structure(GRAPH_SIGNATURE, vertices, {"E": edge_set})


def coloured_graph_structure(
    vertices: Iterable[Element],
    edges: Iterable[Tuple[Element, Element]],
    red: Iterable[Element] = (),
    blue: Iterable[Element] = (),
    green: Iterable[Element] = (),
) -> Structure:
    """A coloured digraph over Example 5.4's signature {E, R, B, G}."""
    return Structure(
        COLOURED_GRAPH_SIGNATURE,
        vertices,
        {
            "E": {(u, v) for u, v in edges},
            "R": {(a,) for a in red},
            "B": {(a,) for a in blue},
            "G": {(a,) for a in green},
        },
    )


def path_graph(n: int) -> Structure:
    """The undirected path on vertices 1..n."""
    if n < 1:
        raise UniverseError("path needs at least one vertex")
    return graph_structure(range(1, n + 1), [(i, i + 1) for i in range(1, n)])


def cycle_graph(n: int) -> Structure:
    """The undirected cycle on vertices 1..n (n >= 3)."""
    if n < 3:
        raise UniverseError("cycle needs at least three vertices")
    edges = [(i, i + 1) for i in range(1, n)] + [(n, 1)]
    return graph_structure(range(1, n + 1), edges)


def complete_graph(n: int) -> Structure:
    """The clique K_n — a canonical *non*-nowhere-dense control."""
    if n < 1:
        raise UniverseError("clique needs at least one vertex")
    vertices = range(1, n + 1)
    edges = [(i, j) for i in vertices for j in vertices if i < j]
    return graph_structure(vertices, edges)


def grid_graph(rows: int, cols: int) -> Structure:
    """The rows x cols grid — planar, hence nowhere dense."""
    if rows < 1 or cols < 1:
        raise UniverseError("grid dimensions must be positive")
    vertices = [(r, c) for r in range(rows) for c in range(cols)]
    edges = []
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                edges.append(((r, c), (r + 1, c)))
            if c + 1 < cols:
                edges.append(((r, c), (r, c + 1)))
    return graph_structure(vertices, edges)


def star_graph(leaves: int) -> Structure:
    """A star: centre 0 joined to leaves 1..leaves (unbounded degree, but a tree)."""
    if leaves < 0:
        raise UniverseError("leaf count must be non-negative")
    return graph_structure(
        range(0, leaves + 1), [(0, i) for i in range(1, leaves + 1)]
    )


def balanced_tree(branching: int, height: int) -> Structure:
    """The complete ``branching``-ary tree of the given height.

    Vertices are tuples encoding root-to-node paths; the root is ``()``.
    """
    if branching < 1 or height < 0:
        raise UniverseError("branching >= 1 and height >= 0 required")
    vertices: List[Tuple[int, ...]] = [()]
    edges: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
    frontier: List[Tuple[int, ...]] = [()]
    for _ in range(height):
        next_frontier = []
        for node in frontier:
            for child_index in range(branching):
                child = node + (child_index,)
                vertices.append(child)
                edges.append((node, child))
                next_frontier.append(child)
        frontier = next_frontier
    return graph_structure(vertices, edges)


def string_signature(alphabet: Iterable[str]) -> Signature:
    """The string signature {<=/2} ∪ {P_a/1 : a in alphabet} of Theorem 4.3.

    The order symbol is named ``leq`` so it parses as an identifier.
    """
    arities: Dict[str, int] = {"leq": 2}
    for symbol in alphabet:
        arities[f"P_{symbol}"] = 1
    return Signature.of(**arities)


def string_structure(word: Sequence[str], alphabet: "Iterable[str] | None" = None) -> Structure:
    """Encode a word as a structure: positions 1..n, ``leq`` a linear order,
    ``P_a`` the positions carrying the letter ``a``."""
    if not word:
        raise UniverseError("the empty word has an empty universe; not allowed")
    letters = sorted(set(alphabet) if alphabet is not None else set(word))
    missing = set(word) - set(letters)
    if missing:
        raise UniverseError(f"word uses letters outside the alphabet: {sorted(missing)}")
    n = len(word)
    signature = string_signature(letters)
    relations: Dict[str, Set[Tuple]] = {
        "leq": {(i, j) for i in range(1, n + 1) for j in range(i, n + 1)}
    }
    for letter in letters:
        relations[f"P_{letter}"] = {
            (i,) for i, current in enumerate(word, start=1) if current == letter
        }
    return Structure(signature, range(1, n + 1), relations)


def forest_structure(parents: Mapping[Element, Element]) -> Structure:
    """A forest given as a child -> parent map (roots are absent keys)."""
    vertices: Set[Element] = set(parents) | set(parents.values())
    edges = [(child, parent) for child, parent in parents.items()]
    if not vertices:
        raise UniverseError("forest must have at least one vertex")
    return graph_structure(sorted(vertices, key=repr), edges)
