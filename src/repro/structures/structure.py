"""Finite relational structures (Section 2 of the paper).

A sigma-structure ``A`` consists of a finite non-empty universe and one finite
relation per symbol of its signature.  Structures here are immutable after
construction; derived data (Gaifman adjacency, per-position indexes) is
computed lazily and cached, which is safe precisely because the relational
content never changes.

Universe elements may be arbitrary hashable Python objects.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Tuple

from ..errors import ArityError, SignatureError, UniverseError
from .signature import RelationSymbol, Signature

Element = Hashable
Tup = Tuple[Element, ...]


class Structure:
    """An immutable finite sigma-structure.

    Parameters
    ----------
    signature:
        The structure's signature.
    universe:
        A non-empty iterable of hashable elements.  Duplicates are collapsed;
        iteration order of the structure follows first occurrence, giving
        deterministic behaviour for evaluation and printing.
    relations:
        Mapping from relation *names* (or :class:`RelationSymbol`) to iterables
        of tuples.  Symbols of the signature that are missing from the mapping
        get the empty relation.  Every tuple must have the symbol's arity and
        all its entries must belong to the universe.

    Cache contract
    --------------
    Derived data — the Gaifman :meth:`adjacency` and the per-position
    :meth:`index` maps — is computed lazily and cached on the instance.
    This is sound because the relational content never changes through the
    public API.  "Updates" are expressed as *derivation*: :meth:`with_tuple`
    returns a **new** structure sharing the unchanged relations (and the
    still-valid caches) with its parent, so a query → update → query
    sequence always sees fresh derived data on the derived structure while
    the parent's caches stay valid for the parent.  Code that nevertheless
    reaches into the internals (test harnesses, surgical subclasses) must
    call :meth:`invalidate_caches` afterwards or the next :meth:`adjacency`
    / :meth:`index` read will serve stale answers.
    """

    __slots__ = (
        "_signature",
        "_universe_order",
        "_universe",
        "_relations",
        "_adjacency",
        "_indexes",
        "_size",
        "_stats",
        "_interner",
        "_columnar",
    )

    def __init__(
        self,
        signature: Signature,
        universe: Iterable[Element],
        relations: "Mapping[object, Iterable[Tup]] | None" = None,
    ):
        universe_order: List[Element] = []
        seen = set()
        for element in universe:
            if element not in seen:
                seen.add(element)
                universe_order.append(element)
        if not universe_order:
            raise UniverseError("a structure's universe must be non-empty")

        resolved: Dict[RelationSymbol, FrozenSet[Tup]] = {
            symbol: frozenset() for symbol in signature
        }
        if relations:
            for key, tuples in relations.items():
                symbol = self._resolve_symbol(signature, key)
                checked = []
                for tup in tuples:
                    tup = tuple(tup)
                    if len(tup) != symbol.arity:
                        raise ArityError(
                            f"tuple {tup!r} has length {len(tup)}, but "
                            f"{symbol.name} has arity {symbol.arity}"
                        )
                    for entry in tup:
                        if entry not in seen:
                            raise UniverseError(
                                f"tuple {tup!r} of {symbol.name} mentions "
                                f"{entry!r}, which is not in the universe"
                            )
                    checked.append(tup)
                resolved[symbol] = frozenset(checked)

        self._signature = signature
        self._universe_order = tuple(universe_order)
        self._universe = frozenset(universe_order)
        self._relations = resolved
        self._adjacency: "Dict[Element, FrozenSet[Element]] | None" = None
        self._indexes: Dict[Tuple[str, int], Dict[Element, Tuple[Tup, ...]]] = {}
        self._size = len(universe_order) + sum(len(rel) for rel in resolved.values())
        # Cached cost-model statistics (repro.cost.stats.StructureStats).
        # Opaque to this module: built and read through structure_stats(),
        # derived duck-typed in with_tuple(), dropped by invalidate_caches().
        self._stats: "object | None" = None
        # Interned-id layer (repro.structures.interning / .columnar), lazy.
        # The interner depends only on the universe and is therefore shared
        # with derived structures and kept across invalidate_caches(); the
        # columnar view depends on the relations and follows the same
        # lifecycle as adjacency/indexes/stats.
        self._interner: "object | None" = None
        self._columnar: "object | None" = None

    @staticmethod
    def _resolve_symbol(signature: Signature, key: object) -> RelationSymbol:
        if isinstance(key, RelationSymbol):
            if key not in signature:
                raise SignatureError(f"symbol {key!r} is not in the signature")
            return key
        if isinstance(key, str):
            return signature[key]
        raise SignatureError(f"cannot resolve relation key {key!r}")

    # -- basic accessors -------------------------------------------------------

    @property
    def signature(self) -> Signature:
        return self._signature

    @property
    def universe(self) -> FrozenSet[Element]:
        return self._universe

    @property
    def universe_order(self) -> Tuple[Element, ...]:
        """The universe in deterministic (insertion) order."""
        return self._universe_order

    def relation(self, key: object) -> FrozenSet[Tup]:
        """The interpretation of a relation symbol (by symbol or name)."""
        return self._relations[self._resolve_symbol(self._signature, key)]

    def relations(self) -> Mapping[RelationSymbol, FrozenSet[Tup]]:
        return dict(self._relations)

    def has_tuple(self, key: object, tup: Tup) -> bool:
        return tuple(tup) in self.relation(key)

    def order(self) -> int:
        """``|A|``: the number of universe elements."""
        return len(self._universe_order)

    def size(self) -> int:
        """``||A||`` = |A| + sum of relation cardinalities."""
        return self._size

    def __contains__(self, element: Element) -> bool:
        return element in self._universe

    def __len__(self) -> int:
        return len(self._universe_order)

    # -- derived data (lazy, cached) -------------------------------------------

    def adjacency(self) -> Dict[Element, FrozenSet[Element]]:
        """Gaifman-graph adjacency: ``a`` and ``b`` are adjacent iff distinct
        and co-occurring in some tuple of some relation."""
        if self._adjacency is None:
            neighbours: Dict[Element, set] = {a: set() for a in self._universe_order}
            for rel in self._relations.values():
                for tup in rel:
                    distinct = set(tup)
                    if len(distinct) < 2:
                        continue
                    for a in distinct:
                        for b in distinct:
                            if a != b:
                                neighbours[a].add(b)
            self._adjacency = {a: frozenset(ns) for a, ns in neighbours.items()}
        return self._adjacency

    def index(self, key: object, position: int) -> Dict[Element, Tuple[Tup, ...]]:
        """Per-position index: maps each value ``v`` to the tuples of the
        relation whose ``position``-th entry is ``v``.  Built lazily."""
        symbol = self._resolve_symbol(self._signature, key)
        if not 0 <= position < symbol.arity:
            raise ArityError(
                f"position {position} out of range for {symbol.name}/{symbol.arity}"
            )
        cache_key = (symbol.name, position)
        if cache_key not in self._indexes:
            built: Dict[Element, List[Tup]] = {}
            for tup in self._relations[symbol]:
                built.setdefault(tup[position], []).append(tup)
            self._indexes[cache_key] = {v: tuple(ts) for v, ts in built.items()}
        return self._indexes[cache_key]

    def interner(self):
        """The structure's :class:`~repro.structures.interning.ElementInterner`
        (lazy; shared with structures derived via :meth:`with_tuple`, since
        the universe — and hence the id space — is identical)."""
        if self._interner is None:
            from .interning import ElementInterner

            self._interner = ElementInterner(self._universe_order)
        return self._interner

    def columnar(self):
        """The structure's :class:`~repro.structures.columnar.
        ColumnarStructure` — the id-space view the kernel-backed evaluation
        paths run on.  Lazy, cached, dropped by :meth:`invalidate_caches`."""
        if self._columnar is None:
            from .columnar import ColumnarStructure

            self._columnar = ColumnarStructure(self)
        return self._columnar

    def invalidate_caches(self) -> None:
        """Drop all lazily derived data (adjacency, per-position indexes,
        cost-model statistics, the columnar view).

        The public API never needs this — structures are immutable and the
        caches are therefore always consistent.  It exists for code that
        mutates ``_relations`` in place (test fixtures, instrumentation):
        after any such mutation the caches are stale and *must* be dropped,
        or :meth:`adjacency` / :meth:`index` will answer for the old
        relational content.  The interner survives: in-place mutation can
        only touch ``_relations``, never the universe it is built from.
        """
        self._adjacency = None
        self._indexes.clear()
        self._stats = None
        self._columnar = None

    # -- derivation (copy-on-write updates) --------------------------------------

    def with_tuple(self, key: object, tup: Tup, present: bool = True) -> "Structure":
        """A structure that differs from this one by exactly one tuple.

        Validates only the delta (arity and universe membership of ``tup``)
        instead of revalidating every relation, and shares with the parent:

        * the universe, signature and size bookkeeping;
        * the per-position index caches of every *untouched* relation
          (the touched relation's indexes are dropped and rebuilt lazily);
        * the Gaifman adjacency, extended incrementally on insertion —
          a deletion resets it, since other tuples may still witness the
          affected edges.

        Returns ``self`` unchanged when the update is a no-op (inserting a
        present tuple / deleting an absent one).  The parent structure and
        its caches are never touched — this is the copy-on-write leg of the
        cache contract above.
        """
        symbol = self._resolve_symbol(self._signature, key)
        tup = tuple(tup)
        if len(tup) != symbol.arity:
            raise ArityError(
                f"tuple {tup!r} has length {len(tup)}, but "
                f"{symbol.name} has arity {symbol.arity}"
            )
        for entry in tup:
            if entry not in self._universe:
                raise UniverseError(
                    f"tuple {tup!r} of {symbol.name} mentions {entry!r}, "
                    "which is not in the universe"
                )
        current = self._relations[symbol]
        if (tup in current) == present:
            return self

        derived = Structure.__new__(Structure)
        derived._signature = self._signature
        derived._universe_order = self._universe_order
        derived._universe = self._universe
        relations = dict(self._relations)
        relations[symbol] = (
            current | {tup} if present else current - {tup}
        )
        derived._relations = relations
        derived._size = self._size + (1 if present else -1)
        # Index caches of untouched relations stay valid; the touched
        # relation's are rebuilt lazily on demand.
        derived._indexes = {
            cache_key: index
            for cache_key, index in self._indexes.items()
            if cache_key[0] != symbol.name
        }
        derived._adjacency = None
        if self._adjacency is not None:
            distinct = set(tup)
            if present:
                if len(distinct) < 2:
                    # No Gaifman edges in a (near-)singleton tuple: the
                    # parent's adjacency is the derived one, share it.
                    derived._adjacency = self._adjacency
                else:
                    adjacency = dict(self._adjacency)
                    for a in distinct:
                        adjacency[a] = adjacency[a] | (distinct - {a})
                    derived._adjacency = adjacency
            elif len(distinct) < 2:
                derived._adjacency = self._adjacency
        # Statistics follow the same copy-on-write discipline as the other
        # caches: the parent's stay untouched, the derived structure gets an
        # incrementally adjusted copy (duck-typed so this module stays free
        # of a repro.cost import).
        derived._stats = (
            self._stats.derive(symbol.name, present, derived)
            if self._stats is not None
            else None
        )
        # Same universe, same id space: the interner is shared, keeping ids
        # stable along derivation chains.  The columnar view follows the
        # adjacency policy above: extended incrementally on insertion,
        # reset (rebuilt lazily) on deletion.
        derived._interner = self._interner
        derived._columnar = (
            self._columnar.derive_insert(derived, symbol, tup)
            if present and self._columnar is not None
            else None
        )
        return derived

    # -- pickling ----------------------------------------------------------------

    def __getstate__(self):
        """Pickle only the defining data (signature, ordered universe,
        relations) — derived caches are rebuilt lazily on the receiving
        side.  This keeps process-backend payloads compact: adjacency,
        indexes and columnar arrays never cross the pipe."""
        return (self._signature, self._universe_order, self._relations)

    def __setstate__(self, state):
        signature, universe_order, relations = state
        self._signature = signature
        self._universe_order = universe_order
        self._universe = frozenset(universe_order)
        self._relations = relations
        self._adjacency = None
        self._indexes = {}
        self._size = len(universe_order) + sum(
            len(rel) for rel in relations.values()
        )
        self._stats = None
        self._interner = None
        self._columnar = None

    # -- equality is extensional -----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return (
            self._signature == other._signature
            and self._universe == other._universe
            and self._relations == other._relations
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._signature,
                self._universe,
                tuple(
                    sorted(
                        ((s.name, rel) for s, rel in self._relations.items()),
                        key=lambda pair: pair[0],
                    )
                ),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rels = ", ".join(
            f"{s.name}:{len(rel)}" for s, rel in sorted(self._relations.items(), key=lambda p: p[0].name)
        )
        return f"Structure(|A|={self.order()}, {rels})"
