"""Structure-level operations: expansions, reducts, disjoint unions,
relabelling, and isomorphism-invariant fingerprints (Section 2).

These are the algebraic operations the paper's constructions rely on:

* sigma'-expansions and sigma-reducts (used throughout Sections 5-8 whenever
  fresh unary/0-ary symbols are added);
* disjoint unions (Feferman-Vaught style reasoning in Lemma 6.4);
* the free-variable elimination of Section 5 adds singleton unary relations,
  provided here as :func:`pin_elements`.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Mapping, Tuple

from ..errors import SignatureError, UniverseError
from .signature import Signature
from .structure import Element, Structure, Tup


def expansion(
    structure: Structure,
    new_symbols: Signature,
    new_relations: Mapping[object, Iterable[Tup]],
) -> Structure:
    """The (sigma ∪ new_symbols)-expansion of ``structure``.

    ``new_relations`` interprets the fresh symbols; existing relations are
    kept unchanged.  Fresh symbols missing from ``new_relations`` get the
    empty relation.
    """
    extended = structure.signature.union(new_symbols)
    relations: Dict[object, Iterable[Tup]] = {
        symbol: rel for symbol, rel in structure.relations().items()
    }
    for key, tuples in new_relations.items():
        symbol = extended[key] if isinstance(key, str) else key
        if symbol in structure.signature:
            raise SignatureError(
                f"{symbol!r} is already interpreted; expansions may only add symbols"
            )
        relations[symbol] = tuples
    return Structure(extended, structure.universe_order, relations)


def reduct(structure: Structure, signature: Signature) -> Structure:
    """The sigma-reduct: forget all symbols outside ``signature``."""
    if not signature.is_subsignature_of(structure.signature):
        raise SignatureError("reduct target must be a sub-signature")
    relations = {
        symbol: structure.relation(symbol) for symbol in signature
    }
    return Structure(signature, structure.universe_order, relations)


def pin_elements(
    structure: Structure, assignments: Mapping[str, Element]
) -> Structure:
    """Section 5's free-variable elimination on the structure side.

    For each ``name -> a`` adds a fresh unary symbol ``name`` interpreted as
    the singleton ``{a}``.  The companion formula rewriting lives in
    :mod:`repro.core.query`.
    """
    fresh = Signature.of(**{name: 1 for name in assignments})
    interpretation = {
        name: [(element,)] for name, element in assignments.items()
    }
    for name, element in assignments.items():
        if element not in structure:
            raise UniverseError(f"pinned element {element!r} not in the universe")
    return expansion(structure, fresh, interpretation)


def disjoint_union(left: Structure, right: Structure) -> Structure:
    """The disjoint union of two structures over the same signature.

    Universe elements are tagged with 0/1 to force disjointness:
    the result's elements are ``(0, a)`` for ``a`` in ``left`` and ``(1, b)``
    for ``b`` in ``right``.
    """
    if left.signature != right.signature:
        raise SignatureError("disjoint union requires identical signatures")

    def tag(which: int, tup: Tup) -> Tup:
        return tuple((which, entry) for entry in tup)

    universe = [(0, a) for a in left.universe_order] + [
        (1, b) for b in right.universe_order
    ]
    relations = {}
    for symbol in left.signature:
        relations[symbol] = {tag(0, t) for t in left.relation(symbol)} | {
            tag(1, t) for t in right.relation(symbol)
        }
    return Structure(left.signature, universe, relations)


def relabel(structure: Structure, mapping: "Mapping[Element, Element] | Callable[[Element], Element]") -> Structure:
    """Rename universe elements through an injective mapping."""
    if callable(mapping) and not isinstance(mapping, Mapping):
        fn = mapping
    else:
        table = dict(mapping)
        fn = table.__getitem__
    new_universe = [fn(a) for a in structure.universe_order]
    if len(set(new_universe)) != len(new_universe):
        raise UniverseError("relabelling must be injective")
    relations = {
        symbol: {tuple(fn(entry) for entry in tup) for tup in rel}
        for symbol, rel in structure.relations().items()
    }
    return Structure(structure.signature, new_universe, relations)


def are_isomorphic(left: Structure, right: Structure, limit: int = 8) -> bool:
    """Exact isomorphism test by backtracking, for small structures only.

    Intended for tests; refuses structures with more than ``limit`` elements
    (the search is factorial).  Uses degree/relation profiles to prune.
    """
    if left.signature != right.signature:
        return False
    if left.order() != right.order():
        return False
    if left.order() > limit:
        raise ValueError(
            f"are_isomorphic is a test helper; order {left.order()} exceeds limit {limit}"
        )
    for symbol in left.signature:
        if len(left.relation(symbol)) != len(right.relation(symbol)):
            return False

    left_elems = list(left.universe_order)
    right_elems = list(right.universe_order)

    def profile(structure: Structure, element: Element) -> Tuple:
        parts = []
        for symbol in structure.signature:
            count = 0
            positions = []
            for tup in structure.relation(symbol):
                occurrences = tuple(i for i, entry in enumerate(tup) if entry == element)
                if occurrences:
                    count += 1
                    positions.append(occurrences)
            parts.append((count, tuple(sorted(positions))))
        return tuple(parts)

    left_profiles = {a: profile(left, a) for a in left_elems}
    right_profiles = {b: profile(right, b) for b in right_elems}
    if sorted(left_profiles.values()) != sorted(right_profiles.values()):
        return False

    def consistent(mapping: Dict[Element, Element]) -> bool:
        mapped = set(mapping)
        for symbol in left.signature:
            right_rel = right.relation(symbol)
            for tup in left.relation(symbol):
                if all(entry in mapped for entry in tup):
                    image = tuple(mapping[entry] for entry in tup)
                    if image not in right_rel:
                        return False
        return True

    def extend(index: int, mapping: Dict[Element, Element], used: set) -> bool:
        if index == len(left_elems):
            # Verify the inverse direction: mapping must be onto each relation.
            inverse = {b: a for a, b in mapping.items()}
            for symbol in left.signature:
                left_rel = left.relation(symbol)
                for tup in right.relation(symbol):
                    pre = tuple(inverse[entry] for entry in tup)
                    if pre not in left_rel:
                        return False
            return True
        a = left_elems[index]
        for b in right_elems:
            if b in used or right_profiles[b] != left_profiles[a]:
                continue
            mapping[a] = b
            used.add(b)
            if consistent(mapping) and extend(index + 1, mapping, used):
                return True
            del mapping[a]
            used.discard(b)
        return False

    return extend(0, {}, set())


def substructures_of(structure: Structure, max_order: int) -> Iterable[Structure]:
    """All induced substructures up to ``max_order`` elements (test helper)."""
    elems = list(structure.universe_order)
    for size in range(1, min(max_order, len(elems)) + 1):
        for subset in itertools.combinations(elems, size):
            from .gaifman import induced

            yield induced(structure, subset)
