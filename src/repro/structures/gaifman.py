"""Gaifman graphs, distances, balls and neighbourhoods (Section 2).

The Gaifman graph ``G_A`` of a structure ``A`` has the universe as vertices
and an edge between distinct ``a, b`` iff they co-occur in some tuple of some
relation.  All locality notions of the paper (r-balls ``N_r(a)``,
r-neighbourhood substructures, r-connectivity of tuples, the graphs
``G_{a-bar,r}``) are defined through it.

Two interchangeable backends implement the BFS primitives:

* the original dict-of-frozensets adjacency of
  :meth:`Structure.adjacency`, and
* the CSR int-array kernels of :class:`~repro.structures.columnar.
  ColumnarStructure` (:meth:`Structure.columnar`), which avoid per-node
  hashing and allocate nothing per visited element.

The choice is adaptive (:func:`_kernel_view`): when a structure already
carries an incrementally maintained dict adjacency but no columnar view —
the :meth:`Structure.with_tuple` update pattern, where rebuilding CSR
arrays per derived structure would forfeit the incremental sharing — the
dict backend is used; in every other case the kernels win.  Both compute
the same sets; only iteration order of returned dicts may differ (callers
relying on order use the sorted universe-order guarantees documented per
function).

Distances are returned as non-negative integers, with ``math.inf`` standing
for "no path" exactly as the paper's ``dist = infinity`` convention.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..errors import UniverseError
from .structure import Element, Structure


def _kernel_view(structure: Structure):
    """The columnar view when it is the cheaper backend, else ``None``.

    See the module docstring: ``None`` exactly when a dict adjacency is
    already cached but no columnar view has been built yet.
    """
    if structure._adjacency is not None and structure._columnar is None:
        return None
    return structure.columnar()


def _source_ids(interner, sources: Iterable[Element]) -> List[int]:
    id_of = interner._ids
    ids: List[int] = []
    for source in sources:
        i = id_of.get(source)
        if i is None:
            raise UniverseError(f"{source!r} is not a universe element")
        ids.append(i)
    return ids


def distance(structure: Structure, source: Element, target: Element) -> float:
    """``dist_A(a, b)``: length of a shortest Gaifman-graph path, or ``inf``."""
    if source not in structure or target not in structure:
        raise UniverseError("distance endpoints must be universe elements")
    if source == target:
        return 0
    kernel = _kernel_view(structure)
    if kernel is not None:
        id_of = kernel.interner._ids
        d = kernel.distance_between(id_of[source], id_of[target])
        return math.inf if d is None else d
    adjacency = structure.adjacency()
    seen = {source}
    frontier = deque([(source, 0)])
    while frontier:
        node, dist = frontier.popleft()
        for neighbour in adjacency[node]:
            if neighbour == target:
                return dist + 1
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append((neighbour, dist + 1))
    return math.inf


def distances_from(
    structure: Structure, sources: Iterable[Element], radius: "float | None" = None
) -> Dict[Element, int]:
    """Multi-source BFS distances from ``sources``.

    Returns a dict mapping each element within ``radius`` (all reachable
    elements when ``radius`` is ``None``) to its distance from the *closest*
    source — the paper's ``dist_A(a-bar, b) = min_i dist(a_i, b)``.  The
    dict iterates in BFS discovery order; callers must not rely on the
    order beyond "sources first, then by increasing distance".
    """
    kernel = _kernel_view(structure)
    if kernel is not None:
        ids, dists = kernel.distances(_source_ids(kernel.interner, sources), radius)
        elements = kernel.interner.elements
        return {elements[i]: d for i, d in zip(ids, dists)}
    adjacency = structure.adjacency()
    dist: Dict[Element, int] = {}
    frontier = deque()
    for source in sources:
        if source not in structure:
            raise UniverseError(f"{source!r} is not a universe element")
        if source not in dist:
            dist[source] = 0
            frontier.append(source)
    while frontier:
        node = frontier.popleft()
        d = dist[node]
        if radius is not None and d >= radius:
            continue
        for neighbour in adjacency[node]:
            if neighbour not in dist:
                dist[neighbour] = d + 1
                frontier.append(neighbour)
    return dist


def tuple_distance(structure: Structure, tup: Sequence[Element], target: Element) -> float:
    """``dist_A(a-bar, b) = min_i dist(a_i, b)``; ``inf`` when unreachable."""
    best = math.inf
    for entry in tup:
        d = distance(structure, entry, target)
        if d < best:
            best = d
            if best == 0:
                break
    return best


def ball(structure: Structure, centres: Iterable[Element], radius: int) -> FrozenSet[Element]:
    """``N_r(a-bar)``: the set of elements at distance <= radius from the tuple."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    kernel = _kernel_view(structure)
    if kernel is not None:
        interner = kernel.interner
        ids = kernel.ball_ids(_source_ids(interner, centres), radius)
        elements = interner.elements
        return frozenset(elements[i] for i in ids)
    return frozenset(distances_from(structure, centres, radius))


def neighbourhood(
    structure: Structure, centres: Iterable[Element], radius: int
) -> Structure:
    """The r-neighbourhood substructure ``A[N_r(a-bar)]``."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    kernel = _kernel_view(structure)
    if kernel is None:
        return induced(structure, ball(structure, centres, radius))
    interner = kernel.interner
    ids = kernel.ball_ids(_source_ids(interner, centres), radius)
    elements = interner.elements
    # ball_ids returns sorted ids, and sorted ids *are* universe order —
    # the ordered element list is direct, skipping induced()'s O(|A|)
    # universe scan per ball.
    ordered = [elements[i] for i in ids]
    return _induced_ordered(structure, ordered, set(ordered))


def induced(structure: Structure, elements: Iterable[Element]) -> Structure:
    """The induced substructure ``A[B]`` on a non-empty ``B`` (subset of A)."""
    chosen = set(elements)
    if not chosen:
        raise UniverseError("cannot induce a substructure on the empty set")
    for element in chosen:
        if element not in structure:
            raise UniverseError(f"{element!r} is not a universe element")
    ordered = [a for a in structure.universe_order if a in chosen]
    return _induced_ordered(structure, ordered, chosen)


def _induced_ordered(
    structure: Structure, ordered: List[Element], chosen: Set[Element]
) -> Structure:
    """``A[B]`` from a pre-validated, universe-ordered element list.

    For small ``B`` the relevant tuples are gathered through the structure's
    per-position indexes (cost proportional to the tuples touching ``B``)
    rather than by scanning whole relations — the difference between
    O(|B| * degree) and O(||A||) per extraction, which matters when callers
    carve thousands of neighbourhood balls out of one big structure.
    """
    small = len(chosen) * 4 < structure.order()
    relations = {}
    for symbol, rel in structure.relations().items():
        if symbol.arity == 0 or not small:
            relations[symbol] = {
                tup for tup in rel if all(entry in chosen for entry in tup)
            }
            continue
        index = structure.index(symbol, 0)
        gathered = set()
        for element in chosen:
            for tup in index.get(element, ()):
                if all(entry in chosen for entry in tup):
                    gathered.add(tup)
        relations[symbol] = gathered
    return Structure(structure.signature, ordered, relations)


def connected_components(structure: Structure) -> List[FrozenSet[Element]]:
    """Connected components of the Gaifman graph, in deterministic order."""
    kernel = _kernel_view(structure)
    if kernel is not None:
        elements = kernel.interner.elements
        seen = bytearray(kernel.n)
        components: List[FrozenSet[Element]] = []
        for start in range(kernel.n):
            if seen[start]:
                continue
            seen[start] = 1
            component = [start]
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbour in kernel.neighbours(node):
                    if not seen[neighbour]:
                        seen[neighbour] = 1
                        component.append(neighbour)
                        frontier.append(neighbour)
            components.append(frozenset(elements[i] for i in component))
        return components
    adjacency = structure.adjacency()
    seen_set: Set[Element] = set()
    components = []
    for start in structure.universe_order:
        if start in seen_set:
            continue
        component = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for neighbour in adjacency[node]:
                if neighbour not in component:
                    component.add(neighbour)
                    frontier.append(neighbour)
        seen_set |= component
        components.append(frozenset(component))
    return components


def is_connected(structure: Structure) -> bool:
    return len(connected_components(structure)) == 1


def connectivity_graph(
    structure: Structure, tup: Sequence[Element], radius: int
) -> FrozenSet[Tuple[int, int]]:
    """The graph ``G_{a-bar, r}`` of Section 7 as an edge set over 1-based
    positions: ``{i, j}`` is an edge iff ``i != j`` and ``dist(a_i, a_j) <= r``.

    Edges are returned as ordered pairs ``(i, j)`` with ``i < j``.
    """
    k = len(tup)
    edges = set()
    for i in range(k):
        reach = distances_from(structure, [tup[i]], radius)
        for j in range(i + 1, k):
            if tup[j] in reach:
                edges.add((i + 1, j + 1))
    return frozenset(edges)


def tuple_components(
    structure: Structure, tup: Sequence[Element], radius: int
) -> List[FrozenSet[int]]:
    """The r-components of a tuple: vertex sets of connected components of
    ``G_{a-bar, r}``, over 1-based positions, in order of smallest member."""
    k = len(tup)
    edges = connectivity_graph(structure, tup, radius)
    adjacency: Dict[int, Set[int]] = {i: set() for i in range(1, k + 1)}
    for i, j in edges:
        adjacency[i].add(j)
        adjacency[j].add(i)
    seen: Set[int] = set()
    components: List[FrozenSet[int]] = []
    for start in range(1, k + 1):
        if start in seen:
            continue
        component = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for neighbour in adjacency[node]:
                if neighbour not in component:
                    component.add(neighbour)
                    frontier.append(neighbour)
        seen |= component
        components.append(frozenset(component))
    return components


def is_tuple_connected(structure: Structure, tup: Sequence[Element], radius: int) -> bool:
    """Whether the tuple is r-connected (``G_{a-bar, r}`` connected)."""
    return len(tuple_components(structure, tup, radius)) <= 1


def eccentricity(structure: Structure, centre: Element) -> float:
    """Largest finite-or-infinite distance from ``centre`` to any element."""
    reach = distances_from(structure, [centre])
    if len(reach) < structure.order():
        return math.inf
    return max(reach.values())


def radius_of_set(structure: Structure, elements: FrozenSet[Element]) -> float:
    """The radius of a connected set X: min over c in X of the eccentricity of
    c *within the induced substructure* A[X] (Section 8.1)."""
    sub = induced(structure, elements)
    best = math.inf
    for candidate in sub.universe_order:
        reach = distances_from(sub, [candidate])
        if len(reach) < sub.order():
            continue
        best = min(best, max(reach.values()))
    return best
