"""Gaifman graphs, distances, balls and neighbourhoods (Section 2).

The Gaifman graph ``G_A`` of a structure ``A`` has the universe as vertices
and an edge between distinct ``a, b`` iff they co-occur in some tuple of some
relation.  All locality notions of the paper (r-balls ``N_r(a)``,
r-neighbourhood substructures, r-connectivity of tuples, the graphs
``G_{a-bar,r}``) are defined through it; this module implements them with
plain BFS over the cached adjacency of :class:`~repro.structures.structure.Structure`.

Distances are returned as non-negative integers, with ``math.inf`` standing
for "no path" exactly as the paper's ``dist = infinity`` convention.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..errors import UniverseError
from .structure import Element, Structure


def distance(structure: Structure, source: Element, target: Element) -> float:
    """``dist_A(a, b)``: length of a shortest Gaifman-graph path, or ``inf``."""
    if source not in structure or target not in structure:
        raise UniverseError("distance endpoints must be universe elements")
    if source == target:
        return 0
    adjacency = structure.adjacency()
    seen = {source}
    frontier = deque([(source, 0)])
    while frontier:
        node, dist = frontier.popleft()
        for neighbour in adjacency[node]:
            if neighbour == target:
                return dist + 1
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append((neighbour, dist + 1))
    return math.inf


def distances_from(
    structure: Structure, sources: Iterable[Element], radius: "float | None" = None
) -> Dict[Element, int]:
    """Multi-source BFS distances from ``sources``.

    Returns a dict mapping each element within ``radius`` (all reachable
    elements when ``radius`` is ``None``) to its distance from the *closest*
    source — the paper's ``dist_A(a-bar, b) = min_i dist(a_i, b)``.
    """
    adjacency = structure.adjacency()
    dist: Dict[Element, int] = {}
    frontier = deque()
    for source in sources:
        if source not in structure:
            raise UniverseError(f"{source!r} is not a universe element")
        if source not in dist:
            dist[source] = 0
            frontier.append(source)
    while frontier:
        node = frontier.popleft()
        d = dist[node]
        if radius is not None and d >= radius:
            continue
        for neighbour in adjacency[node]:
            if neighbour not in dist:
                dist[neighbour] = d + 1
                frontier.append(neighbour)
    return dist


def tuple_distance(structure: Structure, tup: Sequence[Element], target: Element) -> float:
    """``dist_A(a-bar, b) = min_i dist(a_i, b)``; ``inf`` when unreachable."""
    best = math.inf
    for entry in tup:
        d = distance(structure, entry, target)
        if d < best:
            best = d
            if best == 0:
                break
    return best


def ball(structure: Structure, centres: Iterable[Element], radius: int) -> FrozenSet[Element]:
    """``N_r(a-bar)``: the set of elements at distance <= radius from the tuple."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return frozenset(distances_from(structure, centres, radius))


def neighbourhood(
    structure: Structure, centres: Iterable[Element], radius: int
) -> Structure:
    """The r-neighbourhood substructure ``A[N_r(a-bar)]``."""
    return induced(structure, ball(structure, centres, radius))


def induced(structure: Structure, elements: Iterable[Element]) -> Structure:
    """The induced substructure ``A[B]`` on a non-empty ``B`` (subset of A).

    For small ``B`` the relevant tuples are gathered through the structure's
    per-position indexes (cost proportional to the tuples touching ``B``)
    rather than by scanning whole relations — the difference between
    O(|B| * degree) and O(||A||) per extraction, which matters when callers
    carve thousands of neighbourhood balls out of one big structure.
    """
    chosen = set(elements)
    if not chosen:
        raise UniverseError("cannot induce a substructure on the empty set")
    for element in chosen:
        if element not in structure:
            raise UniverseError(f"{element!r} is not a universe element")
    ordered = [a for a in structure.universe_order if a in chosen]
    small = len(chosen) * 4 < structure.order()
    relations = {}
    for symbol, rel in structure.relations().items():
        if symbol.arity == 0 or not small:
            relations[symbol] = {
                tup for tup in rel if all(entry in chosen for entry in tup)
            }
            continue
        index = structure.index(symbol, 0)
        gathered = set()
        for element in chosen:
            for tup in index.get(element, ()):
                if all(entry in chosen for entry in tup):
                    gathered.add(tup)
        relations[symbol] = gathered
    return Structure(structure.signature, ordered, relations)


def connected_components(structure: Structure) -> List[FrozenSet[Element]]:
    """Connected components of the Gaifman graph, in deterministic order."""
    adjacency = structure.adjacency()
    seen: Set[Element] = set()
    components: List[FrozenSet[Element]] = []
    for start in structure.universe_order:
        if start in seen:
            continue
        component = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for neighbour in adjacency[node]:
                if neighbour not in component:
                    component.add(neighbour)
                    frontier.append(neighbour)
        seen |= component
        components.append(frozenset(component))
    return components


def is_connected(structure: Structure) -> bool:
    return len(connected_components(structure)) == 1


def connectivity_graph(
    structure: Structure, tup: Sequence[Element], radius: int
) -> FrozenSet[Tuple[int, int]]:
    """The graph ``G_{a-bar, r}`` of Section 7 as an edge set over 1-based
    positions: ``{i, j}`` is an edge iff ``i != j`` and ``dist(a_i, a_j) <= r``.

    Edges are returned as ordered pairs ``(i, j)`` with ``i < j``.
    """
    k = len(tup)
    edges = set()
    for i in range(k):
        reach = distances_from(structure, [tup[i]], radius)
        for j in range(i + 1, k):
            if tup[j] in reach:
                edges.add((i + 1, j + 1))
    return frozenset(edges)


def tuple_components(
    structure: Structure, tup: Sequence[Element], radius: int
) -> List[FrozenSet[int]]:
    """The r-components of a tuple: vertex sets of connected components of
    ``G_{a-bar, r}``, over 1-based positions, in order of smallest member."""
    k = len(tup)
    edges = connectivity_graph(structure, tup, radius)
    adjacency: Dict[int, Set[int]] = {i: set() for i in range(1, k + 1)}
    for i, j in edges:
        adjacency[i].add(j)
        adjacency[j].add(i)
    seen: Set[int] = set()
    components: List[FrozenSet[int]] = []
    for start in range(1, k + 1):
        if start in seen:
            continue
        component = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for neighbour in adjacency[node]:
                if neighbour not in component:
                    component.add(neighbour)
                    frontier.append(neighbour)
        seen |= component
        components.append(frozenset(component))
    return components


def is_tuple_connected(structure: Structure, tup: Sequence[Element], radius: int) -> bool:
    """Whether the tuple is r-connected (``G_{a-bar, r}`` connected)."""
    return len(tuple_components(structure, tup, radius)) <= 1


def eccentricity(structure: Structure, centre: Element) -> float:
    """Largest finite-or-infinite distance from ``centre`` to any element."""
    reach = distances_from(structure, [centre])
    if len(reach) < structure.order():
        return math.inf
    return max(reach.values())


def radius_of_set(structure: Structure, elements: FrozenSet[Element]) -> float:
    """The radius of a connected set X: min over c in X of the eccentricity of
    c *within the induced substructure* A[X] (Section 8.1)."""
    sub = induced(structure, elements)
    best = math.inf
    for candidate in sub.universe_order:
        reach = distances_from(sub, [candidate])
        if len(reach) < sub.order():
            continue
        best = min(best, max(reach.values()))
    return best
