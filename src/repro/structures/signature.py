"""Relational signatures (Section 2 of the paper).

A *signature* is a finite set of relation symbols, each with a non-negative
arity.  Signatures in this library are immutable value objects: two signatures
containing the same symbols compare equal and hash equally, which lets the
evaluation machinery use them as cache keys.

Arity 0 is allowed — a 0-ary relation over a universe ``A`` is either the
empty set or ``{()}``, and the paper's Decomposition Theorem 6.10 makes
essential use of 0-ary symbols to record truth values of sentences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Tuple

from ..errors import SignatureError


@dataclass(frozen=True, order=True)
class RelationSymbol:
    """A named relation symbol with a fixed arity.

    Parameters
    ----------
    name:
        The symbol's name.  Names are the identity used by parsers and
        printers, so they must be non-empty.
    arity:
        Number of argument positions; must be >= 0.
    """

    name: str
    arity: int

    def __post_init__(self) -> None:
        if not self.name:
            raise SignatureError("relation symbol name must be non-empty")
        if self.arity < 0:
            raise SignatureError(
                f"relation symbol {self.name!r} has negative arity {self.arity}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.name}/{self.arity}"


class Signature:
    """An immutable finite set of :class:`RelationSymbol` objects.

    The *size* ``||sigma||`` of a signature is the sum of the arities of its
    relation symbols, matching the paper's definition.
    """

    __slots__ = ("_by_name", "_symbols", "_hash")

    def __init__(self, symbols: Iterable[RelationSymbol] = ()):
        by_name: Dict[str, RelationSymbol] = {}
        for symbol in symbols:
            if not isinstance(symbol, RelationSymbol):
                raise SignatureError(f"not a relation symbol: {symbol!r}")
            existing = by_name.get(symbol.name)
            if existing is not None and existing != symbol:
                raise SignatureError(
                    f"duplicate symbol name {symbol.name!r} with arities "
                    f"{existing.arity} and {symbol.arity}"
                )
            by_name[symbol.name] = symbol
        object.__setattr__(self, "_by_name", by_name)
        object.__setattr__(self, "_symbols", tuple(sorted(by_name.values())))
        object.__setattr__(self, "_hash", hash(self._symbols))

    # -- construction helpers -------------------------------------------------

    @classmethod
    def of(cls, **arities: int) -> "Signature":
        """Build a signature from keyword arguments, e.g. ``Signature.of(E=2, R=1)``."""
        return cls(RelationSymbol(name, arity) for name, arity in arities.items())

    def extend(self, *symbols: RelationSymbol) -> "Signature":
        """Return the signature enlarged by ``symbols`` (must be consistent)."""
        return Signature(tuple(self._symbols) + symbols)

    def union(self, other: "Signature") -> "Signature":
        """Union of two signatures; conflicting arities raise :class:`SignatureError`."""
        return Signature(tuple(self._symbols) + tuple(other._symbols))

    def restrict(self, names: Iterable[str]) -> "Signature":
        """The sub-signature containing exactly the symbols named in ``names``."""
        wanted = set(names)
        missing = wanted - set(self._by_name)
        if missing:
            raise SignatureError(f"unknown symbols: {sorted(missing)}")
        return Signature(s for s in self._symbols if s.name in wanted)

    # -- queries ---------------------------------------------------------------

    def __contains__(self, item: object) -> bool:
        if isinstance(item, RelationSymbol):
            return self._by_name.get(item.name) == item
        if isinstance(item, str):
            return item in self._by_name
        return False

    def __getitem__(self, name: str) -> RelationSymbol:
        try:
            return self._by_name[name]
        except KeyError:
            raise SignatureError(f"signature has no symbol named {name!r}") from None

    def get(self, name: str) -> "RelationSymbol | None":
        return self._by_name.get(name)

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(self._symbols)

    def __len__(self) -> int:
        return len(self._symbols)

    @property
    def symbols(self) -> Tuple[RelationSymbol, ...]:
        return self._symbols

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self._symbols)

    def size(self) -> int:
        """``||sigma||``: the sum of the arities of the symbols."""
        return sum(s.arity for s in self._symbols)

    def max_arity(self) -> int:
        """Largest arity present; 0 for the empty signature."""
        return max((s.arity for s in self._symbols), default=0)

    def is_subsignature_of(self, other: "Signature") -> bool:
        return all(s in other for s in self._symbols)

    # -- value semantics ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Signature):
            return NotImplemented
        return self._symbols == other._symbols

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(repr(s) for s in self._symbols)
        return f"Signature({{{inner}}})"


#: The signature of (directed) graphs: a single binary relation symbol E.
GRAPH_SIGNATURE = Signature.of(E=2)
