"""Interned element ids: the dense integer domain of the columnar layer.

Universe elements are arbitrary hashable Python objects (Section 2 places
no constraint beyond finiteness), which makes every hot-path set operation
pay object hashing and pointer chasing.  :class:`ElementInterner` maps the
universe onto dense ids ``0..n-1`` *in universe order* — the structure's
deterministic first-occurrence order — so that

* sorting ids reproduces universe order (no cross-type comparisons even
  on mixed ``str``/``tuple``/``int`` universes),
* sets of elements become sorted ``array('q')`` runs or int bitsets
  (:mod:`repro.structures.columnar`), and
* an id is a direct index into :attr:`ElementInterner.elements` for the
  conversion back at result boundaries.

Id stability across updates: :meth:`~repro.structures.structure.Structure.
with_tuple` never changes the universe, so a derived structure *shares*
its parent's interner object — ids stay stable along arbitrarily long
derivation chains, and ball/cluster data keyed by id remains meaningful
across them.  The interner is therefore the one piece of derived data
that :meth:`~repro.structures.structure.Structure.invalidate_caches`
does **not** drop: even in-place mutation (which that method exists to
absolve) can only touch ``_relations``, never the universe.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

from ..errors import UniverseError
from .signature import RelationSymbol  # noqa: F401  (re-export convenience)

Element = object


class ElementInterner:
    """A bijection between a finite universe and dense ids ``0..n-1``.

    Ids follow first occurrence in the supplied iterable (duplicates
    collapse onto the first occurrence's id), matching the
    universe-order convention of :class:`~repro.structures.structure.
    Structure` exactly.
    """

    __slots__ = ("elements", "_ids")

    def __init__(self, universe: Iterable[Element]):
        elements: List[Element] = []
        ids: Dict[Element, int] = {}
        for element in universe:
            if element not in ids:
                ids[element] = len(elements)
                elements.append(element)
        if not elements:
            raise UniverseError("cannot intern an empty universe")
        #: Element of each id, id-indexable: ``elements[i]`` inverts ``id_of``.
        self.elements: Tuple[Element, ...] = tuple(elements)
        self._ids = ids

    @property
    def n(self) -> int:
        return len(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __contains__(self, element: Element) -> bool:
        return element in self._ids

    def __iter__(self) -> Iterator[Element]:
        return iter(self.elements)

    def id_of(self, element: Element) -> int:
        """The dense id of a universe element.

        Raises :class:`~repro.errors.UniverseError` for foreign elements —
        the same contract the element-space API enforces at its edges.
        """
        try:
            return self._ids[element]
        except KeyError:
            raise UniverseError(
                f"{element!r} is not a universe element"
            ) from None

    def get(self, element: Element) -> "int | None":
        """``id_of`` without the raise: ``None`` for foreign elements."""
        return self._ids.get(element)

    def ids(self, elements: Iterable[Element]) -> List[int]:
        """Intern a batch, preserving input order (duplicates preserved)."""
        ids = self._ids
        try:
            return [ids[element] for element in elements]
        except KeyError as missing:
            raise UniverseError(
                f"{missing.args[0]!r} is not a universe element"
            ) from None

    def elements_of(self, ids: Iterable[int]) -> List[Element]:
        """Convert ids back to elements, preserving input order."""
        elements = self.elements
        return [elements[i] for i in ids]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ElementInterner(n={len(self.elements)})"
