"""Relational-structure substrate: signatures, structures, Gaifman locality.

This package implements Section 2 of Grohe & Schweikardt (2018): finite
relational signatures and structures, Gaifman graphs, distances, balls,
neighbourhood substructures, and the algebra of expansions, reducts and
disjoint unions the paper's constructions are built from.
"""

from .signature import GRAPH_SIGNATURE, RelationSymbol, Signature
from .structure import Element, Structure, Tup
from .interning import ElementInterner
from .columnar import (
    ColumnarRelation,
    ColumnarStructure,
    bitset_ids,
    bitset_of,
    intersect_sorted,
    union_sorted,
)
from .gaifman import (
    ball,
    connected_components,
    connectivity_graph,
    distance,
    distances_from,
    induced,
    is_connected,
    is_tuple_connected,
    neighbourhood,
    radius_of_set,
    tuple_components,
    tuple_distance,
)
from .operations import (
    are_isomorphic,
    disjoint_union,
    expansion,
    pin_elements,
    reduct,
    relabel,
)
from .builders import (
    COLOURED_GRAPH_SIGNATURE,
    balanced_tree,
    complete_graph,
    coloured_graph_structure,
    cycle_graph,
    forest_structure,
    graph_structure,
    grid_graph,
    path_graph,
    star_graph,
    string_signature,
    string_structure,
)

__all__ = [
    "GRAPH_SIGNATURE",
    "COLOURED_GRAPH_SIGNATURE",
    "RelationSymbol",
    "Signature",
    "Element",
    "Structure",
    "Tup",
    "ElementInterner",
    "ColumnarRelation",
    "ColumnarStructure",
    "bitset_ids",
    "bitset_of",
    "intersect_sorted",
    "union_sorted",
    "ball",
    "connected_components",
    "connectivity_graph",
    "distance",
    "distances_from",
    "induced",
    "is_connected",
    "is_tuple_connected",
    "neighbourhood",
    "radius_of_set",
    "tuple_components",
    "tuple_distance",
    "are_isomorphic",
    "disjoint_union",
    "expansion",
    "pin_elements",
    "reduct",
    "relabel",
    "balanced_tree",
    "complete_graph",
    "coloured_graph_structure",
    "cycle_graph",
    "forest_structure",
    "graph_structure",
    "grid_graph",
    "path_graph",
    "star_graph",
    "string_signature",
    "string_structure",
]
