"""Columnar relation storage and int/bitset kernels over interned ids.

This is the representation layer behind the evaluation core: relations as
``array('q')`` columns of interned element ids with per-position sorted-id
indexes, the Gaifman adjacency as a CSR int-array pair, and a small kernel
library (bitset membership, union/intersection, galloping sorted-array
intersection, radius-bounded ball expansion) that the hot paths in
``core/local_eval.py``, ``core/cover_eval.py`` and ``sparse/covers.py``
run on.  Everything here is *representation only*: the kernels compute
exactly the sets the element-space reference code computes, and callers
convert back to user-facing elements at result boundaries.

Cache contract
--------------
A :class:`ColumnarStructure` is derived data of one
:class:`~repro.structures.structure.Structure` and lives under the same
contract as the adjacency/index/statistics caches (see the ``Structure``
docstring): built lazily by :meth:`Structure.columnar`, cached on the
instance, dropped by :meth:`Structure.invalidate_caches`, and **not**
carried over by :meth:`Structure.with_tuple` (the derived structure
rebuilds lazily against its own relations; only the
:class:`~repro.structures.interning.ElementInterner` is shared, because
the universe — and hence the id space — is identical).

Bitset convention: a set of ids is a non-negative Python int with bit
``i`` set iff id ``i`` is a member.  ``(bs >> i) & 1`` is the membership
test; ``|``/``&`` are union/intersection; ``a & ~b == 0`` is ``a ⊆ b``.
On the universe sizes this engine targets the int spans a handful of
machine words, so these are effectively O(1) C-loop operations.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import ArityError
from .interning import ElementInterner
from .signature import RelationSymbol

__all__ = [
    "ColumnarRelation",
    "ColumnarStructure",
    "bitset_of",
    "bitset_ids",
    "intersect_sorted",
    "union_sorted",
]


# ---------------------------------------------------------------------------
# Kernels on sorted id arrays and int bitsets
# ---------------------------------------------------------------------------


def bitset_of(ids: Iterable[int], n: int) -> int:
    """The bitset of a collection of ids drawn from ``0..n-1``.

    Built through a ``bytearray`` so the cost is O(|ids| + n/8) rather
    than O(|ids| * n/64) of repeated big-int shifts.
    """
    buf = bytearray((n >> 3) + 1)
    for i in ids:
        buf[i >> 3] |= 1 << (i & 7)
    return int.from_bytes(buf, "little")


def bitset_ids(bitset: int) -> List[int]:
    """The sorted ids of a bitset (inverse of :func:`bitset_of`)."""
    out: List[int] = []
    while bitset:
        low = bitset & -bitset
        out.append(low.bit_length() - 1)
        bitset ^= low
    return out


def intersect_sorted(a: Sequence[int], b: Sequence[int]) -> "array[int]":
    """Intersection of two sorted id runs, galloping from the shorter one.

    Each element of the shorter run gallops (exponential probe, then a
    bisect inside the bracketed window) through the remainder of the
    longer run, so the cost is O(|short| * log(|long|/|short|)) — the
    classic adaptive bound, degrading gracefully to a linear merge when
    the runs interleave densely.
    """
    if len(a) > len(b):
        a, b = b, a
    out = array("q")
    lo = 0
    hi = len(b)
    for x in a:
        # Gallop: double the step until b[lo + step] >= x (or we run out).
        step = 1
        probe = lo
        while probe < hi and b[probe] < x:
            probe = lo + step
            step <<= 1
        lo = bisect_left(b, x, min(probe >> 1, hi) if step > 2 else lo, min(probe + 1, hi))
        if lo >= hi:
            break
        if b[lo] == x:
            out.append(x)
            lo += 1
    return out


def union_sorted(a: Sequence[int], b: Sequence[int]) -> "array[int]":
    """Union of two sorted id runs (linear merge, duplicates collapsed)."""
    out = array("q")
    i = j = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        x, y = a[i], b[j]
        if x < y:
            out.append(x)
            i += 1
        elif y < x:
            out.append(y)
            j += 1
        else:
            out.append(x)
            i += 1
            j += 1
    if i < la:
        out.extend(a[i:la] if isinstance(a, array) else array("q", a[i:la]))
    if j < lb:
        out.extend(b[j:lb] if isinstance(b, array) else array("q", b[j:lb]))
    return out


# ---------------------------------------------------------------------------
# Columnar relations
# ---------------------------------------------------------------------------


class ColumnarRelation:
    """One relation as id columns plus lazy per-position sorted-id indexes.

    Rows are sorted lexicographically by id, giving every relation a
    deterministic, compact layout regardless of the ``frozenset``
    iteration order of the element-space representation.
    """

    __slots__ = ("name", "arity", "row_count", "columns", "_indexes")

    def __init__(self, name: str, arity: int, rows: List[Tuple[int, ...]]):
        rows.sort()
        self.name = name
        self.arity = arity
        self.row_count = len(rows)
        #: ``columns[p][r]`` is the interned id at position ``p`` of row ``r``.
        self.columns: Tuple["array[int]", ...] = tuple(
            array("q", (row[p] for row in rows)) for p in range(arity)
        )
        self._indexes: Dict[int, Dict[int, "array[int]"]] = {}

    def index(self, position: int) -> Dict[int, "array[int]"]:
        """Per-position index: id -> sorted row indices with that id at
        ``position``.  Keys iterate in sorted-id order (insertion order of
        the build).  Built lazily, once per position."""
        if not 0 <= position < self.arity:
            raise ArityError(
                f"position {position} out of range for "
                f"{self.name}/{self.arity}"
            )
        built = self._indexes.get(position)
        if built is None:
            grouped: Dict[int, "array[int]"] = {}
            column = self.columns[position]
            for row, value in enumerate(column):
                entry = grouped.get(value)
                if entry is None:
                    grouped[value] = array("q", (row,))
                else:
                    entry.append(row)
            built = {value: grouped[value] for value in sorted(grouped)}
            self._indexes[position] = built
        return built

    def distinct_count(self, position: int) -> int:
        """Number of distinct ids at ``position`` (off the sorted index)."""
        return len(self.index(position))

    def row(self, index: int) -> Tuple[int, ...]:
        return tuple(column[index] for column in self.columns)


# ---------------------------------------------------------------------------
# The per-structure columnar view
# ---------------------------------------------------------------------------


class ColumnarStructure:
    """Id-space view of one structure: CSR adjacency + columnar relations.

    Constructed from (and cached on) a
    :class:`~repro.structures.structure.Structure`; see the module
    docstring for the cache contract.  All sets of ids returned by the
    kernels are sorted, so converting through
    ``interner.elements[i]`` yields elements in universe order.
    """

    __slots__ = (
        "interner",
        "n",
        "_structure",
        "_offsets",
        "_targets",
        "_neigh",
        "_relations",
        "_full_bitset",
    )

    def __init__(self, structure) -> None:
        self._structure = structure
        self.interner: ElementInterner = structure.interner()
        self.n: int = len(self.interner)
        self._offsets: "array[int] | None" = None
        self._targets: "array[int] | None" = None
        self._neigh: "Tuple[Tuple[int, ...], ...] | None" = None
        self._relations: Dict[str, ColumnarRelation] = {}
        self._full_bitset: "int | None" = None

    # -- relations ------------------------------------------------------------

    def relation(self, key: object) -> ColumnarRelation:
        """The columnar form of one relation, built lazily and cached."""
        symbol = (
            key
            if isinstance(key, RelationSymbol)
            else self._structure.signature[key]  # type: ignore[index]
        )
        cached = self._relations.get(symbol.name)
        if cached is None:
            id_of = self.interner._ids
            rows = [
                tuple(id_of[entry] for entry in tup)
                for tup in self._structure.relation(symbol)
            ]
            cached = ColumnarRelation(symbol.name, symbol.arity, rows)
            self._relations[symbol.name] = cached
        return cached

    def distinct_per_column(self, key: object) -> Tuple[int, ...]:
        """Distinct-id count per position of a relation — the statistic
        :mod:`repro.cost.stats` serves without rescanning the relation."""
        relation = self.relation(key)
        return tuple(
            relation.distinct_count(p) for p in range(relation.arity)
        )

    # -- Gaifman adjacency as CSR ----------------------------------------------

    def _adjacency_csr(self) -> Tuple["array[int]", "array[int]"]:
        """CSR adjacency: ``targets[offsets[i]:offsets[i+1]]`` are the
        sorted neighbour ids of ``i``.  Built directly from the relations
        (never through the element-space adjacency dict)."""
        if self._offsets is None:
            if self._neigh is not None:
                # A derived view (see :meth:`derive_insert`) carries its
                # adjacency as neighbour tuples; fold them back into CSR.
                offsets = array("q", [0])
                targets = array("q")
                for neighbours in self._neigh:
                    targets.extend(neighbours)
                    offsets.append(len(targets))
                self._offsets = offsets
                self._targets = targets
                return self._offsets, self._targets
            id_of = self.interner._ids
            # Accumulate raw (possibly duplicated) neighbour ids per node
            # and dedupe once at the end: plain list appends beat per-tuple
            # set allocations, and binary relations — the dominant case —
            # get a branch with no intermediate collection at all.
            acc: List[List[int]] = [[] for _ in range(self.n)]
            for symbol, rel in self._structure.relations().items():
                if symbol.arity < 2:
                    continue
                if symbol.arity == 2:
                    for x, y in rel:
                        a = id_of[x]
                        b = id_of[y]
                        if a != b:
                            acc[a].append(b)
                            acc[b].append(a)
                    continue
                for tup in rel:
                    distinct = {id_of[entry] for entry in tup}
                    if len(distinct) < 2:
                        continue
                    for a in distinct:
                        acc[a].extend(distinct)
            offsets = array("q", [0])
            targets = array("q")
            for i, bucket in enumerate(acc):
                uniq = set(bucket)
                uniq.discard(i)
                targets.extend(sorted(uniq))
                offsets.append(len(targets))
            self._offsets = offsets
            self._targets = targets
        return self._offsets, self._targets  # type: ignore[return-value]

    def _neighbour_ids(self) -> Tuple[Tuple[int, ...], ...]:
        """Per-id neighbour tuples for BFS iteration.

        The CSR pair is the compact storage form, but iterating an
        ``array('q')`` slice re-boxes every id on every visit; the BFS
        kernels instead walk this one-time materialisation, whose tuples
        hold already-boxed ints (the same trade the element-space
        adjacency dict makes, minus the element objects)."""
        if self._neigh is None:
            offsets, targets = self._adjacency_csr()
            self._neigh = tuple(
                tuple(targets[offsets[i] : offsets[i + 1]])
                for i in range(self.n)
            )
        return self._neigh

    def neighbours(self, eid: int) -> "array[int]":
        """Sorted neighbour ids of one element."""
        offsets, targets = self._adjacency_csr()
        return targets[offsets[eid] : offsets[eid + 1]]

    def derive_insert(self, structure, symbol, tup) -> "ColumnarStructure":
        """The derived view after a single-tuple *insertion* — the columnar
        leg of :meth:`Structure.with_tuple`'s copy-on-write contract.

        Shares the interner and every untouched relation's columnar form,
        drops the touched relation's (rebuilt lazily against the derived
        structure), and extends the adjacency incrementally with the new
        tuple's co-occurrence edges — the exact policy of the dict
        adjacency (deletions reset instead, since other tuples may still
        witness the affected edges; ``with_tuple`` simply leaves
        ``_columnar`` unset in that case)."""
        view = ColumnarStructure.__new__(ColumnarStructure)
        view._structure = structure
        view.interner = self.interner
        view.n = self.n
        view._full_bitset = self._full_bitset
        view._relations = {
            name: relation
            for name, relation in self._relations.items()
            if name != symbol.name
        }
        id_of = self.interner._ids
        distinct = {id_of[entry] for entry in tup}
        if len(distinct) < 2:
            # No Gaifman edges in a (near-)singleton tuple: the parent's
            # adjacency is the derived one, share it as-is.
            view._offsets = self._offsets
            view._targets = self._targets
            view._neigh = self._neigh
        elif self._neigh is not None or self._offsets is not None:
            updated = list(self._neighbour_ids())
            for a in distinct:
                merged = set(updated[a])
                merged.update(distinct)
                merged.discard(a)
                updated[a] = tuple(sorted(merged))
            view._neigh = tuple(updated)
            view._offsets = None
            view._targets = None
        else:
            view._neigh = None
            view._offsets = None
            view._targets = None
        return view

    def degree(self, eid: int) -> int:
        offsets, _ = self._adjacency_csr()
        return offsets[eid + 1] - offsets[eid]

    # -- ball kernels ----------------------------------------------------------

    def ball_ids(self, sources: Iterable[int], radius: int) -> List[int]:
        """Sorted ids of ``N_radius(sources)`` (radius-bounded multi-source
        BFS over the CSR adjacency)."""
        neigh = self._neighbour_ids()
        seen = bytearray(self.n)
        frontier: List[int] = []
        result: List[int] = []
        for source in sources:
            if not seen[source]:
                seen[source] = 1
                frontier.append(source)
                result.append(source)
        depth = 0
        while frontier and depth < radius:
            nxt: List[int] = []
            for node in frontier:
                for neighbour in neigh[node]:
                    if not seen[neighbour]:
                        seen[neighbour] = 1
                        nxt.append(neighbour)
            if not nxt:
                break
            result.extend(nxt)
            frontier = nxt
            depth += 1
        result.sort()
        return result

    def distances(
        self, sources: Iterable[int], radius: "float | None" = None
    ) -> Tuple[List[int], List[int]]:
        """BFS distances: ``(ids, dists)`` in discovery order, each id at
        its distance from the closest source, bounded by ``radius`` when
        given (the paper's ``dist(a-bar, b) = min_i dist(a_i, b)``)."""
        neigh = self._neighbour_ids()
        seen = bytearray(self.n)
        ids: List[int] = []
        dists: List[int] = []
        frontier: List[int] = []
        for source in sources:
            if not seen[source]:
                seen[source] = 1
                frontier.append(source)
                ids.append(source)
                dists.append(0)
        depth = 0
        while frontier and (radius is None or depth < radius):
            nxt: List[int] = []
            depth += 1
            for node in frontier:
                for neighbour in neigh[node]:
                    if not seen[neighbour]:
                        seen[neighbour] = 1
                        nxt.append(neighbour)
                        ids.append(neighbour)
                        dists.append(depth)
            frontier = nxt
        return ids, dists

    def distance_between(self, source: int, target: int) -> "int | None":
        """Shortest-path distance, ``None`` when unreachable (early exit)."""
        if source == target:
            return 0
        neigh = self._neighbour_ids()
        seen = bytearray(self.n)
        seen[source] = 1
        frontier = [source]
        depth = 0
        while frontier:
            nxt: List[int] = []
            depth += 1
            for node in frontier:
                for neighbour in neigh[node]:
                    if neighbour == target:
                        return depth
                    if not seen[neighbour]:
                        seen[neighbour] = 1
                        nxt.append(neighbour)
            frontier = nxt
        return None

    # -- bitsets ---------------------------------------------------------------

    def bitset(self, ids: Iterable[int]) -> int:
        """The bitset of a set of ids in this structure's id space."""
        return bitset_of(ids, self.n)

    def bitset_of_elements(self, elements: Iterable[object]) -> int:
        id_of = self.interner._ids
        return bitset_of((id_of[element] for element in elements), self.n)

    def full_bitset(self) -> int:
        """The whole universe as a bitset."""
        if self._full_bitset is None:
            self._full_bitset = (1 << self.n) - 1
        return self._full_bitset

    def ball_bitset(self, sources: Iterable[int], radius: int) -> int:
        return self.bitset(self.ball_ids(sources, radius))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnarStructure(n={self.n})"
