"""Named counters and histograms for the evaluation engines.

The engines' hot loops report *what happened* — memo hits and misses,
guard selections, ball expansions, cover cluster sizes, budget ticks,
fallback-stage transitions — through a process-global
:class:`MetricsRegistry`.  Collection is **off by default**: when no
registry is installed, every checkpoint is a single module-global load
plus an ``is None`` test, the same near-free pattern the budget and
fault-injection hooks already use.  Hot paths that sit inside tight
loops capture the active registry *once* (``m = active_metrics()``) and
branch on the local, so the disabled cost does not scale with the loop.

Counters are plain integers in a dict; histograms track count / total /
min / max (enough for mean cluster sizes and span statistics without
keeping every sample).  Derived ratios — most importantly the memo hit
rate — are computed at snapshot time by :func:`hit_rate`.

Fault-tolerance counters (PR 5) follow a ``layer.mechanism.event``
naming convention:

* ``parallel.retry.attempt`` — a failed shard was re-run;
* ``parallel.retry.recovered`` — a shard succeeded after >= 1 retry;
* ``parallel.retry.exhausted`` — a shard failed permanently (its final
  error is either re-raised or salvaged);
* ``robust.breaker.trip`` — a cascade stage's circuit just opened;
* ``robust.breaker.skipped`` — a stage was skipped because its circuit
  was open (also counted per stage as ``robust.stage.<name>.skipped``);
* ``robust.salvage.partial`` — a cascade stage answered with a
  :class:`~repro.robust.partial.PartialResult`.

Usage::

    from repro.obs import collect_metrics

    with collect_metrics() as metrics:
        engine.count(structure, phi, ["x", "y"])
    print(metrics.snapshot()["counters"]["evaluator.memo.hit"])
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "active_metrics",
    "collect_metrics",
    "hit_rate",
    "set_metrics",
    "set_thread_metrics",
    "thread_metrics",
    "tick",
    "observe",
]


class Histogram:
    """Streaming summary of a numeric series: count, total, min, max."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: "Optional[float]" = None
        self.max: "Optional[float]" = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self) -> "Optional[float]":
        if self.count == 0:
            return None
        return self.total / self.count

    def snapshot(self) -> Dict[str, "float | int | None"]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count}, total={self.total})"


class MetricsRegistry:
    """A bag of named counters and histograms.

    Counter and histogram names are dotted paths
    (``evaluator.memo.hit``, ``cover.cluster_size``); the registry does
    not pre-declare names — the first increment creates the series.

    Recording is thread-safe: ``inc``/``observe``/``merge`` serialise on a
    single per-registry lock, so concurrent workers sharing one registry
    never lose updates.  The disabled path is unaffected — with no
    registry installed nothing here runs at all — and parallel hot loops
    avoid the shared lock entirely by recording into a per-worker
    registry that is merged on join (see :mod:`repro.parallel`).
    """

    __slots__ = ("counters", "histograms", "_lock")

    def __init__(self):
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = Histogram(name)
                self.histograms[name] = histogram
            histogram.observe(value)

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def snapshot(self) -> Dict[str, Dict]:
        """A JSON-serialisable view: counters plus histogram summaries."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "histograms": {
                    name: histogram.snapshot()
                    for name, histogram in self.histograms.items()
                },
            }

    def memo_hit_rate(self) -> "Optional[float]":
        """Hits / (hits + misses) over all ``*.memo.hit|miss`` counters."""
        hits = sum(
            value
            for name, value in self.counters.items()
            if name.endswith(".memo.hit")
        )
        misses = sum(
            value
            for name, value in self.counters.items()
            if name.endswith(".memo.miss")
        )
        return hit_rate(hits, misses)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's series into this one.

        ``other`` is snapshotted under its own lock first, so merging a
        still-active worker registry sees a consistent point-in-time view;
        the fold into ``self`` then holds only ``self``'s lock (never both
        at once, so two registries merging into each other cannot
        deadlock).
        """
        with other._lock:
            counters = dict(other.counters)
            histograms = {
                name: (h.count, h.total, h.min, h.max)
                for name, h in other.histograms.items()
            }
        with self._lock:
            for name, value in counters.items():
                self.counters[name] = self.counters.get(name, 0) + value
            for name, (count, total, low, high) in histograms.items():
                mine = self.histograms.get(name)
                if mine is None:
                    mine = Histogram(name)
                    self.histograms[name] = mine
                mine.count += count
                mine.total += total
                for bound in (low, high):
                    if bound is None:
                        continue
                    if mine.min is None or bound < mine.min:
                        mine.min = bound
                    if mine.max is None or bound > mine.max:
                        mine.max = bound

    def merge_snapshot(self, snapshot: Dict[str, Dict]) -> None:
        """Fold a :meth:`snapshot` payload into this registry.

        The cross-process twin of :meth:`merge`: process-backend workers
        cannot ship live registries back (and should not — snapshots are
        plain JSON-safe dicts), so they return snapshots that the parent
        folds in on join.
        """
        with self._lock:
            for name, value in (snapshot.get("counters") or {}).items():
                self.counters[name] = self.counters.get(name, 0) + value
            for name, summary in (snapshot.get("histograms") or {}).items():
                mine = self.histograms.get(name)
                if mine is None:
                    mine = Histogram(name)
                    self.histograms[name] = mine
                mine.count += summary.get("count", 0)
                mine.total += summary.get("total", 0.0)
                for bound in (summary.get("min"), summary.get("max")):
                    if bound is None:
                        continue
                    if mine.min is None or bound < mine.min:
                        mine.min = bound
                    if mine.max is None or bound > mine.max:
                        mine.max = bound

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"histograms={len(self.histograms)})"
        )


def hit_rate(hits: int, misses: int) -> "Optional[float]":
    """``hits / (hits + misses)``, or ``None`` when nothing was recorded."""
    total = hits + misses
    if total == 0:
        return None
    return hits / total


# ---------------------------------------------------------------------------
# The process-global registry (same pattern as robust.faults), plus a
# thread-local override used by worker pools: each worker records into a
# private registry (no lock contention with its siblings) that the pool
# merges into the parent registry on join.
# ---------------------------------------------------------------------------

_ACTIVE: "Optional[MetricsRegistry]" = None
_THREAD_OVERRIDE = threading.local()


def active_metrics() -> "Optional[MetricsRegistry]":
    """The registry for the calling thread, or ``None`` (collection off).

    A thread-local override installed by :func:`set_thread_metrics` (the
    worker-pool hook) wins over the process-global registry.
    """
    override = getattr(_THREAD_OVERRIDE, "registry", None)
    if override is not None:
        return override
    return _ACTIVE


def set_metrics(registry: "Optional[MetricsRegistry]") -> "Optional[MetricsRegistry]":
    """Install (or clear, with ``None``) the global registry; returns the
    previously installed one so callers can restore it."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


def set_thread_metrics(
    registry: "Optional[MetricsRegistry]",
) -> "Optional[MetricsRegistry]":
    """Install (or clear) this thread's override; returns the previous one.

    Only the calling thread is affected; other threads keep seeing the
    process-global registry.  Worker pools use this so each worker's hot
    loops record lock-free into a private registry.
    """
    previous = getattr(_THREAD_OVERRIDE, "registry", None)
    _THREAD_OVERRIDE.registry = registry
    return previous


def reset_thread_metrics() -> "Optional[MetricsRegistry]":
    """Unconditionally clear this thread's override; returns what was set.

    The hygiene hook for *reused* threads: a pooled executor thread (an
    asyncio ``run_in_executor`` pool, the :mod:`repro.serve` quantum
    pool) outlives the task that installed an override, and a leaked
    override would silently redirect every later task's counters — and
    every :class:`~repro.plan.cache.PlanCache` hit/miss recorded through
    :func:`active_metrics` — into a dead registry from a finished
    session.  Call this on task entry (defence against an earlier leak)
    and on task completion (never leak yourself).
    """
    previous = getattr(_THREAD_OVERRIDE, "registry", None)
    _THREAD_OVERRIDE.registry = None
    return previous


@contextmanager
def thread_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope a thread-local registry override to a ``with`` block."""
    previous = set_thread_metrics(registry)
    try:
        yield registry
    finally:
        set_thread_metrics(previous)


def tick(name: str, value: int = 1) -> None:
    """Increment a counter on the active registry; no-op when collection
    is off.  Prefer capturing :func:`active_metrics` once around loops."""
    registry = active_metrics()
    if registry is not None:
        registry.inc(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram sample on the active registry; no-op when off."""
    registry = active_metrics()
    if registry is not None:
        registry.observe(name, value)


@contextmanager
def collect_metrics(
    registry: "Optional[MetricsRegistry]" = None,
) -> Iterator[MetricsRegistry]:
    """Install a registry for the duration of the ``with`` block.

    Nested blocks are allowed; the inner block sees its own registry and
    the outer one is restored on exit (inner results are *not* folded
    into the outer registry automatically — use :meth:`MetricsRegistry.merge`).
    """
    chosen = registry if registry is not None else MetricsRegistry()
    previous = set_metrics(chosen)
    try:
        yield chosen
    finally:
        set_metrics(previous)
