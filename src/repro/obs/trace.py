"""A zero-dependency structured tracer: named spans with wall time.

A *span* is one timed region of the pipeline — an engine entry point, a
cover construction, a removal surgery, one stage of the robust cascade.
Spans nest: the tracer keeps a stack, records each span's depth and
parent, and aggregates per-name statistics (calls, total/max wall time)
for the CLI's ``--trace`` report and the bench runner's JSON.

Tracing is **off by default**.  :func:`traced` wraps a function so that
when no tracer is installed the call costs one module-global load and an
``is None`` test; only coarse-grained functions are decorated (public
engine API, cover construction, surgery, cascade stages), never inner
loops — inner-loop visibility comes from the counters in
:mod:`repro.obs.metrics` instead.

Usage::

    from repro.obs import trace_spans

    with trace_spans() as tracer:
        engine.model_check(structure, phi)
    for line in tracer.report():
        print(line)
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, TypeVar

__all__ = [
    "Span",
    "Tracer",
    "active_tracer",
    "set_tracer",
    "span",
    "trace_spans",
    "traced",
]

F = TypeVar("F", bound=Callable)


@dataclass
class Span:
    """One completed timed region."""

    name: str
    start: float
    duration: float
    depth: int
    parent: "Optional[str]" = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
            "parent": self.parent,
        }


class Tracer:
    """Records spans with wall time and aggregates per-name statistics.

    ``max_spans`` bounds the raw span log (the aggregate is unbounded but
    has one entry per distinct name) so a long run cannot grow memory
    without limit; when the log is full only the aggregates advance.
    """

    __slots__ = ("spans", "aggregate", "dropped", "max_spans", "_stack", "_origin")

    def __init__(self, max_spans: int = 10_000):
        self.spans: List[Span] = []
        #: name -> [calls, total_seconds, max_seconds]
        self.aggregate: Dict[str, List[float]] = {}
        self.dropped = 0
        self.max_spans = max_spans
        self._stack: List[str] = []
        self._origin = time.monotonic()

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        start = time.monotonic()
        parent = self._stack[-1] if self._stack else None
        depth = len(self._stack)
        self._stack.append(name)
        try:
            yield
        finally:
            self._stack.pop()
            duration = time.monotonic() - start
            entry = self.aggregate.get(name)
            if entry is None:
                self.aggregate[name] = [1, duration, duration]
            else:
                entry[0] += 1
                entry[1] += duration
                if duration > entry[2]:
                    entry[2] = duration
            if len(self.spans) < self.max_spans:
                self.spans.append(
                    Span(name, start - self._origin, duration, depth, parent)
                )
            else:
                self.dropped += 1

    # -- reading -----------------------------------------------------------

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-name aggregates: calls, total and max wall seconds."""
        return {
            name: {"calls": int(calls), "total_s": total, "max_s": worst}
            for name, (calls, total, worst) in sorted(self.aggregate.items())
        }

    def total_time(self, name: str) -> float:
        entry = self.aggregate.get(name)
        return entry[1] if entry is not None else 0.0

    def report(self) -> List[str]:
        """Human-readable per-name lines, slowest first."""
        lines = []
        ordered = sorted(
            self.aggregate.items(), key=lambda item: item[1][1], reverse=True
        )
        for name, (calls, total, worst) in ordered:
            lines.append(
                f"{name}: {int(calls)} call(s), {total * 1e3:.2f} ms total, "
                f"{worst * 1e3:.2f} ms max"
            )
        if self.dropped:
            lines.append(f"({self.dropped} span(s) beyond the log limit)")
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tracer(spans={len(self.spans)}, names={len(self.aggregate)})"


# ---------------------------------------------------------------------------
# The process-global tracer
# ---------------------------------------------------------------------------

_ACTIVE: "Optional[Tracer]" = None


def active_tracer() -> "Optional[Tracer]":
    """The currently installed tracer, or ``None`` (tracing off)."""
    return _ACTIVE


def set_tracer(tracer: "Optional[Tracer]") -> "Optional[Tracer]":
    """Install (or clear) the global tracer; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


@contextmanager
def span(name: str) -> Iterator[None]:
    """Time a region against the active tracer; no-op when tracing is off."""
    tracer = _ACTIVE
    if tracer is None:
        yield
        return
    with tracer.span(name):
        yield


@contextmanager
def trace_spans(tracer: "Optional[Tracer]" = None) -> Iterator[Tracer]:
    """Install a tracer for the duration of the ``with`` block."""
    chosen = tracer if tracer is not None else Tracer()
    previous = set_tracer(chosen)
    try:
        yield chosen
    finally:
        set_tracer(previous)


def traced(name: "Optional[str]" = None) -> Callable[[F], F]:
    """Decorator: record a span around each call of the function.

    With tracing off the wrapper costs one global load and an ``is None``
    test.  ``name`` defaults to the function's qualified name.
    """

    def decorate(function: F) -> F:
        span_name = name if name is not None else function.__qualname__

        @functools.wraps(function)
        def wrapper(*args, **kwargs):
            tracer = _ACTIVE
            if tracer is None:
                return function(*args, **kwargs)
            with tracer.span(span_name):
                return function(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
