"""Observability for the evaluation engines: tracing, counters, histograms.

Two independent, zero-dependency instruments:

* :mod:`repro.obs.trace` — structured spans (enter/exit with wall time)
  around coarse pipeline regions, via the :func:`traced` decorator and
  the :func:`span` context manager;
* :mod:`repro.obs.metrics` — named counters and histograms fed from the
  engines' hot paths (memo hits/misses, guard selections, ball
  expansions, cover cluster sizes, budget ticks, fallback-stage
  transitions), via :func:`tick` / :func:`observe`.

Both are **off by default** and cost one module-global load plus an
``is None`` test per checkpoint when disabled; hot loops capture the
active registry once and branch on a local.  Enable them

* programmatically: ``with trace_spans() as t, collect_metrics() as m: ...``
* from the CLI: ``python -m repro count ... --trace --metrics``
* from the environment: ``REPRO_TRACE=1`` (both), ``REPRO_TRACE=trace``
  (spans only), ``REPRO_TRACE=metrics`` (counters only) — applied by
  :func:`configure_from_env`, which the CLI calls on startup.

See ``docs/OBSERVABILITY.md`` for the counter catalogue and the bench
runner that turns these series into ``BENCH_pr2.json``.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from .metrics import (
    Histogram,
    MetricsRegistry,
    active_metrics,
    collect_metrics,
    hit_rate,
    observe,
    reset_thread_metrics,
    set_metrics,
    set_thread_metrics,
    thread_metrics,
    tick,
)
from .trace import (
    Span,
    Tracer,
    active_tracer,
    set_tracer,
    span,
    trace_spans,
    traced,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "active_metrics",
    "active_tracer",
    "collect_metrics",
    "configure_from_env",
    "hit_rate",
    "observe",
    "reset_thread_metrics",
    "set_metrics",
    "set_thread_metrics",
    "set_tracer",
    "span",
    "thread_metrics",
    "tick",
    "trace_spans",
    "traced",
]

#: Environment variable consulted by :func:`configure_from_env`.
TRACE_ENV_VAR = "REPRO_TRACE"


def configure_from_env(
    environ: "Optional[dict]" = None,
) -> "Tuple[Optional[Tracer], Optional[MetricsRegistry]]":
    """Install tracer/metrics according to ``REPRO_TRACE``.

    Accepted values (case-insensitive): ``1``, ``true``, ``both`` — enable
    spans *and* counters; ``trace``/``spans`` — spans only;
    ``metrics``/``counters`` — counters only; anything else (including
    unset, ``0``, ``false``) — leave both off.  Returns the installed
    ``(tracer, registry)`` pair (``None`` where not enabled) without
    disturbing instruments that are already installed.
    """
    value = (environ if environ is not None else os.environ).get(
        TRACE_ENV_VAR, ""
    )
    value = value.strip().lower()
    want_trace = value in ("1", "true", "both", "trace", "spans")
    want_metrics = value in ("1", "true", "both", "metrics", "counters")
    tracer = None
    registry = None
    if want_trace and active_tracer() is None:
        tracer = Tracer()
        set_tracer(tracer)
    if want_metrics and active_metrics() is None:
        registry = MetricsRegistry()
        set_metrics(registry)
    return tracer, registry
