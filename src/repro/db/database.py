"""In-memory databases and their encoding as sigma-structures.

A :class:`Database` is a tuple store over a :class:`~repro.db.schema.Schema`
with set semantics (the paper works with relational structures, i.e. sets of
tuples).  ``to_structure`` produces the sigma-structure whose universe is
the active domain, optionally expanded with singleton "constant" relations —
the paper's ``R_Berlin`` device for expressing ``City = 'Berlin'`` in a
logic without constants (Example 5.3).
"""

from __future__ import annotations

import re
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Set,
    Tuple,
)

from ..errors import ArityError, SignatureError, UniverseError
from ..structures.signature import RelationSymbol, Signature
from ..structures.structure import Structure
from .schema import Schema

Value = Hashable
Row = Tuple[Value, ...]


def constant_relation_name(value: Value) -> str:
    """Deterministic, identifier-safe name for the constant relation of a
    value: ``Const__<sanitised>__<hashless suffix>``."""
    text = re.sub(r"[^A-Za-z0-9]", "_", str(value))[:24]
    return f"Const__{text}"


class Database:
    """A mutable tuple store; freeze into a structure with ``to_structure``."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self._rows: Dict[str, Set[Row]] = {t.name: set() for t in schema.tables}

    def insert(self, table: str, *rows: Iterable[Value]) -> None:
        spec = self.schema.table(table)
        for row in rows:
            tup = tuple(row)
            if len(tup) != spec.arity:
                raise ArityError(
                    f"row {tup!r} has {len(tup)} values, table {table} has "
                    f"{spec.arity} columns"
                )
            self._rows[table].add(tup)

    def insert_dicts(self, table: str, *rows: Mapping[str, Value]) -> None:
        spec = self.schema.table(table)
        for row in rows:
            extra = set(row) - set(spec.columns)
            if extra:
                raise SignatureError(f"unknown columns {sorted(extra)} for {table}")
            missing = set(spec.columns) - set(row)
            if missing:
                raise SignatureError(f"missing columns {sorted(missing)} for {table}")
            self.insert(table, tuple(row[c] for c in spec.columns))

    def rows(self, table: str) -> FrozenSet[Row]:
        self.schema.table(table)
        return frozenset(self._rows[table])

    def row_count(self, table: str) -> int:
        return len(self.rows(table))

    def active_domain(self) -> List[Value]:
        """All values occurring anywhere, in deterministic order."""
        seen: Dict[Value, None] = {}
        for table in self.schema.tables:
            for row in sorted(self._rows[table.name], key=repr):
                for value in row:
                    seen.setdefault(value, None)
        return list(seen)

    def to_structure(self, constants: Iterable[Value] = ()) -> Structure:
        """Encode as a sigma-structure over the active domain.

        ``constants`` lists values that should additionally get singleton
        unary relations (named by :func:`constant_relation_name`), so
        conditions like ``City = 'Berlin'`` become relation atoms.  A
        requested constant must occur in the database (structures have no
        interpretation for absent values) — a missing one raises
        :class:`~repro.errors.UniverseError`.
        """
        domain = self.active_domain()
        if not domain:
            raise UniverseError("cannot encode an empty database as a structure")
        domain_set = set(domain)
        symbols = list(self.schema.signature())
        relations: Dict[str, Iterable[Row]] = {
            table.name: self._rows[table.name] for table in self.schema.tables
        }
        for value in constants:
            if value not in domain_set:
                raise UniverseError(
                    f"constant {value!r} does not occur in the database"
                )
            name = constant_relation_name(value)
            if any(s.name == name for s in symbols):
                continue
            symbols.append(RelationSymbol(name, 1))
            relations[name] = {(value,)}
        return Structure(Signature(symbols), domain, relations)
