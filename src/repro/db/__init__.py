"""SQL-COUNT facade over relational structures (Example 5.3)."""

from .schema import CUSTOMER, EXAMPLE_5_3_SCHEMA, ORDER, Schema, Table
from .database import Database, constant_relation_name
from .sqlcount import (
    SqlCountQuery,
    group_by_count,
    join_group_count,
    reference_group_by_count,
    reference_join_group_count,
    reference_total_counts,
    total_counts,
)
from .aggregates import (
    AGGREGATES,
    AggregateQuery,
    group_by_aggregate,
    reference_group_by_aggregate,
)

__all__ = [name for name in dir() if not name.startswith("_")]
