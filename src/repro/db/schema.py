"""Relational schemas for the SQL-COUNT facade (Example 5.3).

The paper identifies a database schema with a relational signature; here a
:class:`Table` adds column *names* on top of a relation symbol so the
SQL-style helpers in :mod:`repro.db.sqlcount` can speak in terms of columns
rather than argument positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import SignatureError
from ..structures.signature import RelationSymbol, Signature


@dataclass(frozen=True)
class Table:
    """A named relation with named columns (set semantics, like the paper)."""

    name: str
    columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise SignatureError(f"table {self.name!r} needs at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise SignatureError(f"table {self.name!r} has duplicate column names")
        object.__setattr__(self, "columns", tuple(self.columns))

    @property
    def arity(self) -> int:
        return len(self.columns)

    def position(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise SignatureError(
                f"table {self.name!r} has no column {column!r}; "
                f"columns are {list(self.columns)}"
            ) from None

    @property
    def symbol(self) -> RelationSymbol:
        return RelationSymbol(self.name, self.arity)


@dataclass(frozen=True)
class Schema:
    """A collection of tables — the paper's database schema."""

    tables: Tuple[Table, ...]

    def __post_init__(self) -> None:
        names = [t.name for t in self.tables]
        if len(set(names)) != len(names):
            raise SignatureError("duplicate table names in schema")
        object.__setattr__(self, "tables", tuple(self.tables))

    def table(self, name: str) -> Table:
        for table in self.tables:
            if table.name == name:
                return table
        raise SignatureError(f"schema has no table {name!r}")

    def signature(self) -> Signature:
        return Signature(t.symbol for t in self.tables)


#: The running schema of Example 5.3.
CUSTOMER = Table(
    "Customer", ("Id", "FirstName", "LastName", "City", "Country", "Phone")
)
ORDER = Table(
    "Order_", ("Id", "OrderDate", "OrderNumber", "CustomerId", "TotalAmount")
)
EXAMPLE_5_3_SCHEMA = Schema((CUSTOMER, ORDER))
