"""SQL COUNT idioms compiled to FOC1(P)-queries (Example 5.3).

Three shapes, mirroring the paper's three SQL statements:

* :func:`group_by_count` — ``SELECT g, COUNT(c) FROM T GROUP BY g``;
* :func:`total_counts` — scalar ``COUNT(*)`` over several tables at once;
* :func:`join_group_count` — grouped counts over a filtered equi-join
  (the "orders per customer in Berlin" query).

Each builder returns a :class:`~repro.core.query.Foc1Query` plus enough
metadata to execute it on a database encoding; the matching
``reference_*`` functions compute the same answers with plain Python, which
the tests and benchmark E9 compare against.

Because structures are sets of tuples, the semantics is SQL's under the
assumption that the counted column is a key (COUNT of *distinct* witnesses
otherwise) — the paper's Example 5.3 makes the same identification.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.evaluator import Foc1Evaluator
from ..core.query import Foc1Query
from ..errors import SignatureError
from ..logic.syntax import (
    Atom,
    CountTerm,
    Formula,
    Term,
    Top,
    conjunction,
    exists_block,
)
from .database import Database, Value, constant_relation_name
from .schema import Table


def _table_atom(table: Table, bindings: Mapping[str, str]) -> Tuple[Atom, List[str]]:
    """Atom for ``table`` with given column -> variable bindings; returns the
    atom and the helper variables used for unbound columns."""
    args: List[str] = []
    helpers: List[str] = []
    for column in table.columns:
        if column in bindings:
            args.append(bindings[column])
        else:
            helper = f"_h_{table.name}_{column}"
            args.append(helper)
            helpers.append(helper)
    return Atom(table.name, tuple(args)), helpers


@dataclass(frozen=True)
class SqlCountQuery:
    """A compiled SQL-COUNT query: the FOC1 query plus execution metadata."""

    query: Foc1Query
    #: constant values that must be materialised as unary relations
    constants: Tuple[Value, ...] = ()
    description: str = ""

    def execute(
        self,
        database: Database,
        evaluator: "Optional[Foc1Evaluator]" = None,
    ) -> List[Tuple]:
        """Run against a database (encoding it on the fly)."""
        structure = database.to_structure(self.constants)
        engine = evaluator if evaluator is not None else Foc1Evaluator()
        return engine.evaluate_query(structure, self.query)


def group_by_count(
    table: Table,
    group_columns: Sequence[str],
    counted_column: str,
    require_group_exists: bool = True,
) -> SqlCountQuery:
    """``SELECT group_columns, COUNT(counted_column) FROM table GROUP BY ...``.

    With ``require_group_exists`` (SQL semantics) only value combinations
    present in the table are returned; without it the query follows the
    paper's literal formulation ``phi(xco) := xco = xco``, which grades
    *every* domain element (including count 0).
    """
    for column in list(group_columns) + [counted_column]:
        table.position(column)
    if counted_column in group_columns:
        raise SignatureError("counted column cannot be a group column")

    group_vars = {column: f"g_{column}" for column in group_columns}
    count_var = f"c_{counted_column}"

    bindings = dict(group_vars)
    bindings[counted_column] = count_var
    atom, helpers = _table_atom(table, bindings)
    body = exists_block(helpers, atom)
    term: Term = CountTerm((count_var,), body)

    head = tuple(group_vars[column] for column in group_columns)
    if require_group_exists:
        exist_atom, exist_helpers = _table_atom(table, dict(group_vars))
        condition: Formula = exists_block(exist_helpers, exist_atom)
    else:
        # The paper's literal formulation: phi(x_co) := x_co = x_co.
        from ..logic.syntax import Eq

        condition = conjunction([Eq(v, v) for v in head])
    query = Foc1Query(head_variables=head, head_terms=(term,), condition=condition)
    return SqlCountQuery(
        query=query,
        description=(
            f"SELECT {', '.join(group_columns)}, COUNT({counted_column}) "
            f"FROM {table.name} GROUP BY {', '.join(group_columns)}"
        ),
    )


def total_counts(tables: Sequence[Table]) -> SqlCountQuery:
    """Scalar ``COUNT(*)`` over each table, in one query (Example 5.3 #2)."""
    terms: List[Term] = []
    for table in tables:
        variables = tuple(f"t_{table.name}_{c}" for c in table.columns)
        terms.append(CountTerm(variables, Atom(table.name, variables)))
    query = Foc1Query(head_variables=(), head_terms=tuple(terms), condition=Top())
    return SqlCountQuery(
        query=query,
        description="SELECT "
        + ", ".join(f"(SELECT COUNT(*) FROM {t.name})" for t in tables),
    )


def join_group_count(
    left: Table,
    right: Table,
    join: Tuple[str, str],
    group_columns: Sequence[str],
    counted_column: str,
    filters: Sequence[Tuple[str, Value]] = (),
) -> SqlCountQuery:
    """Grouped counts over a filtered equi-join (Example 5.3 #3).

    ``join = (left_column, right_column)``; ``group_columns`` come from the
    left table; ``counted_column`` from the right; ``filters`` are
    ``(left_column, constant)`` equality conditions realised through the
    constant-relation device.
    """
    left_join, right_join = join
    left.position(left_join)
    right.position(right_join)
    for column in group_columns:
        left.position(column)
    right.position(counted_column)

    group_vars = {column: f"g_{column}" for column in group_columns}
    join_var = f"j_{left_join}"
    count_var = f"c_{counted_column}"

    # Condition: the group exists on the (filtered) left table.
    condition_bindings = dict(group_vars)
    filter_atoms: List[Formula] = []
    for column, value in filters:
        left.position(column)  # validates the column exists
        variable = condition_bindings.get(column, f"f_{column}")
        condition_bindings[column] = variable
        filter_atoms.append(Atom(constant_relation_name(value), (variable,)))
    condition_atom, condition_helpers = _table_atom(left, condition_bindings)
    bound_condition_vars = [
        v for v in condition_bindings.values() if v not in group_vars.values()
    ] + condition_helpers
    condition = exists_block(
        bound_condition_vars, conjunction([condition_atom] + filter_atoms)
    )

    # Count term: right-rows joined to a left-row matching group and filters.
    left_bindings = dict(condition_bindings)
    left_bindings[left_join] = join_var
    left_atom, left_helpers = _table_atom(left, left_bindings)
    right_bindings = {right_join: join_var, counted_column: count_var}
    right_atom, right_helpers = _table_atom(right, right_bindings)
    inner = conjunction([right_atom, left_atom] + filter_atoms)
    bound = (
        [join_var]
        + [v for v in left_bindings.values() if v.startswith("f_")]
        + left_helpers
        + right_helpers
    )
    term = CountTerm((count_var,), exists_block(bound, inner))

    head = tuple(group_vars[column] for column in group_columns)
    query = Foc1Query(head_variables=head, head_terms=(term,), condition=condition)
    constants = tuple(value for _, value in filters)
    return SqlCountQuery(
        query=query,
        constants=constants,
        description=(
            f"SELECT {', '.join(group_columns)}, COUNT({right.name}.{counted_column}) "
            f"FROM {left.name}, {right.name} WHERE ... GROUP BY ..."
        ),
    )


# ---------------------------------------------------------------------------
# Pure-Python reference implementations (the E9 oracle)
# ---------------------------------------------------------------------------


def reference_group_by_count(
    database: Database,
    table: Table,
    group_columns: Sequence[str],
    counted_column: str,
) -> List[Tuple]:
    positions = [table.position(c) for c in group_columns]
    counted = table.position(counted_column)
    groups: Dict[Tuple, set] = defaultdict(set)
    for row in database.rows(table.name):
        groups[tuple(row[p] for p in positions)].add(row[counted])
    return sorted(
        (key + (len(values),)) for key, values in groups.items()
    )


def reference_total_counts(database: Database, tables: Sequence[Table]) -> Tuple:
    return tuple(database.row_count(t.name) for t in tables)


def reference_join_group_count(
    database: Database,
    left: Table,
    right: Table,
    join: Tuple[str, str],
    group_columns: Sequence[str],
    counted_column: str,
    filters: Sequence[Tuple[str, Value]] = (),
) -> List[Tuple]:
    left_join = left.position(join[0])
    right_join = right.position(join[1])
    group_positions = [left.position(c) for c in group_columns]
    counted = right.position(counted_column)
    filter_positions = [(left.position(c), v) for c, v in filters]

    kept_left = [
        row
        for row in database.rows(left.name)
        if all(row[p] == v for p, v in filter_positions)
    ]
    groups: Dict[Tuple, set] = {
        tuple(row[p] for p in group_positions): set() for row in kept_left
    }
    for left_row in kept_left:
        key = tuple(left_row[p] for p in group_positions)
        for right_row in database.rows(right.name):
            if right_row[right_join] == left_row[left_join]:
                groups[key].add(right_row[counted])
    return sorted(key + (len(values),) for key, values in groups.items())
