"""Beyond COUNT: SUM / AVG / MIN / MAX — the paper's open question (1).

Section 9 asks whether the FOC1(P) approach generalises to further SQL
aggregates.  Counting is special: ``#y-bar.phi`` is a *logical* term.  SUM
and friends additionally need the *values* stored in the database, which
plain relational structures only carry as uninterpreted universe elements.

This module prototypes the natural architecture: the FOC1(P) machinery
does everything logical (defining the groups and enumerating the witness
rows via the engine's guarded solution enumeration), and a thin fold on top
interprets one column's values as integers and aggregates them.  The logic
stays inside FOC1(P); only the final fold steps outside — which is exactly
the boundary the open question is about.

Semantics note: structures are *sets* of tuples, so a row is identified by
its key column (default: the table's first column).  Aggregation is over
the distinct (key, value) pairs of each group — SQL's bag semantics under
the usual "key is a key" assumption, same as the COUNT queries of
Example 5.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.evaluator import Foc1Evaluator
from ..errors import EvaluationError, SignatureError
from ..logic.syntax import Formula, exists_block
from .database import Database, Value
from .schema import Table
from .sqlcount import _table_atom

AGGREGATES: Dict[str, Callable[[List[int]], float]] = {
    "sum": lambda values: sum(values),
    "avg": lambda values: sum(values) / len(values),
    "min": lambda values: min(values),
    "max": lambda values: max(values),
    "count": lambda values: len(values),
}


@dataclass(frozen=True)
class AggregateQuery:
    """``SELECT group_columns, AGG(target_column) FROM table GROUP BY ...``.

    The group condition and the witness enumeration are FOC1(P); the fold
    over ``target_column`` values is the post-processing layer.
    """

    table: Table
    group_columns: Tuple[str, ...]
    target_column: str
    operation: str
    key_column: str

    def __post_init__(self) -> None:
        if self.operation not in AGGREGATES:
            raise SignatureError(
                f"unknown aggregate {self.operation!r}; "
                f"available: {sorted(AGGREGATES)}"
            )
        for column in (*self.group_columns, self.target_column, self.key_column):
            self.table.position(column)
        if self.target_column in self.group_columns:
            raise SignatureError("target column cannot be grouped")

    def witness_formula(self) -> Tuple[Formula, Tuple[str, ...]]:
        """The FOC1 witness formula phi(g-bar, key, target) and its variable
        order: one row of the table per solution."""
        bindings = {column: f"g_{column}" for column in self.group_columns}
        bindings[self.key_column] = "row_key"
        bindings[self.target_column] = "row_value"
        atom, helpers = _table_atom(self.table, bindings)
        formula = exists_block(helpers, atom)
        variables = tuple(bindings[c] for c in self.group_columns) + (
            "row_key",
            "row_value",
        )
        return formula, variables

    def execute(
        self,
        database: Database,
        evaluator: "Optional[Foc1Evaluator]" = None,
    ) -> List[Tuple]:
        """Rows ``group_values + (aggregate,)``, sorted by group."""
        structure = database.to_structure()
        engine = evaluator if evaluator is not None else Foc1Evaluator()
        formula, variables = self.witness_formula()
        groups: Dict[Tuple, Dict[Value, int]] = {}
        group_arity = len(self.group_columns)
        for solution in engine.solutions(structure, formula, variables):
            key = solution[:group_arity]
            row_key, row_value = solution[group_arity], solution[group_arity + 1]
            if self.operation != "count" and not isinstance(row_value, int):
                raise EvaluationError(
                    f"aggregate {self.operation} needs integer values; "
                    f"column {self.target_column} holds {row_value!r}"
                )
            groups.setdefault(key, {})[row_key] = row_value
        fold = AGGREGATES[self.operation]
        return sorted(
            key + (fold(list(per_row.values())),) for key, per_row in groups.items()
        )


def group_by_aggregate(
    table: Table,
    group_columns: Sequence[str],
    target_column: str,
    operation: str,
    key_column: "Optional[str]" = None,
) -> AggregateQuery:
    """Build an :class:`AggregateQuery` (key column defaults to the first)."""
    return AggregateQuery(
        table=table,
        group_columns=tuple(group_columns),
        target_column=target_column,
        operation=operation,
        key_column=key_column if key_column is not None else table.columns[0],
    )


def reference_group_by_aggregate(
    database: Database,
    table: Table,
    group_columns: Sequence[str],
    target_column: str,
    operation: str,
    key_column: "Optional[str]" = None,
) -> List[Tuple]:
    """Plain-Python oracle with the same (key, value) semantics."""
    key_column = key_column if key_column is not None else table.columns[0]
    group_positions = [table.position(c) for c in group_columns]
    target = table.position(target_column)
    key = table.position(key_column)
    groups: Dict[Tuple, Dict[Value, int]] = {}
    for row in database.rows(table.name):
        group = tuple(row[p] for p in group_positions)
        groups.setdefault(group, {})[row[key]] = row[target]
    fold = AGGREGATES[operation]
    return sorted(
        group + (fold(list(per_row.values())),) for group, per_row in groups.items()
    )
