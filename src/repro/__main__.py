"""Command-line interface: evaluate FOC1(P) queries from the shell.

Usage examples::

    # model-check a sentence against a graph given as an edge list
    python -m repro check graph.txt "forall x. @geq1(#(y). E(x, y))"

    # count the solutions of a formula
    python -m repro count graph.txt "E(x, y) & E(y, z)" --vars x y z

    # evaluate a ground counting term
    python -m repro term graph.txt "#(x, y). E(x, y)"

    # per-element values of a unary term
    python -m repro unary graph.txt "#(y). E(x, y)" --var x

    # inspect a structure / a formula
    python -m repro info graph.txt
    python -m repro formula "exists x. @even(#(y). E(x, y))"

    # render the compiled query plan (stratification stages, count DAG,
    # guard annotations) without evaluating anything
    python -m repro explain "exists x. @even(#(y). E(x, y))"
    python -m repro explain --structure graph.txt "#(x, y). E(x, y)"

Structures come from ``.json`` files (see :mod:`repro.io`) or edge lists.

Resource governance (see ``docs/ROBUSTNESS.md``): ``--timeout`` and
``--max-steps`` bound the evaluation; ``--engine robust`` runs the
fallback cascade (main algorithm → FOC1 engine → brute force) in fixed
order, and ``--engine auto`` lets the cost model reorder the cascade to
try the predicted-cheapest stage first (see ``docs/ARCHITECTURE.md``,
cost layer).
``--retries`` retries failed parallel shards with deterministic backoff;
``--on-shard-failure salvage`` returns the completed shards of a partly
failed parallel run instead of raising.

Approximation (see ``docs/ENGINES.md``): ``--engine approx`` answers
``count``/``term`` with a seeded (1±ε, δ) sampling estimate —
``--epsilon/--delta/--seed`` control the target and reproducibility, the
estimate prints with an ``# approximate:`` stderr marker and
``--report-json`` emits ``"approximate": true``.  With the cascade
engines, ``--approx-fallback`` adds the sampler as a last exact-failure
fallback stage.

Preemption (see ``docs/ROBUSTNESS.md``): with ``--checkpoint PATH`` the
budget becomes a *quantum* — exhaustion suspends the evaluation, writes a
resumable checkpoint to PATH and exits with code 6 instead of killing the
run; ``--resume PATH`` restores a previous checkpoint (already-built
strata, memo contents and completed parallel shards are never recomputed)
and continues.  ``--report-json PATH`` (robust/auto engines) dumps the
structured cascade report, including the routing decision, as JSON.

Serving (see ``docs/SERVING.md``): ``python -m repro serve STRUCTURE
WORKLOAD.jsonl`` replays a JSONL workload of tenant-attributed requests
through the multi-tenant :class:`~repro.serve.QueryService` — admission
control, fair-share scheduling and preemptible quanta included — and
emits one JSON line per request plus a summary on stderr.

Exit codes: 0 on success (for ``check``: also when the answer is False —
the answer is printed, not encoded), 2 on bad input, 3 on an unexpected
internal error, 4 on budget exhaustion, 5 on a partial (salvaged) result,
6 on suspension (resumable via ``--resume``), 130 on interrupt (SIGINT /
SIGTERM; with an active ``--checkpoint``/``--resume`` session the
interrupt instead writes a final checkpoint and exits with 6 — the
interrupted work is resumable, not lost).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import obs
from .approx.evaluator import ApproxEvaluator
from .approx.result import ApproxResult
from .core.baseline import BruteForceEvaluator
from .core.evaluator import Foc1Evaluator
from .errors import (
    BudgetExceededError,
    CheckpointError,
    ReproError,
    SuspendedError,
)
from .io import load_structure
from .logic.foc1 import assert_foc1, fragment_summary
from .logic.parser import parse_formula, parse_term
from .logic.printer import pretty
from .logic.syntax import Expression, free_variables
from .plan import (
    PlanOptions,
    canonicalise,
    compile_plan,
    default_plan_cache,
    infer_signature,
)
from .robust import (
    EvaluationBudget,
    PartialResult,
    RetryPolicy,
    RobustEvaluator,
)
from .robust.checkpoint import (
    CheckpointSession,
    checkpoint_session,
    fingerprint,
    load_checkpoint,
    save_checkpoint,
)
from .sparse.measures import sparsity_report

EXIT_OK = 0
EXIT_BAD_INPUT = 2
EXIT_INTERNAL = 3
EXIT_BUDGET = 4
EXIT_PARTIAL = 5
EXIT_SUSPENDED = 6
#: The conventional "terminated by SIGINT" shell code (128 + 2).
EXIT_INTERRUPTED = 130


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FOC1(P) query evaluation (Grohe & Schweikardt, PODS 2018)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="model-check a sentence")
    check.add_argument("structure")
    check.add_argument("sentence")

    count = commands.add_parser("count", help="count solutions of a formula")
    count.add_argument("structure")
    count.add_argument("formula")
    count.add_argument("--vars", nargs="+", required=True)

    term = commands.add_parser("term", help="evaluate a ground counting term")
    term.add_argument("structure")
    term.add_argument("term")

    unary = commands.add_parser("unary", help="evaluate a unary term everywhere")
    unary.add_argument("structure")
    unary.add_argument("term")
    unary.add_argument("--var", required=True)

    info = commands.add_parser("info", help="summarise a structure")
    info.add_argument("structure")

    formula = commands.add_parser("formula", help="parse and analyse a formula")
    formula.add_argument("text")

    explain = commands.add_parser(
        "explain",
        help="compile an expression and render its query plan "
        "(stratification stages, count DAG, guards) without evaluating",
    )
    explain.add_argument("expression", help="a formula or a counting term")
    explain.add_argument(
        "--structure",
        help="take the signature from this structure file "
        "(default: infer it from the expression's relation atoms)",
    )
    explain.add_argument(
        "--vars",
        nargs="+",
        help="compile a count plan over these variables "
        "(default for a formula with free variables: all of them)",
    )
    explain.add_argument(
        "--no-fragment-check",
        action="store_true",
        help="allow full FOC(P) expressions",
    )
    explain.add_argument(
        "--no-factoring",
        action="store_true",
        help="compile without the Lemma 6.4 component factoring",
    )
    explain.add_argument(
        "--no-guards",
        action="store_true",
        help="compile without guard annotations (plain scans)",
    )

    serve = commands.add_parser(
        "serve",
        help="replay a JSONL workload through the multi-tenant "
        "preemptible query service (admission control, fair-share "
        "scheduling, optional degradation; see docs/SERVING.md)",
    )
    serve.add_argument("structure")
    serve.add_argument(
        "workload",
        help="JSONL file: one request object per line, e.g. "
        '{"tenant": "a", "op": "count", "query": "E(x, y)", '
        '"vars": ["x", "y"], "id": "r1"}',
    )
    serve.add_argument(
        "--serve-workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent quantum slots (default: 2)",
    )
    serve.add_argument(
        "--clients",
        type=int,
        default=4,
        metavar="N",
        help="closed-loop client coroutines replaying the workload "
        "(default: 4; raise beyond the quotas to force load shedding)",
    )
    serve.add_argument(
        "--quantum-steps",
        type=int,
        default=20_000,
        metavar="N",
        help="preemptible budget quantum per dispatch (default: 20000)",
    )
    serve.add_argument(
        "--batch-max",
        type=int,
        default=8,
        metavar="N",
        help="compatible count requests merged per dispatch "
        "(default: 8; 1 disables batching)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        metavar="N",
        help="per-tenant in-flight quota, queued + running (default: 8)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=6,
        metavar="N",
        help="per-tenant waiting-queue bound (default: 6)",
    )
    serve.add_argument(
        "--step-quota",
        type=int,
        metavar="N",
        help="per-tenant step quota per accounting window "
        "(default: unlimited)",
    )
    serve.add_argument(
        "--max-total-inflight",
        type=int,
        metavar="N",
        help="global in-flight ceiling (default: serve workers x 8)",
    )
    serve.add_argument(
        "--degrade-cost",
        type=float,
        metavar="STEPS",
        help="predicted exact cost above which count-only requests "
        "degrade to the sampling tier (default: never)",
    )
    serve.add_argument(
        "--degrade-saturation",
        type=float,
        metavar="LEVEL",
        help="smoothed saturation level (1.0 = at capacity) above which "
        "count-only requests degrade to the sampling tier "
        "(default: never)",
    )
    serve.add_argument(
        "--epsilon",
        type=float,
        default=0.1,
        metavar="EPS",
        help="accuracy target for degraded answers (default: 0.1)",
    )
    serve.add_argument(
        "--delta",
        type=float,
        default=0.05,
        metavar="DELTA",
        help="failure probability for degraded answers (default: 0.05)",
    )
    serve.add_argument(
        "--drain-grace",
        type=int,
        metavar="QUANTA",
        help="on shutdown, grant each in-flight query at most this many "
        "further quanta before handing back a suspended response with "
        "its checkpoint (default: run everything to completion)",
    )
    serve.add_argument(
        "--eval-workers",
        type=int,
        metavar="N",
        help="per-quantum engine parallelism (default: REPRO_WORKERS)",
    )
    serve.add_argument(
        "--no-fragment-check",
        action="store_true",
        help="allow full FOC(P) requests",
    )
    serve.add_argument(
        "--output",
        metavar="PATH",
        help="write per-request JSONL here instead of stdout",
    )
    serve.add_argument(
        "--metrics",
        action="store_true",
        help="record serve.* counters and print a snapshot to stderr",
    )

    for sub in (check, count, term, unary):
        sub.add_argument(
            "--no-fragment-check",
            action="store_true",
            help="allow full FOC(P) (may be very slow; see Section 4)",
        )
        sub.add_argument(
            "--engine",
            choices=("foc1", "robust", "auto", "baseline", "approx"),
            default="foc1",
            help="evaluation engine: the FOC1 engine (default), the robust "
            "fallback cascade in fixed order, 'auto' (the cascade with "
            "cost-based routing picking the predicted-cheapest stage "
            "first), the brute-force baseline, or 'approx' — seeded "
            "(1±eps, delta) sampling for count/term (the answer is an "
            "estimate, marked as such on stderr and in --report-json)",
        )
        sub.add_argument(
            "--epsilon",
            type=float,
            default=0.1,
            metavar="EPS",
            help="relative accuracy target for the approx engine/stage "
            "(default: 0.1)",
        )
        sub.add_argument(
            "--delta",
            type=float,
            default=0.05,
            metavar="DELTA",
            help="failure probability for the approx engine/stage "
            "(default: 0.05)",
        )
        sub.add_argument(
            "--seed",
            type=int,
            default=0,
            metavar="N",
            help="reproducibility seed for the approx engine/stage: "
            "identical (query, structure, seed, eps, delta) inputs give "
            "byte-identical estimates (default: 0)",
        )
        sub.add_argument(
            "--approx-fallback",
            action="store_true",
            help="with --engine robust/auto: add the sampling tier as a "
            "last cascade stage for count/term (auto routing may lead "
            "with it only when every exact stage is predicted to blow "
            "the budget); the report then carries approximate=true",
        )
        sub.add_argument(
            "--timeout",
            type=float,
            metavar="SECONDS",
            help="wall-clock budget; exhaustion exits with code 4",
        )
        sub.add_argument(
            "--max-steps",
            type=int,
            metavar="N",
            help="cooperative step budget; exhaustion exits with code 4",
        )
        sub.add_argument(
            "--workers",
            type=int,
            metavar="N",
            help="worker count for the parallel evaluation paths "
            "(default: REPRO_WORKERS or 1 = serial; see docs/PARALLEL.md)",
        )
        sub.add_argument(
            "--retries",
            type=int,
            default=0,
            metavar="N",
            help="retry each failed parallel shard up to N times with "
            "deterministic backoff (default: 0 = fail fast)",
        )
        sub.add_argument(
            "--on-shard-failure",
            choices=("raise", "salvage"),
            default="raise",
            help="'raise' (default) fails the whole query when a shard "
            "dies after its retries; 'salvage' returns the completed "
            "shards as a partial result and exits with code 5",
        )
        sub.add_argument(
            "--checkpoint",
            metavar="PATH",
            help="preemptible mode: budget exhaustion suspends the "
            "evaluation, writes a resumable checkpoint to PATH and exits "
            "with code 6 instead of failing with code 4",
        )
        sub.add_argument(
            "--resume",
            metavar="PATH",
            help="resume from the checkpoint at PATH (must match this "
            "query and structure); implies preemptible mode — a further "
            "suspension rewrites PATH unless --checkpoint names another",
        )
        sub.add_argument(
            "--report-json",
            metavar="PATH",
            dest="report_json",
            help="write the structured cascade report (stages, breaker "
            "states, partial coverage, checkpoint info, routing decision) "
            "as JSON to PATH; requires --engine robust or auto",
        )
        sub.add_argument(
            "--trace",
            action="store_true",
            help="record spans around the pipeline and print a timing "
            "report to stderr (see docs/OBSERVABILITY.md)",
        )
        sub.add_argument(
            "--metrics",
            action="store_true",
            help="record engine counters/histograms and print a snapshot "
            "to stderr",
        )
    return parser


def _install_sigterm_handler() -> None:
    """Make SIGTERM interrupt like SIGINT (same graceful-exit path).

    Service managers send SIGTERM; mapping it onto
    :class:`KeyboardInterrupt` routes both signals through one handler —
    checkpoint-and-exit-6 under an active session, one-line
    ``interrupted`` + 130 otherwise.  Only the main thread may install
    signal handlers; embedded callers (tests, servers) skip silently.
    """
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        return

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except (ValueError, OSError):  # pragma: no cover — exotic platforms
        pass


def main(argv: "Optional[List[str]]" = None) -> int:
    args = _build_parser().parse_args(argv)
    obs.configure_from_env()
    if getattr(args, "trace", False) and obs.active_tracer() is None:
        obs.set_tracer(obs.Tracer())
    if getattr(args, "metrics", False) and obs.active_metrics() is None:
        obs.set_metrics(obs.MetricsRegistry())
    _install_sigterm_handler()
    try:
        return _dispatch(args)
    except SuspendedError as error:
        # Normally handled (checkpointed) inside _run_eval; reaching this
        # handler means a preemptible budget suspended outside a
        # checkpointing context — still a resumable outcome, code 6.
        print(f"suspended: {error}", file=sys.stderr)
        return EXIT_SUSPENDED
    except BudgetExceededError as error:
        print(f"budget exhausted: {error}", file=sys.stderr)
        return EXIT_BUDGET
    except (ReproError, FileNotFoundError, IsADirectoryError, PermissionError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_BAD_INPUT
    except KeyboardInterrupt:
        # Graceful interrupt: never a raw traceback.  (When a checkpoint
        # session is active, _run_eval already converted the interrupt
        # into a saved checkpoint and exit code 6 before we get here.)
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except Exception as error:  # noqa: BLE001 — last-resort CLI guard
        # Never a raw traceback: one line, distinct exit code, so shell
        # callers can tell "our bug" (3) from "your input" (2) or "too
        # expensive" (4).
        print(
            f"internal error: {type(error).__name__}: {error}", file=sys.stderr
        )
        return EXIT_INTERNAL


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "formula":
        phi = parse_formula(args.text)
        print(pretty(phi))
        for key, value in fragment_summary(phi).items():
            print(f"  {key}: {value}")
        return 0

    if args.command == "info":
        structure = load_structure(args.structure)
        report = sparsity_report(structure)
        print(json.dumps(report, indent=2, default=str))
        return 0

    if args.command == "explain":
        return _explain(args)

    if args.command == "serve":
        return _serve(args)

    return _run_eval(args)


def _query_key(args: argparse.Namespace, expression: Expression, structure) -> str:
    """The checkpoint fingerprint: operation + canonical text + structure."""
    text = pretty(canonicalise(expression))
    if args.command == "count":
        text += f" | vars={','.join(args.vars)}"
    elif args.command == "unary":
        text += f" | var={args.var}"
    return fingerprint(args.command, text, structure)


def _run_eval(args: argparse.Namespace) -> int:
    """The four evaluation subcommands, with optional suspend/resume."""
    structure = load_structure(args.structure)
    engine, budget = _make_engine(args)

    if args.command == "check":
        expression: Expression = parse_formula(args.sentence)
    elif args.command == "count":
        expression = parse_formula(args.formula)
    else:
        expression = parse_term(args.term)

    checkpoint_path = getattr(args, "checkpoint", None)
    resume_path = getattr(args, "resume", None)
    session: "Optional[CheckpointSession]" = None
    if checkpoint_path is not None or resume_path is not None:
        key = _query_key(args, expression, structure)
        if resume_path is not None:
            previous = load_checkpoint(resume_path)
            if previous.query_key != key:
                raise CheckpointError(
                    f"checkpoint {resume_path!r} was taken for a different "
                    "query or structure; refusing to resume"
                )
            session = CheckpointSession(resume=previous)
        else:
            session = CheckpointSession(
                operation=args.command, query_key=key
            )

    def evaluate() -> int:
        if args.command == "check":
            return _print_result(
                engine, engine.model_check(structure, expression), args
            )
        if args.command == "count":
            return _print_result(
                engine, engine.count(structure, expression, args.vars), args
            )
        if args.command == "term":
            return _print_result(
                engine, engine.ground_term_value(structure, expression), args
            )
        if args.command == "unary":
            values = engine.unary_term_values(structure, expression, args.var)
            exit_code = EXIT_OK
            if isinstance(values, PartialResult):
                print(f"# partial: {values.summary()}", file=sys.stderr)
                exit_code = EXIT_PARTIAL
                values = values.value
            for element in structure.universe_order:
                if element in values:
                    print(f"{element}\t{values[element]}")
            _emit_report(engine, args)
            return exit_code
        raise AssertionError("unreachable")

    if session is None:
        return evaluate()
    with checkpoint_session(session):
        try:
            return evaluate()
        except SuspendedError as error:
            checkpoint = error.checkpoint
            if checkpoint is None:
                checkpoint = session.snapshot(
                    budget.steps if budget is not None else 0
                )
                error.checkpoint = checkpoint
            target = checkpoint_path if checkpoint_path is not None else resume_path
            save_checkpoint(checkpoint, target)
            print(f"# suspended: {error}", file=sys.stderr)
            print(
                f"# checkpoint written to {target} ({checkpoint.summary()}); "
                f"resume with --resume {target}",
                file=sys.stderr,
            )
            _emit_report(engine, args, checkpoint=checkpoint)
            return EXIT_SUSPENDED
        except KeyboardInterrupt:
            # SIGINT/SIGTERM with an active session: the operator asked
            # us to stop, not to lose the work — snapshot whatever the
            # session has recorded so far (restored state only ever
            # skips work) and exit resumable, like a suspension.
            checkpoint = session.snapshot(
                budget.steps if budget is not None else 0
            )
            target = checkpoint_path if checkpoint_path is not None else resume_path
            save_checkpoint(checkpoint, target)
            print("# interrupted: saving checkpoint", file=sys.stderr)
            print(
                f"# checkpoint written to {target} ({checkpoint.summary()}); "
                f"resume with --resume {target}",
                file=sys.stderr,
            )
            return EXIT_SUSPENDED


def _print_result(engine, result, args: argparse.Namespace) -> int:
    """Print one scalar answer; a salvaged partial result exits with 5."""
    if isinstance(result, PartialResult):
        print(f"# partial: {result.summary()}", file=sys.stderr)
        print(result.value)
        _emit_report(engine, args)
        return EXIT_PARTIAL
    if isinstance(result, ApproxResult):
        # An estimate never prints as a bare exact-looking count without
        # its marker: the rounded value goes to stdout, the interval and
        # reproducibility tuple to stderr.
        print(f"# approximate: {result.summary()}", file=sys.stderr)
        print(result.value)
        path = getattr(args, "report_json", None)
        if path is not None and not isinstance(engine, RobustEvaluator):
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(
                    result.to_dict(), handle, indent=2, sort_keys=True
                )
                handle.write("\n")
        _emit_report(engine, args)
        return EXIT_OK
    print(result)
    _emit_report(engine, args)
    return EXIT_OK


def _parse_expression(text: str) -> Expression:
    """Parse ``text`` as a formula, falling back to a counting term."""
    try:
        return parse_formula(text)
    except ReproError as formula_error:
        try:
            return parse_term(text)
        except ReproError:
            raise formula_error from None


def _explain(args: argparse.Namespace) -> int:
    """Compile (or fetch) the plan for one expression and render it."""
    expression = _parse_expression(args.expression)
    if not args.no_fragment_check:
        assert_foc1(expression)
    free = sorted(free_variables(expression))
    # Pick the plan kind the way the engine facade would.
    from .logic.syntax import Add, CountTerm, IntTerm, Mul

    is_term = isinstance(expression, (CountTerm, IntTerm, Add, Mul))
    if is_term:
        if len(free) > 1:
            raise ReproError(
                f"term has free variables {free}; at most one is supported"
            )
        kind = "unary_term" if free else "ground_term"
        variables = tuple(free)
    elif args.vars:
        missing = set(free) - set(args.vars)
        if missing:
            raise ReproError(f"free variables {sorted(missing)} not in --vars")
        kind, variables = "count", tuple(args.vars)
    elif free:
        kind, variables = "count", tuple(free)
    else:
        kind, variables = "model_check", ()

    if args.structure is not None:
        signature = load_structure(args.structure).signature
    else:
        signature = infer_signature([expression])
    options = PlanOptions(
        factoring=not args.no_factoring, guards=not args.no_guards
    )
    cache = default_plan_cache()
    canon = canonicalise(expression)
    key = (kind, (canon,), variables, signature, options)
    plan = cache.get_or_compile(
        key, lambda: compile_plan(kind, (canon,), variables, signature, options)
    )
    print(plan.explain())
    stats = cache.stats()
    rate = stats["hit_rate"]
    rate_text = f"{rate:.2f}" if rate is not None else "n/a"
    print(
        "plan cache: "
        f"size={stats['size']}/{stats['capacity']} "
        f"hits={stats['hits']} misses={stats['misses']} "
        f"evictions={stats['evictions']} hit_rate={rate_text}"
    )
    return 0


def _load_workload(path: str, structure) -> list:
    """Parse a JSONL workload file into :class:`QueryRequest` objects."""
    from .serve import QueryRequest

    requests = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError as error:
                raise ReproError(
                    f"workload line {lineno}: invalid JSON ({error})"
                ) from None
            if not isinstance(raw, dict) or "query" not in raw:
                raise ReproError(
                    f"workload line {lineno}: expected an object with a "
                    "'query' field"
                )
            requests.append(
                QueryRequest(
                    tenant=str(raw.get("tenant", "default")),
                    operation=str(raw.get("op", raw.get("operation", "count"))),
                    structure=structure,
                    expression=str(raw["query"]),
                    variables=tuple(raw.get("vars", ())),
                    variable=str(raw.get("var", "")),
                    request_id=str(raw.get("id", lineno)),
                    seed=int(raw.get("seed", 0)),
                )
            )
    if not requests:
        raise ReproError(f"workload {path!r} contains no requests")
    return requests


def _serve(args: argparse.Namespace) -> int:
    """Replay a JSONL workload through the multi-tenant query service."""
    import asyncio

    from .errors import AdmissionError
    from .serve import QueryService, TenantQuota

    structure = load_structure(args.structure)
    requests = _load_workload(args.workload, structure)
    try:
        quota = TenantQuota(
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            step_quota=args.step_quota,
        )
        service = QueryService(
            workers=args.serve_workers,
            eval_workers=args.eval_workers,
            quantum_steps=args.quantum_steps,
            quota=quota,
            max_total_inflight=args.max_total_inflight,
            batch_max=args.batch_max,
            degrade_cost_threshold=args.degrade_cost,
            degrade_saturation=args.degrade_saturation,
            epsilon=args.epsilon,
            delta=args.delta,
            check_fragment=not args.no_fragment_check,
            metrics=obs.active_metrics(),
        )
    except ValueError as error:
        raise ReproError(str(error)) from None
    if args.clients < 1:
        raise ReproError("--clients must be a positive integer")

    async def run() -> list:
        results: list = [None] * len(requests)
        cursor = 0

        async def client() -> None:
            nonlocal cursor
            while cursor < len(requests):
                index = cursor
                cursor += 1
                try:
                    results[index] = await service.submit(requests[index])
                except (AdmissionError, ReproError) as error:
                    results[index] = error

        await service.start()
        try:
            await asyncio.gather(
                *(client() for _ in range(min(args.clients, len(requests))))
            )
        finally:
            await service.drain(grace=args.drain_grace)
        return results

    results = asyncio.run(run())

    lines = []
    shed = errors = 0
    for request, outcome in zip(requests, results):
        if isinstance(outcome, AdmissionError):
            shed += 1
            lines.append(
                {
                    "schema": "repro-serve-response/1",
                    "request_id": request.request_id,
                    "tenant": request.tenant,
                    "operation": request.operation,
                    "status": "shed",
                    "reason": outcome.reason,
                }
            )
        elif isinstance(outcome, Exception):
            errors += 1
            lines.append(
                {
                    "schema": "repro-serve-response/1",
                    "request_id": request.request_id,
                    "tenant": request.tenant,
                    "operation": request.operation,
                    "status": "error",
                    "error": str(outcome),
                }
            )
        else:
            lines.append(outcome.to_dict())
    payload = "\n".join(json.dumps(line, sort_keys=True) for line in lines)
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    else:
        print(payload)

    stats = service.stats()
    summary = {
        "requests": len(requests),
        "completed": stats["completed"],
        "shed": shed,
        "errors": errors,
        "resumes": stats["resumes"],
        "degraded": stats["degraded"],
        "drain_suspended": stats["drain_suspended"],
        "orphaned_checkpoints": stats["orphaned_checkpoints"],
    }
    print(f"# serve {json.dumps(summary, sort_keys=True)}", file=sys.stderr)
    _emit_instruments()
    return EXIT_PARTIAL if errors else EXIT_OK


def _emit_report(engine, args: argparse.Namespace, checkpoint=None) -> None:
    """For the robust engine, say on stderr which cascade stage answered
    (and dump the structured report when ``--report-json`` asks for it)."""
    if isinstance(engine, RobustEvaluator) and engine.last_report is not None:
        print(f"# {engine.last_report.summary()}", file=sys.stderr)
        path = getattr(args, "report_json", None)
        if path is not None:
            payload = engine.last_report.to_dict(
                breaker=engine.breaker,
                checkpoint=checkpoint.to_dict() if checkpoint is not None else None,
            )
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True, default=str)
                handle.write("\n")
    _emit_instruments()


def _emit_instruments() -> None:
    """Print whatever tracer/metrics are active to stderr, then reset them."""
    tracer = obs.active_tracer()
    if tracer is not None:
        for line in tracer.report():
            print(f"# trace {line}", file=sys.stderr)
    registry = obs.active_metrics()
    if registry is not None:
        snapshot = registry.snapshot()
        rate = registry.memo_hit_rate()
        if rate is not None:
            snapshot["memo_hit_rate"] = rate
        print(f"# metrics {json.dumps(snapshot, sort_keys=True)}", file=sys.stderr)


def _make_engine(args: argparse.Namespace):
    """Build ``(engine, budget)`` after validating the resource flags.

    Nonsensical limits are the caller's mistake (exit 2), not ours: a
    zero or negative ``--timeout`` / ``--max-steps`` would silently
    produce a budget that is exhausted before the first step.
    """
    timeout = getattr(args, "timeout", None)
    max_steps = getattr(args, "max_steps", None)
    if timeout is not None and timeout < 0:
        raise ReproError(f"--timeout must be non-negative, got {timeout}")
    if timeout is not None and timeout == 0:
        raise ReproError(
            f"--timeout must be a positive number of seconds, got {timeout}"
        )
    if max_steps is not None and max_steps < 0:
        raise ReproError(f"--max-steps must be non-negative, got {max_steps}")
    if max_steps is not None and max_steps == 0:
        raise ReproError(
            f"--max-steps must be a positive integer, got {max_steps}"
        )
    preemptible = (
        getattr(args, "checkpoint", None) is not None
        or getattr(args, "resume", None) is not None
    )
    budget = None
    if timeout is not None or max_steps is not None:
        try:
            budget = EvaluationBudget(
                deadline=timeout, max_steps=max_steps, preemptible=preemptible
            )
        except ValueError as error:
            raise ReproError(str(error)) from None
    check_fragment = not args.no_fragment_check
    workers = getattr(args, "workers", None)
    if workers is not None and workers < 1:
        raise ReproError("--workers must be a positive integer")
    retries = getattr(args, "retries", 0)
    if retries < 0:
        raise ReproError("--retries must be >= 0")
    retry = RetryPolicy(retries=retries) if retries > 0 else None
    on_shard_failure = getattr(args, "on_shard_failure", "raise")
    if (
        getattr(args, "report_json", None) is not None
        and args.engine not in ("robust", "auto", "approx")
    ):
        raise ReproError(
            "--report-json requires --engine robust, auto or approx"
        )
    if args.engine == "approx" and args.command not in ("count", "term"):
        raise ReproError(
            "--engine approx evaluates counts and ground counting terms "
            "only (use --engine robust --approx-fallback elsewhere)"
        )
    if getattr(args, "approx_fallback", False) and args.engine not in (
        "robust",
        "auto",
    ):
        raise ReproError("--approx-fallback requires --engine robust or auto")
    if args.engine in ("robust", "auto"):
        engine = RobustEvaluator(
            budget=budget,
            check_fragment=check_fragment,
            workers=workers,
            retry=retry,
            on_shard_failure=on_shard_failure,
            route="auto" if args.engine == "auto" else "cascade",
            approx=getattr(args, "approx_fallback", False),
            epsilon=getattr(args, "epsilon", 0.1),
            delta=getattr(args, "delta", 0.05),
            approx_seed=getattr(args, "seed", 0),
        )
    elif args.engine == "approx":
        # Sampling works on all of FOC(P): no fragment check to apply.
        engine = ApproxEvaluator(
            budget=budget,
            epsilon=getattr(args, "epsilon", 0.1),
            delta=getattr(args, "delta", 0.05),
            seed=getattr(args, "seed", 0),
            workers=workers,
        )
    elif args.engine == "baseline":
        # The brute-force oracle stays deliberately serial.
        engine = BruteForceEvaluator(budget=budget, check_fragment=check_fragment)
    else:
        engine = Foc1Evaluator(
            check_fragment=check_fragment,
            budget=budget,
            workers=workers,
            retry=retry,
            on_shard_failure=on_shard_failure,
        )
    return engine, budget


if __name__ == "__main__":
    sys.exit(main())
