"""Command-line interface: evaluate FOC1(P) queries from the shell.

Usage examples::

    # model-check a sentence against a graph given as an edge list
    python -m repro check graph.txt "forall x. @geq1(#(y). E(x, y))"

    # count the solutions of a formula
    python -m repro count graph.txt "E(x, y) & E(y, z)" --vars x y z

    # evaluate a ground counting term
    python -m repro term graph.txt "#(x, y). E(x, y)"

    # per-element values of a unary term
    python -m repro unary graph.txt "#(y). E(x, y)" --var x

    # inspect a structure / a formula
    python -m repro info graph.txt
    python -m repro formula "exists x. @even(#(y). E(x, y))"

Structures come from ``.json`` files (see :mod:`repro.io`) or edge lists.
Exit code 0 on success (for ``check``: also when the answer is False —
the answer is printed, not encoded), 2 on bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .core.evaluator import Foc1Evaluator
from .errors import ReproError
from .io import load_structure
from .logic.foc1 import fragment_summary
from .logic.parser import parse_formula, parse_term
from .logic.printer import pretty
from .sparse.measures import sparsity_report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FOC1(P) query evaluation (Grohe & Schweikardt, PODS 2018)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="model-check a sentence")
    check.add_argument("structure")
    check.add_argument("sentence")

    count = commands.add_parser("count", help="count solutions of a formula")
    count.add_argument("structure")
    count.add_argument("formula")
    count.add_argument("--vars", nargs="+", required=True)

    term = commands.add_parser("term", help="evaluate a ground counting term")
    term.add_argument("structure")
    term.add_argument("term")

    unary = commands.add_parser("unary", help="evaluate a unary term everywhere")
    unary.add_argument("structure")
    unary.add_argument("term")
    unary.add_argument("--var", required=True)

    info = commands.add_parser("info", help="summarise a structure")
    info.add_argument("structure")

    formula = commands.add_parser("formula", help="parse and analyse a formula")
    formula.add_argument("text")

    for sub in (check, count, term, unary):
        sub.add_argument(
            "--no-fragment-check",
            action="store_true",
            help="allow full FOC(P) (may be very slow; see Section 4)",
        )
    return parser


def main(argv: "Optional[List[str]]" = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "formula":
        phi = parse_formula(args.text)
        print(pretty(phi))
        for key, value in fragment_summary(phi).items():
            print(f"  {key}: {value}")
        return 0

    if args.command == "info":
        structure = load_structure(args.structure)
        report = sparsity_report(structure)
        print(json.dumps(report, indent=2, default=str))
        return 0

    structure = load_structure(args.structure)
    engine = Foc1Evaluator(check_fragment=not args.no_fragment_check)

    if args.command == "check":
        sentence = parse_formula(args.sentence)
        print(engine.model_check(structure, sentence))
        return 0
    if args.command == "count":
        phi = parse_formula(args.formula)
        print(engine.count(structure, phi, args.vars))
        return 0
    if args.command == "term":
        t = parse_term(args.term)
        print(engine.ground_term_value(structure, t))
        return 0
    if args.command == "unary":
        t = parse_term(args.term)
        values = engine.unary_term_values(structure, t, args.var)
        for element in structure.universe_order:
            print(f"{element}\t{values[element]}")
        return 0
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
