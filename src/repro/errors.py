"""Typed exceptions shared across the repro package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch the whole family with a single ``except`` clause while tests can pin
down the precise failure mode.
"""

from __future__ import annotations


def _rebuild_error(cls: type, args: tuple, state: dict) -> "ReproError":
    """Reconstruct a pickled :class:`ReproError` without calling ``__init__``.

    Several subclasses take keyword-only or multi-positional constructor
    arguments (:class:`BudgetExceededError`, :class:`FaultInjectedError`)
    while storing only the formatted message in ``args``; the default
    ``Exception`` reduction would call ``cls(*args)`` and crash or lose the
    structured attributes when an error crosses a process boundary.
    """
    error = cls.__new__(cls)
    error.args = args
    if state:
        error.__dict__.update(state)
    return error


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    All subclasses pickle faithfully — type, message *and* structured
    attributes survive a process boundary — so the process worker backend
    can re-raise the original error instead of a lossy generic wrapper.
    """

    def __reduce__(self):
        return (_rebuild_error, (type(self), self.args, dict(self.__dict__)))


class SignatureError(ReproError):
    """A relation symbol or signature was used inconsistently.

    Raised for duplicate symbol names, negative arities, or references to
    symbols that are not part of the signature at hand.
    """


class ArityError(ReproError):
    """A tuple's length does not match the arity of its relation symbol."""


class UniverseError(ReproError):
    """A structure's universe is invalid (empty) or an element is missing."""


class ParseError(ReproError):
    """The FOC(P) parser rejected its input.

    Attributes
    ----------
    position:
        Character offset in the input at which the error was detected, or
        ``None`` when the failure is not tied to a specific location.
    """

    def __init__(self, message: str, position: "int | None" = None):
        super().__init__(message if position is None else f"{message} (at position {position})")
        self.position = position


class FormulaError(ReproError):
    """A formula or counting term is structurally malformed.

    Examples: a counting term binding the same variable twice, a numerical
    predicate applied to the wrong number of terms, or a relation atom whose
    symbol does not belong to the expected signature.
    """


class FragmentError(ReproError):
    """An expression lies outside the syntactic fragment an engine supports.

    In particular, feeding a full-FOC(P) formula that violates rule (4')
    of Definition 5.1 to the FOC1(P) evaluator raises this error.
    """


class EvaluationError(ReproError):
    """Evaluation failed: unbound free variable, missing relation, etc."""


class PredicateError(ReproError):
    """A numerical predicate was applied to arguments of the wrong arity,
    or a predicate name is not part of the active collection."""


class BudgetExceededError(ReproError):
    """An evaluation exhausted its resource budget and was cancelled.

    Raised cooperatively from the engines' hot loops when an
    :class:`~repro.robust.budget.EvaluationBudget` runs out of wall-clock
    time or steps.  The paper's Section 4 shows general FOC(P) evaluation
    is AW[*]-hard, so unbounded runs are unavoidable without such a guard.

    Attributes
    ----------
    reason:
        ``"deadline"`` or ``"steps"`` — which limit was hit.
    site:
        Name of the cooperative checkpoint that observed the exhaustion
        (e.g. ``"evaluator.enumerate"``), or ``""`` when unknown.
    steps / steps_spent:
        Steps performed before cancellation (partial-progress stat;
        ``steps_spent`` is the canonical name, ``steps`` a back-compat
        alias holding the same number).
    elapsed:
        Seconds elapsed before cancellation (partial-progress stat).
    deadline_remaining:
        Wall-clock seconds that were still left when the budget died
        (``0.0`` when the deadline itself was the limit hit, positive
        when the step limit fired first, ``None`` with no deadline set).
    stage:
        The pipeline stage the budget was serving when it died (e.g. a
        cascade stage name such as ``"foc1"``), or ``""`` when the budget
        was not stage-scoped.
    max_steps / deadline:
        The configured limits (``None`` when that limit was unset).
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "",
        site: str = "",
        steps: int = 0,
        elapsed: float = 0.0,
        max_steps: "int | None" = None,
        deadline: "float | None" = None,
        deadline_remaining: "float | None" = None,
        stage: str = "",
    ):
        super().__init__(message)
        self.reason = reason
        self.site = site
        self.steps = steps
        self.steps_spent = steps
        self.elapsed = elapsed
        self.max_steps = max_steps
        self.deadline = deadline
        self.deadline_remaining = deadline_remaining
        self.stage = stage


class SuspendedError(ReproError):
    """A preemptible evaluation exhausted its budget quantum and was
    *suspended* — not killed.

    Raised instead of :class:`BudgetExceededError` when the governing
    :class:`~repro.robust.budget.EvaluationBudget` was built with
    ``preemptible=True`` (sage-engine-style web preemption: the query is
    suspended and re-queued rather than cancelled).  Deliberately **not**
    a subclass of :class:`BudgetExceededError`: suspension is a resumable
    outcome, and handlers that treat budget exhaustion as fatal must not
    swallow it.

    Attributes mirror :class:`BudgetExceededError` (``reason``, ``site``,
    ``steps``/``steps_spent``, ``elapsed``, ``max_steps``, ``deadline``,
    ``deadline_remaining``, ``stage``), plus:

    checkpoint:
        The :class:`~repro.robust.checkpoint.Checkpoint` capturing the
        resumable state, attached by the plan executor / checkpoint
        session as the error propagates (``None`` when no checkpoint
        session was active).
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "",
        site: str = "",
        steps: int = 0,
        elapsed: float = 0.0,
        max_steps: "int | None" = None,
        deadline: "float | None" = None,
        deadline_remaining: "float | None" = None,
        stage: str = "",
        checkpoint: object = None,
    ):
        super().__init__(message)
        self.reason = reason
        self.site = site
        self.steps = steps
        self.steps_spent = steps
        self.elapsed = elapsed
        self.max_steps = max_steps
        self.deadline = deadline
        self.deadline_remaining = deadline_remaining
        self.stage = stage
        self.checkpoint = checkpoint


class CheckpointError(ReproError):
    """A checkpoint could not be saved, loaded, or applied.

    Raised for corrupt or truncated checkpoint files, integrity-hash
    mismatches, format-version mismatches, concurrent saves to the same
    path, and resume attempts against a different query or structure.
    Never raised as a *silent partial restore*: a checkpoint either
    verifies and applies whole, or this error is raised and no state is
    touched.
    """


class AdmissionError(ReproError):
    """A query service refused to enqueue a request (typed load shedding).

    Raised by the :mod:`repro.serve` admission controller instead of
    letting an overloaded service queue without bound: a rejected request
    fails *immediately*, with a machine-readable reason, rather than
    timing out by silence.  Never raised for admitted work — once a
    request is admitted it completes or is suspended/resumed, not killed.

    Attributes
    ----------
    reason:
        The quota that rejected the request: ``"queue_full"``,
        ``"concurrency"``, ``"steps"``, ``"saturated"`` or ``"draining"``
        (mirrors the ``serve.shed.<reason>`` counter that was bumped).
    tenant:
        The tenant whose request was shed.
    """

    def __init__(self, message: str, *, reason: str = "", tenant: str = ""):
        super().__init__(message)
        self.reason = reason
        self.tenant = tenant


class FaultInjectedError(ReproError):
    """A deliberately injected fault fired (testing/chaos machinery only).

    Raised by :func:`repro.robust.faults.fault_check` when an active
    :class:`~repro.robust.faults.FaultInjector` has armed the named site.
    Production code never raises this unless an injector is installed.

    Attributes
    ----------
    site:
        The registered fault site that fired (e.g. ``"cover.construct"``).
    hit:
        Which hit of the site triggered the fault (1-based).
    """

    def __init__(self, site: str, hit: int):
        super().__init__(f"injected fault at site {site!r} (hit {hit})")
        self.site = site
        self.hit = hit
