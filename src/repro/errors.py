"""Typed exceptions shared across the repro package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch the whole family with a single ``except`` clause while tests can pin
down the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SignatureError(ReproError):
    """A relation symbol or signature was used inconsistently.

    Raised for duplicate symbol names, negative arities, or references to
    symbols that are not part of the signature at hand.
    """


class ArityError(ReproError):
    """A tuple's length does not match the arity of its relation symbol."""


class UniverseError(ReproError):
    """A structure's universe is invalid (empty) or an element is missing."""


class ParseError(ReproError):
    """The FOC(P) parser rejected its input.

    Attributes
    ----------
    position:
        Character offset in the input at which the error was detected, or
        ``None`` when the failure is not tied to a specific location.
    """

    def __init__(self, message: str, position: "int | None" = None):
        super().__init__(message if position is None else f"{message} (at position {position})")
        self.position = position


class FormulaError(ReproError):
    """A formula or counting term is structurally malformed.

    Examples: a counting term binding the same variable twice, a numerical
    predicate applied to the wrong number of terms, or a relation atom whose
    symbol does not belong to the expected signature.
    """


class FragmentError(ReproError):
    """An expression lies outside the syntactic fragment an engine supports.

    In particular, feeding a full-FOC(P) formula that violates rule (4')
    of Definition 5.1 to the FOC1(P) evaluator raises this error.
    """


class EvaluationError(ReproError):
    """Evaluation failed: unbound free variable, missing relation, etc."""


class PredicateError(ReproError):
    """A numerical predicate was applied to arguments of the wrong arity,
    or a predicate name is not part of the active collection."""
