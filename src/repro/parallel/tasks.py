"""Module-level work units for the process backend.

A :class:`~concurrent.futures.ProcessPoolExecutor` can only run picklable
callables over picklable arguments, so the closures the thread backend
enjoys are off the table.  This module holds the top-level task functions
and their payload plumbing: each task reconstructs its instruments in the
child — a fresh :class:`~repro.robust.budget.EvaluationBudget` built from
the parent slice's remaining allowance, a fresh
:class:`~repro.obs.metrics.MetricsRegistry` when the parent had one
active — runs the shard, and ships back ``(result, steps,
metrics_snapshot)`` for the parent to fold in deterministically (shard
order), mirroring the thread backend's join semantics.

Budget caveat: an absolute monotonic deadline does not serialise
meaningfully, so child budgets restart the clock from the slice's
*remaining seconds* at payload-build time.  The parent deadline stays
authoritative up to the (small) pickling latency.

Error fidelity: a failing child re-raises the **original** exception in
the parent — :class:`~repro.errors.ReproError` subclasses pickle
faithfully (type, message and structured attributes) — annotated with the
child's formatted traceback (``error.remote_traceback``) and the steps it
spent before dying (``error.remote_steps``, which the retry driver keeps
charging to the parent).  Only a genuinely unpicklable exception is
wrapped in a :class:`~repro.parallel.ParallelError` carrying the same
annotations.
"""

from __future__ import annotations

import pickle
import traceback
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import MetricsRegistry, active_metrics, set_thread_metrics
from ..robust.budget import EvaluationBudget
from ..robust.retry import RetryPolicy
from .pool import ParallelError, WorkerPool

__all__ = [
    "run_per_cluster_shards",
    "run_count_many_shards",
    "run_approx_shards",
]

#: ``(remaining_seconds, max_steps, preemptible, stage)`` — all a child
#: needs to rebuild a slice, including the soft-exhaustion mode so a
#: preemptible parent's shard suspends (resumable) rather than dies.
_BudgetParams = Optional[Tuple[Optional[float], Optional[int], bool, str]]


def _slice_params(slice_budget: "Optional[EvaluationBudget]") -> _BudgetParams:
    if slice_budget is None:
        return None
    return (
        slice_budget.remaining_seconds(),
        slice_budget.remaining_steps(),
        slice_budget.preemptible,
        slice_budget.stage,
    )


def _ensure_picklable(obj: object, what: str) -> object:
    if obj is None:
        return None
    try:
        pickle.dumps(obj)
    except Exception as error:
        raise ParallelError(
            f"the process backend must pickle {what} to child workers "
            f"({type(error).__name__}: {error}); pass a picklable value or "
            "None, or use the thread backend"
        ) from None
    return obj


def _remote_failure(
    error: BaseException, budget: "Optional[EvaluationBudget]"
) -> BaseException:
    """Annotate (and if necessary wrap) a child failure for the parent."""
    formatted = traceback.format_exc()
    steps = budget.steps if budget is not None else 0
    try:
        pickle.loads(pickle.dumps(error))
    except Exception:
        error = ParallelError(
            f"process worker failed with unpicklable "
            f"{type(error).__name__}: {error}"
        )
    error.remote_traceback = formatted
    error.remote_steps = steps
    return error


def _run_in_child(fn, budget_params: _BudgetParams, want_metrics: bool):
    """Child-side harness: install instruments, run, return with accounting."""
    registry = MetricsRegistry() if want_metrics else None
    previous = set_thread_metrics(registry) if want_metrics else None
    budget: "Optional[EvaluationBudget]" = None
    try:
        # Built after the registry is installed so the budget's captured
        # metrics hook points at the child registry.
        # Older callers ship the 2-tuple form without the preemption
        # fields; default those to the non-preemptible mode.
        budget = (
            None
            if budget_params is None
            else EvaluationBudget(
                deadline=budget_params[0],
                max_steps=budget_params[1],
                preemptible=(
                    budget_params[2] if len(budget_params) > 2 else False
                ),
                stage=budget_params[3] if len(budget_params) > 3 else "",
            )
        )
        result = fn(budget)
        steps = budget.steps if budget is not None else 0
    except BaseException as error:  # noqa: BLE001 — re-raised, annotated
        raise _remote_failure(error, budget) from None
    finally:
        if want_metrics:
            set_thread_metrics(previous)
    snapshot = registry.snapshot() if registry is not None else None
    return result, steps, snapshot


def _join_shards(
    pool: WorkerPool,
    task,
    payloads: List[tuple],
    budget: "Optional[EvaluationBudget]",
    retry: "Optional[RetryPolicy]" = None,
    salvage: bool = False,
) -> list:
    """Run payloads on the pool and fold accounting back in shard order.

    Returns plain results (raising the lowest-indexed permanent failure)
    by default; with ``salvage`` returns the
    :class:`~repro.parallel.ShardOutcome` list with each completed
    outcome's ``value`` unwrapped to the shard's result.
    """
    registry = active_metrics()
    outcomes = pool.map_outcomes(
        task, payloads, retry=retry, on_failure="salvage"
    )
    spent = 0
    for outcome in outcomes:
        spent += outcome.steps  # steps lost to failed remote attempts
        if outcome.error is None:
            result, steps, snapshot = outcome.value
            outcome.value = result
            if outcome.attempts == 0:
                # Restored from a checkpoint: the recording run already
                # paid (and charged) these steps — charging them again
                # would make the resumed run re-pay for skipped work.
                continue
            outcome.steps += steps
            spent += steps
            if registry is not None and snapshot is not None:
                registry.merge_snapshot(snapshot)
    first_error = next(
        (o.error for o in outcomes if o.error is not None), None
    )
    if budget is not None and spent:
        try:
            budget.charge(spent, site="parallel.join")
        except Exception:
            # A dry parent always surfaces in salvage mode; in fail-fast
            # mode the shard's own failure is the more precise signal.
            if first_error is None or salvage:
                raise
    if salvage:
        return outcomes
    if first_error is not None:
        raise first_error
    return [outcome.value for outcome in outcomes]


# ---------------------------------------------------------------------------
# Per-cluster evaluation (Section 8.2)
# ---------------------------------------------------------------------------


def _per_cluster_task(payload: tuple):
    (structure, cover, term, psi, indices, predicates, params, metrics) = payload
    from ..core.cover_eval import _cluster_shard_values

    return _run_in_child(
        lambda budget: _cluster_shard_values(
            structure, cover, term, psi, list(indices), predicates, budget
        ),
        params,
        metrics,
    )


def run_per_cluster_shards(
    pool: WorkerPool,
    structure,
    cover,
    term,
    psi,
    shards: Sequence[Sequence[int]],
    predicates,
    budget: "Optional[EvaluationBudget]",
    retry: "Optional[RetryPolicy]" = None,
    salvage: bool = False,
):
    """Process-backend fan-out for :func:`~repro.core.cover_eval.evaluate_per_cluster`.

    Returns the merged per-element dict; with ``salvage`` returns the raw
    shard outcome list (values are the shard dicts) for the caller to
    merge into a :class:`~repro.robust.partial.PartialResult`.
    """
    _ensure_picklable(predicates, "the predicate collection")
    want_metrics = active_metrics() is not None
    slices = (
        budget.split(len(shards)) if budget is not None else [None] * len(shards)
    )
    # Cluster indices ship as array('q') — a flat memory copy instead of a
    # per-int pickle op.  Together with Structure/NeighbourhoodCover
    # shipping only their defining data (their __getstate__ drops derived
    # caches), this keeps per-shard payloads close to the raw relation
    # content.
    payloads = [
        (
            structure,
            cover,
            term,
            psi,
            array("q", chunk),
            predicates,
            _slice_params(slices[i]),
            want_metrics,
        )
        for i, chunk in enumerate(shards)
    ]
    joined = _join_shards(
        pool, _per_cluster_task, payloads, budget, retry=retry, salvage=salvage
    )
    if salvage:
        return joined
    values: Dict = {}
    for part in joined:
        values.update(part)
    return values


# ---------------------------------------------------------------------------
# Batched counting (Evaluator.count_many)
# ---------------------------------------------------------------------------


def _count_many_task(payload: tuple):
    (plan, structure, params, metrics) = payload
    from ..logic.predicates import standard_collection
    from ..plan.executor import PlanExecutor

    return _run_in_child(
        lambda budget: PlanExecutor(
            plan, structure, standard_collection(), budget
        ).count_value(),
        params,
        metrics,
    )


def run_count_many_shards(
    pool: WorkerPool,
    plans: Sequence,
    structures: Sequence,
    budget: "Optional[EvaluationBudget]",
    retry: "Optional[RetryPolicy]" = None,
    salvage: bool = False,
):
    """Process-backend fan-out for ``Evaluator.count_many``.

    One payload per input structure; ``plans[i]`` is the compiled plan for
    ``structures[i]`` (already deduplicated by signature on the parent
    side, so pickling ships each distinct plan once per worker at worst).
    Child workers evaluate with the standard predicate collection —
    custom collections are closures and stay a thread-backend feature.
    With ``salvage`` the raw shard outcome list comes back (one outcome
    per input structure) instead of the plain count list.
    """
    want_metrics = active_metrics() is not None
    slices = (
        budget.split(len(structures))
        if budget is not None
        else [None] * len(structures)
    )
    payloads = [
        (plans[i], structures[i], _slice_params(slices[i]), want_metrics)
        for i in range(len(structures))
    ]
    return _join_shards(
        pool, _count_many_task, payloads, budget, retry=retry, salvage=salvage
    )


# ---------------------------------------------------------------------------
# Approximate counting (sampling blocks)
# ---------------------------------------------------------------------------


def _approx_block_task(payload: tuple):
    (
        structure,
        formula,
        variables,
        predicates,
        seed,
        blocks,
        sizes,
        params,
        metrics,
    ) = payload
    from ..approx.evaluator import sample_blocks

    specs = list(zip(blocks, sizes))
    return _run_in_child(
        lambda budget: sample_blocks(
            structure, formula, tuple(variables), predicates, seed, specs, budget
        ),
        params,
        metrics,
    )


def run_approx_shards(
    pool: WorkerPool,
    structure,
    formula,
    variables: Sequence,
    predicates,
    seed: int,
    block_specs: Sequence[Tuple[int, int]],
    budget: "Optional[EvaluationBudget]",
    retry: "Optional[RetryPolicy]" = None,
) -> List[Tuple[int, int, int]]:
    """Fan sampling blocks out across the pool for the approx tier.

    Each shard gets a contiguous chunk of ``(block_index, sample_count)``
    specs; every block owns its own seeded RNG stream, so the flattened
    ``(block, hits, count)`` list — re-sorted by block index — is
    identical to a serial run regardless of backend or worker count.
    """
    from .pool import shard

    if pool.backend == "process":
        _ensure_picklable(predicates, "the predicate collection")
    shards = [chunk for chunk in shard(list(block_specs), pool.workers) if chunk]
    want_metrics = active_metrics() is not None
    slices = (
        budget.split(len(shards)) if budget is not None else [None] * len(shards)
    )
    # Block indices and sizes ship as array('q') pairs — flat memory
    # copies, same idiom as the per-cluster index shards.
    payloads = [
        (
            structure,
            formula,
            tuple(variables),
            predicates,
            seed,
            array("q", [b for b, _ in chunk]),
            array("q", [c for _, c in chunk]),
            _slice_params(slices[i]),
            want_metrics,
        )
        for i, chunk in enumerate(shards)
    ]
    joined = _join_shards(
        pool, _approx_block_task, payloads, budget, retry=retry
    )
    merged: List[Tuple[int, int, int]] = []
    for part in joined:
        merged.extend(part)
    merged.sort()
    return merged
