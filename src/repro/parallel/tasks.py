"""Module-level work units for the process backend.

A :class:`~concurrent.futures.ProcessPoolExecutor` can only run picklable
callables over picklable arguments, so the closures the thread backend
enjoys are off the table.  This module holds the top-level task functions
and their payload plumbing: each task reconstructs its instruments in the
child — a fresh :class:`~repro.robust.budget.EvaluationBudget` built from
the parent slice's remaining allowance, a fresh
:class:`~repro.obs.metrics.MetricsRegistry` when the parent had one
active — runs the shard, and ships back ``(result, steps,
metrics_snapshot)`` for the parent to fold in deterministically (shard
order), mirroring the thread backend's join semantics.

Budget caveat: an absolute monotonic deadline does not serialise
meaningfully, so child budgets restart the clock from the slice's
*remaining seconds* at payload-build time.  The parent deadline stays
authoritative up to the (small) pickling latency.
"""

from __future__ import annotations

import pickle
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import MetricsRegistry, active_metrics, set_thread_metrics
from ..robust.budget import EvaluationBudget
from .pool import ParallelError, WorkerPool

__all__ = ["run_per_cluster_shards", "run_count_many_shards"]

#: ``(remaining_seconds, max_steps)`` — all a child needs to rebuild a slice.
_BudgetParams = Optional[Tuple[Optional[float], Optional[int]]]


def _slice_params(slice_budget: "Optional[EvaluationBudget]") -> _BudgetParams:
    if slice_budget is None:
        return None
    return (slice_budget.remaining_seconds(), slice_budget.remaining_steps())


def _ensure_picklable(obj: object, what: str) -> object:
    if obj is None:
        return None
    try:
        pickle.dumps(obj)
    except Exception as error:
        raise ParallelError(
            f"the process backend must pickle {what} to child workers "
            f"({type(error).__name__}: {error}); pass a picklable value or "
            "None, or use the thread backend"
        ) from None
    return obj


def _run_in_child(fn, budget_params: _BudgetParams, want_metrics: bool):
    """Child-side harness: install instruments, run, return with accounting."""
    registry = MetricsRegistry() if want_metrics else None
    previous = set_thread_metrics(registry) if want_metrics else None
    try:
        # Built after the registry is installed so the budget's captured
        # metrics hook points at the child registry.
        budget = (
            None
            if budget_params is None
            else EvaluationBudget(
                deadline=budget_params[0], max_steps=budget_params[1]
            )
        )
        result = fn(budget)
        steps = budget.steps if budget is not None else 0
    finally:
        if want_metrics:
            set_thread_metrics(previous)
    snapshot = registry.snapshot() if registry is not None else None
    return result, steps, snapshot


def _join_shards(
    pool: WorkerPool,
    task,
    payloads: List[tuple],
    budget: "Optional[EvaluationBudget]",
) -> list:
    """Run payloads on the pool and fold accounting back in shard order."""
    registry = active_metrics()
    outcomes = pool.map(task, payloads)
    results = []
    spent = 0
    for result, steps, snapshot in outcomes:
        results.append(result)
        spent += steps
        if registry is not None and snapshot is not None:
            registry.merge_snapshot(snapshot)
    if budget is not None and spent:
        budget.charge(spent, site="parallel.join")
    return results


# ---------------------------------------------------------------------------
# Per-cluster evaluation (Section 8.2)
# ---------------------------------------------------------------------------


def _per_cluster_task(payload: tuple):
    (structure, cover, term, psi, indices, predicates, params, metrics) = payload
    from ..core.cover_eval import _cluster_shard_values

    return _run_in_child(
        lambda budget: _cluster_shard_values(
            structure, cover, term, psi, indices, predicates, budget
        ),
        params,
        metrics,
    )


def run_per_cluster_shards(
    pool: WorkerPool,
    structure,
    cover,
    term,
    psi,
    shards: Sequence[Sequence[int]],
    predicates,
    budget: "Optional[EvaluationBudget]",
) -> Dict:
    """Process-backend fan-out for :func:`~repro.core.cover_eval.evaluate_per_cluster`."""
    _ensure_picklable(predicates, "the predicate collection")
    want_metrics = active_metrics() is not None
    slices = (
        budget.split(len(shards)) if budget is not None else [None] * len(shards)
    )
    payloads = [
        (
            structure,
            cover,
            term,
            psi,
            list(chunk),
            predicates,
            _slice_params(slices[i]),
            want_metrics,
        )
        for i, chunk in enumerate(shards)
    ]
    values: Dict = {}
    for part in _join_shards(pool, _per_cluster_task, payloads, budget):
        values.update(part)
    return values


# ---------------------------------------------------------------------------
# Batched counting (Evaluator.count_many)
# ---------------------------------------------------------------------------


def _count_many_task(payload: tuple):
    (plan, structure, params, metrics) = payload
    from ..logic.predicates import standard_collection
    from ..plan.executor import PlanExecutor

    return _run_in_child(
        lambda budget: PlanExecutor(
            plan, structure, standard_collection(), budget
        ).count_value(),
        params,
        metrics,
    )


def run_count_many_shards(
    pool: WorkerPool,
    plans: Sequence,
    structures: Sequence,
    budget: "Optional[EvaluationBudget]",
) -> List[int]:
    """Process-backend fan-out for ``Evaluator.count_many``.

    One payload per input structure; ``plans[i]`` is the compiled plan for
    ``structures[i]`` (already deduplicated by signature on the parent
    side, so pickling ships each distinct plan once per worker at worst).
    Child workers evaluate with the standard predicate collection —
    custom collections are closures and stay a thread-backend feature.
    """
    want_metrics = active_metrics() is not None
    slices = (
        budget.split(len(structures))
        if budget is not None
        else [None] * len(structures)
    )
    payloads = [
        (plans[i], structures[i], _slice_params(slices[i]), want_metrics)
        for i in range(len(structures))
    ]
    return _join_shards(pool, _count_many_task, payloads, budget)
