"""The worker-pool abstraction behind every parallel evaluation path.

Section 8.2's main algorithm is embarrassingly parallel across cover
clusters: each cluster's members are evaluated entirely inside the induced
substructure ``A[X]``, with no shared mutable state between clusters.
:class:`WorkerPool` turns that structure (and the analogous fan-outs over
target elements and over batched inputs) into actual concurrency:

* ``backend="thread"`` (default) — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  Structures, covers and compiled plans are shared by reference; the
  thread-safe :class:`~repro.plan.cache.PlanCache` and the per-worker
  metrics registries (below) make that sharing sound.  On CPython the GIL
  serialises pure-Python bytecode, so thread speedups materialise only
  where workers release the GIL; the backend's real value today is that
  it exercises (and therefore keeps honest) the engine's concurrency
  contracts at near-zero shipping cost.
* ``backend="process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`.
  Work items are pickled to child interpreters, which sidesteps the GIL
  for CPU-bound evaluation at the cost of serialising the inputs; tasks
  must be module-level functions over picklable payloads.
* ``backend="serial"`` — run inline on the calling thread.  This is also
  what any backend degrades to when the effective worker count is 1 or
  there is at most one work item, so ``workers=1`` follows *exactly* the
  pre-parallel code path (no executor, no budget slicing, no registry
  swapping) and costs nothing over it.

Determinism guarantee
---------------------
``map`` and ``run_tasks`` return results in **input order** regardless of
completion order, and every engine integration shards its work
deterministically (contiguous chunks of the cluster-index / target /
input order, via :func:`shard`) and merges shard results in shard-index
order.  A parallel evaluation therefore produces *byte-identical* output
— same values, same dict insertion order — as the serial path, for every
worker count.  Failures are deterministic too: when several tasks raise,
the exception of the lowest-indexed task is the one re-raised.

Budget semantics
----------------
``run_tasks`` gives each task a proportional slice of the caller's
:class:`~repro.robust.budget.EvaluationBudget` via
:meth:`~repro.robust.budget.EvaluationBudget.split`: the **deadline stays
authoritative** (children inherit the parent's absolute deadline — wall
clock is not divisible across concurrent workers), while the remaining
*step* budget is divided evenly.  On join, each task's spent steps are
charged back to the parent in task order, so a following serial phase
sees the true total.

Metrics semantics
-----------------
When a metrics registry is active, each task runs against a fresh
per-worker :class:`~repro.obs.metrics.MetricsRegistry` (installed as a
thread-local override) and the deltas are merged into the parent registry
in task order on join — counters are additive, so totals match the serial
run exactly; workers never contend on the parent registry's lock from
inside hot loops.

Fault tolerance
---------------
``run_tasks`` and ``map_outcomes`` accept a
:class:`~repro.robust.retry.RetryPolicy`: a failed shard is re-run — only
that shard — up to the policy's bounded attempt count, with deterministic
seeded backoff.  Each retry attempt gets a **fresh** budget slice of the
original share (a slice a failed attempt exhausted would doom the retry),
and every attempt's spent steps — failed or not — are accumulated and
charged back to the parent exactly once on join, so retrying never
double-counts.  With ``on_failure="salvage"`` permanent shard failures no
longer raise: the call returns one :class:`ShardOutcome` per shard, and
the caller merges the completed shards into a
:class:`~repro.robust.partial.PartialResult`.

The pool is also a chaos surface: when a pool actually fans out, each
shard attempt passes three parent-side fault checkpoints —
``worker.task`` at submission, ``worker.join`` when the shard's outcome
is collected, and ``shard.result`` when its result is accepted into the
merge.  Checking in the parent (in deterministic shard order) keeps hit
numbering identical across the thread and process backends; an injected
fault counts as that attempt's failure and is retried like any other
transient error.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, TypeVar

from ..errors import FaultInjectedError, ReproError, SuspendedError
from ..obs.metrics import (
    MetricsRegistry,
    active_metrics,
    set_thread_metrics,
)
from ..robust.budget import EvaluationBudget
from ..robust.checkpoint import active_checkpoint_session
from ..robust.faults import fault_check
from ..robust.partial import validate_failure_mode
from ..robust.retry import RetryPolicy

__all__ = [
    "BACKENDS",
    "ParallelError",
    "ShardOutcome",
    "WORKERS_ENV_VAR",
    "WorkerPool",
    "resolve_workers",
    "shard",
]

#: Environment variable consulted when no explicit worker count is given
#: (the CLI's ``--workers`` and the engines' ``workers=None`` default).
WORKERS_ENV_VAR = "REPRO_WORKERS"

BACKENDS = ("serial", "thread", "process")

T = TypeVar("T")
R = TypeVar("R")


class ParallelError(ReproError):
    """A worker pool was misconfigured or a backend cannot run the task."""


@dataclass
class ShardOutcome:
    """The final fate of one shard after all its attempts.

    ``error is None`` means the shard completed (possibly after retries)
    and ``value`` holds its result; otherwise ``error`` is the *final*
    attempt's exception and ``value`` is ``None``.  ``steps`` accumulates
    the budget steps of every attempt, failed ones included — the work
    happened and is charged to the parent either way.
    """

    index: int
    value: Any = None
    error: "Optional[BaseException]" = None
    attempts: int = 1
    steps: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None


def resolve_workers(
    workers: "Optional[int]" = None, environ: "Optional[dict]" = None
) -> int:
    """The effective worker count: explicit argument, else ``REPRO_WORKERS``,
    else 1 (serial).  Values below 1 are rejected, not clamped."""
    if workers is None:
        raw = (environ if environ is not None else os.environ).get(
            WORKERS_ENV_VAR, ""
        ).strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ParallelError(
                f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if workers < 1:
        raise ParallelError(f"worker count must be positive, got {workers}")
    return workers


def shard(items: Sequence[T], shards: int) -> List[List[T]]:
    """Split ``items`` into at most ``shards`` contiguous, order-preserving
    chunks whose sizes differ by at most one.  Deterministic: the same
    input always yields the same chunks, and concatenating the chunks
    restores the input — this is what makes shard-order merges reproduce
    the serial iteration order exactly.  Empty chunks are dropped."""
    if shards < 1:
        raise ParallelError(f"shard count must be positive, got {shards}")
    items = list(items)
    count = len(items)
    if count == 0:
        return []
    shards = min(shards, count)
    base, extra = divmod(count, shards)
    chunks: List[List[T]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


class WorkerPool:
    """A deterministic fan-out/fan-in pool over one of the three backends.

    Pools are cheap value objects: executors are created per call and torn
    down before returning, so a pool can be stored on an engine and used
    from any thread.  ``workers`` defaults to :func:`resolve_workers`
    (``REPRO_WORKERS`` or 1).
    """

    def __init__(
        self,
        workers: "Optional[int]" = None,
        backend: str = "thread",
    ) -> None:
        if backend not in BACKENDS:
            raise ParallelError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.workers = resolve_workers(workers)
        self.backend = backend if self.workers > 1 else "serial"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerPool(workers={self.workers}, backend={self.backend!r})"

    # -- the bare ordered map ------------------------------------------------

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in input order.

        With an effective worker count of 1 (or at most one item) this is
        a plain loop on the calling thread.  The process backend requires
        ``fn`` and the items to be picklable (module-level functions).
        """
        items = list(items)
        workers = min(self.workers, len(items))
        if workers <= 1 or self.backend == "serial":
            return [fn(item) for item in items]
        if self.backend == "process":
            with ProcessPoolExecutor(max_workers=workers) as executor:
                return list(executor.map(fn, items))
        with ThreadPoolExecutor(max_workers=workers) as executor:
            futures = [executor.submit(fn, item) for item in items]
            # Collect in submission order; the first (lowest-index) failure
            # wins so errors are as deterministic as results.
            return [future.result() for future in futures]

    # -- the retrying attempt driver -------------------------------------------

    def _drive(
        self,
        attempt: Callable[[int], Any],
        count: int,
        retry: "Optional[RetryPolicy]",
        submit: "Optional[Callable[[int], Any]]",
        check_faults: bool,
        resumed: "Optional[dict]" = None,
        record: "Optional[Callable[[int, Any], None]]" = None,
    ) -> List[ShardOutcome]:
        """Run ``attempt(index)`` for every shard with retries and fault checks.

        When ``submit`` is given it schedules one shard on an executor and
        returns the future; first attempts are all submitted up front and
        collected in index order, while retries are driven one at a time
        from the collection loop — still through ``submit``, so a process
        shard's retry keeps its isolation (the caller's ``submit`` ships
        the module-level function, never a closure).  All fault
        checkpoints run on the calling thread, in index order, which is
        what makes their hit numbering deterministic and
        backend-independent.

        ``resumed`` maps shard indices to values restored from a
        checkpoint: those shards are never submitted, never attempted and
        pass no fault checkpoints — they re-execute nothing.  ``record``
        is called (on this thread, in index order) with every *newly*
        completed shard's ``(index, value)`` so the active checkpoint
        session can persist it.
        """
        registry = active_metrics()
        if resumed is None:
            resumed = {}

        def checked(site: str) -> None:
            if check_faults:
                fault_check(site)

        futures: List[Optional[object]] = [None] * count
        pre_error: List[Optional[BaseException]] = [None] * count
        if submit is not None:
            for index in range(count):
                if index in resumed:
                    continue
                try:
                    checked("worker.task")
                except FaultInjectedError as error:
                    pre_error[index] = error
                    continue
                futures[index] = submit(index)

        def run_attempt(index: int) -> Any:
            if submit is not None:
                return submit(index).result()
            return attempt(index)

        outcomes: List[ShardOutcome] = []
        for index in range(count):
            if index in resumed:
                outcomes.append(
                    ShardOutcome(index=index, value=resumed[index], attempts=0)
                )
                if registry is not None:
                    registry.inc("parallel.shard.resumed")
                continue
            attempts = 1
            value: Any = None
            error: "Optional[BaseException]" = None
            if submit is not None:
                error = pre_error[index]
                future = futures[index]
                if future is not None:
                    try:
                        value = future.result()
                    except BaseException as raised:  # noqa: BLE001 — kept per shard
                        error = raised
                if error is None:
                    try:
                        checked("worker.join")
                        checked("shard.result")
                    except FaultInjectedError as raised:
                        error = raised
                        value = None
            else:
                try:
                    checked("worker.task")
                    value = attempt(index)
                    checked("worker.join")
                    checked("shard.result")
                except BaseException as raised:  # noqa: BLE001 — kept per shard
                    error = raised
                    value = None

            lost_steps = 0
            while (
                error is not None
                and retry is not None
                and retry.should_retry(error, attempts)
            ):
                # Failed remote attempts carry their spent steps on the
                # exception (see repro.parallel.tasks); keep charging them.
                lost_steps += getattr(error, "remote_steps", 0)
                if registry is not None:
                    registry.inc("parallel.retry.attempt")
                retry.pause(index, attempts)
                attempts += 1
                error = None
                try:
                    checked("worker.task")
                    value = run_attempt(index)
                    checked("worker.join")
                    checked("shard.result")
                except BaseException as raised:  # noqa: BLE001 — kept per shard
                    error = raised
                    value = None

            if error is not None:
                lost_steps += getattr(error, "remote_steps", 0)
                if not isinstance(error, Exception):
                    raise error  # KeyboardInterrupt &c. are never shard-scoped
                if registry is not None:
                    registry.inc("parallel.retry.exhausted")
            elif attempts > 1 and registry is not None:
                registry.inc("parallel.retry.recovered")
            if error is None and record is not None:
                record(index, value)
            outcomes.append(
                ShardOutcome(
                    index=index,
                    value=value,
                    error=error,
                    attempts=attempts,
                    steps=lost_steps,
                )
            )
        return outcomes

    @staticmethod
    def _finalize(
        outcomes: List[ShardOutcome], on_failure: str
    ) -> "List[ShardOutcome] | List[Any]":
        # Suspension is never a shard-scoped failure: a suspended shard
        # means the evaluation's budget quantum is spent, so it propagates
        # even in salvage mode (the completed shards are already in the
        # checkpoint and the resumed run picks them up for free).
        for outcome in outcomes:
            if isinstance(outcome.error, SuspendedError):
                raise outcome.error
        if on_failure == "salvage":
            return outcomes
        for outcome in outcomes:
            if outcome.error is not None:
                raise outcome.error
        return [outcome.value for outcome in outcomes]

    # -- the instrumented fan-out used by the engines --------------------------

    def run_tasks(
        self,
        tasks: Sequence[Callable[["Optional[EvaluationBudget]"], R]],
        budget: "Optional[EvaluationBudget]" = None,
        retry: "Optional[RetryPolicy]" = None,
        on_failure: str = "raise",
    ) -> "List[R] | List[ShardOutcome]":
        """Run budget-aware thunks with slicing, charge-back and metrics merge.

        Each task is a callable taking its own
        :class:`~repro.robust.budget.EvaluationBudget` slice (or ``None``
        when the caller runs unbudgeted).  See the module docstring for
        the budget, metrics, determinism and fault-tolerance contracts.
        Thunks close over live engine state, so this entry point is for
        the serial and thread backends; process-backed integrations go
        through :meth:`map_outcomes` with module-level payload functions.

        With ``retry`` set, a failed shard re-runs (alone) under a fresh
        slice of its original share per attempt.  ``on_failure="raise"``
        (default) re-raises the lowest-indexed permanent failure and
        returns plain results; ``"salvage"`` returns one
        :class:`ShardOutcome` per shard and never raises for shard
        failures (parent budget exhaustion still raises).
        """
        validate_failure_mode(on_failure)
        tasks = list(tasks)
        if not tasks:
            return []
        session = active_checkpoint_session()
        if session is not None and not session.on_owner_thread():
            session = None
        resumed: dict = {}
        record: "Optional[Callable[[int, Any], None]]" = None
        if session is not None:
            scope = session.next_shard_scope(len(tasks))
            resumed = session.resumed_shards(scope)
            record = lambda index, value: session.record_shard(  # noqa: E731
                scope, index, value
            )
        workers = min(self.workers, len(tasks))
        serial = workers <= 1 or self.backend == "serial"
        if serial and retry is None and on_failure == "raise" and session is None:
            # The serial path is the pre-parallel code path: the parent
            # budget is consumed directly (no slicing) and metrics go
            # straight to the active registry.
            return [task(budget) for task in tasks]
        if self.backend == "process" and not serial:
            raise ParallelError(
                "run_tasks thunks close over live engine state and cannot "
                "cross a process boundary; use WorkerPool.map_outcomes with "
                "a module-level payload function instead"
            )

        if serial:
            # Same inline semantics, plus the retry loop / salvage /
            # checkpoint bookkeeping: the parent budget is consumed
            # directly, so there is nothing to slice or charge back, and
            # the worker fault sites stay silent (no pool actually fans
            # out).
            outcomes = self._drive(
                lambda index: tasks[index](budget),
                len(tasks),
                retry,
                submit=None,
                check_faults=False,
                resumed=resumed,
                record=record,
            )
            return self._finalize(outcomes, on_failure)

        count = len(tasks)
        slices = budget.split(count) if budget is not None else [None] * count
        shares = [s.max_steps if s is not None else None for s in slices]
        spent = [0] * count
        started = [False] * count
        current: List[Optional[EvaluationBudget]] = list(slices)
        parent_registry = active_metrics()
        workspaces: List[Optional[MetricsRegistry]] = [
            MetricsRegistry() if parent_registry is not None else None
            for _ in tasks
        ]

        def attempt(index: int) -> R:
            if started[index]:
                # A retry: the previous slice may be exhausted or
                # deadline-stale, so rebuild one with the original step
                # share under the parent's (authoritative) deadline.
                current[index] = (
                    None
                    if budget is None
                    else EvaluationBudget(
                        deadline=budget.remaining_seconds(),
                        max_steps=shares[index],
                        check_interval=budget._check_interval,
                        _deadline_at=budget._deadline_at,
                        preemptible=budget.preemptible,
                        stage=budget.stage,
                    )
                )
            started[index] = True
            task_budget = current[index]
            workspace = workspaces[index]
            try:
                if workspace is None:
                    return tasks[index](task_budget)
                previous = set_thread_metrics(workspace)
                try:
                    if task_budget is not None:
                        # The slice captured the parent thread's registry
                        # at construction; rebind so its ticks land in the
                        # worker's private registry instead of contending
                        # on the parent's.
                        task_budget._metrics = workspace
                    return tasks[index](task_budget)
                finally:
                    # Restore inside one finally that covers everything
                    # after the install: an override left behind on a
                    # reused thread would swallow later sessions' metrics.
                    set_thread_metrics(previous)
            finally:
                # Every attempt's work — failed or not — is accounted.
                if task_budget is not None:
                    spent[index] += task_budget.steps

        with ThreadPoolExecutor(max_workers=workers) as executor:
            outcomes = self._drive(
                attempt,
                count,
                retry,
                submit=lambda index: executor.submit(attempt, index),
                check_faults=True,
                resumed=resumed,
                record=record,
            )
        for outcome in outcomes:
            if outcome.attempts:
                outcome.steps = spent[outcome.index]

        # Deterministic joins: metrics deltas and step charge-back fold in
        # task-index order whether or not a task failed (a failed shard's
        # partial work still happened and must be accounted for).
        if parent_registry is not None:
            for workspace in workspaces:
                if workspace is not None:
                    parent_registry.merge(workspace)
        first_error = next(
            (o.error for o in outcomes if o.error is not None), None
        )
        if budget is not None:
            total = sum(spent)
            if total:
                try:
                    budget.charge(total, site="parallel.join")
                except Exception:
                    # Charging may itself trip the parent's step limit; a
                    # worker failure (e.g. the slice that exhausted first)
                    # is the more precise signal, so prefer re-raising it
                    # in fail-fast mode.  Salvage callers asked to keep
                    # shard failures, but a dry *parent* still raises.
                    if first_error is None or on_failure == "salvage":
                        raise
        return self._finalize(outcomes, on_failure)

    # -- the process-capable fan-out over picklable payloads -------------------

    def map_outcomes(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        retry: "Optional[RetryPolicy]" = None,
        on_failure: str = "raise",
    ) -> "List[R] | List[ShardOutcome]":
        """:meth:`map` with per-item retries, fault checkpoints and salvage.

        The retrying/salvage counterpart of :meth:`map`, usable on every
        backend (the process backend requires ``fn`` and the items to be
        picklable, as for :meth:`map`).  Budget slicing stays with the
        caller — payload builders bake each item's slice into the payload
        (see :mod:`repro.parallel.tasks`) — so a failed item's retry
        re-runs with the slice its payload carries.
        """
        validate_failure_mode(on_failure)
        items = list(items)
        if not items:
            return []
        session = active_checkpoint_session()
        if session is not None and not session.on_owner_thread():
            session = None
        resumed: dict = {}
        record: "Optional[Callable[[int, Any], None]]" = None
        if session is not None:
            scope = session.next_shard_scope(len(items))
            resumed = session.resumed_shards(scope)
            record = lambda index, value: session.record_shard(  # noqa: E731
                scope, index, value
            )
        workers = min(self.workers, len(items))

        def attempt(index: int) -> R:
            return fn(items[index])

        if workers <= 1 or self.backend == "serial":
            outcomes = self._drive(
                attempt,
                len(items),
                retry,
                submit=None,
                check_faults=False,
                resumed=resumed,
                record=record,
            )
        elif self.backend == "process":
            with ProcessPoolExecutor(max_workers=workers) as executor:
                # Ship the module-level ``fn`` and the item — never the
                # ``attempt`` closure, which cannot cross a process
                # boundary.
                outcomes = self._drive(
                    attempt,
                    len(items),
                    retry,
                    submit=lambda index: executor.submit(fn, items[index]),
                    check_faults=True,
                    resumed=resumed,
                    record=record,
                )
        else:
            with ThreadPoolExecutor(max_workers=workers) as executor:
                outcomes = self._drive(
                    attempt,
                    len(items),
                    retry,
                    submit=lambda index: executor.submit(fn, items[index]),
                    check_faults=True,
                    resumed=resumed,
                    record=record,
                )
        return self._finalize(outcomes, on_failure)
