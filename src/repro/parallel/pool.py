"""The worker-pool abstraction behind every parallel evaluation path.

Section 8.2's main algorithm is embarrassingly parallel across cover
clusters: each cluster's members are evaluated entirely inside the induced
substructure ``A[X]``, with no shared mutable state between clusters.
:class:`WorkerPool` turns that structure (and the analogous fan-outs over
target elements and over batched inputs) into actual concurrency:

* ``backend="thread"`` (default) — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  Structures, covers and compiled plans are shared by reference; the
  thread-safe :class:`~repro.plan.cache.PlanCache` and the per-worker
  metrics registries (below) make that sharing sound.  On CPython the GIL
  serialises pure-Python bytecode, so thread speedups materialise only
  where workers release the GIL; the backend's real value today is that
  it exercises (and therefore keeps honest) the engine's concurrency
  contracts at near-zero shipping cost.
* ``backend="process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`.
  Work items are pickled to child interpreters, which sidesteps the GIL
  for CPU-bound evaluation at the cost of serialising the inputs; tasks
  must be module-level functions over picklable payloads.
* ``backend="serial"`` — run inline on the calling thread.  This is also
  what any backend degrades to when the effective worker count is 1 or
  there is at most one work item, so ``workers=1`` follows *exactly* the
  pre-parallel code path (no executor, no budget slicing, no registry
  swapping) and costs nothing over it.

Determinism guarantee
---------------------
``map`` and ``run_tasks`` return results in **input order** regardless of
completion order, and every engine integration shards its work
deterministically (contiguous chunks of the cluster-index / target /
input order, via :func:`shard`) and merges shard results in shard-index
order.  A parallel evaluation therefore produces *byte-identical* output
— same values, same dict insertion order — as the serial path, for every
worker count.  Failures are deterministic too: when several tasks raise,
the exception of the lowest-indexed task is the one re-raised.

Budget semantics
----------------
``run_tasks`` gives each task a proportional slice of the caller's
:class:`~repro.robust.budget.EvaluationBudget` via
:meth:`~repro.robust.budget.EvaluationBudget.split`: the **deadline stays
authoritative** (children inherit the parent's absolute deadline — wall
clock is not divisible across concurrent workers), while the remaining
*step* budget is divided evenly.  On join, each task's spent steps are
charged back to the parent in task order, so a following serial phase
sees the true total.

Metrics semantics
-----------------
When a metrics registry is active, each task runs against a fresh
per-worker :class:`~repro.obs.metrics.MetricsRegistry` (installed as a
thread-local override) and the deltas are merged into the parent registry
in task order on join — counters are additive, so totals match the serial
run exactly; workers never contend on the parent registry's lock from
inside hot loops.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from ..errors import ReproError
from ..obs.metrics import (
    MetricsRegistry,
    active_metrics,
    set_thread_metrics,
)
from ..robust.budget import EvaluationBudget

__all__ = [
    "BACKENDS",
    "ParallelError",
    "WORKERS_ENV_VAR",
    "WorkerPool",
    "resolve_workers",
    "shard",
]

#: Environment variable consulted when no explicit worker count is given
#: (the CLI's ``--workers`` and the engines' ``workers=None`` default).
WORKERS_ENV_VAR = "REPRO_WORKERS"

BACKENDS = ("serial", "thread", "process")

T = TypeVar("T")
R = TypeVar("R")


class ParallelError(ReproError):
    """A worker pool was misconfigured or a backend cannot run the task."""


def resolve_workers(
    workers: "Optional[int]" = None, environ: "Optional[dict]" = None
) -> int:
    """The effective worker count: explicit argument, else ``REPRO_WORKERS``,
    else 1 (serial).  Values below 1 are rejected, not clamped."""
    if workers is None:
        raw = (environ if environ is not None else os.environ).get(
            WORKERS_ENV_VAR, ""
        ).strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ParallelError(
                f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if workers < 1:
        raise ParallelError(f"worker count must be positive, got {workers}")
    return workers


def shard(items: Sequence[T], shards: int) -> List[List[T]]:
    """Split ``items`` into at most ``shards`` contiguous, order-preserving
    chunks whose sizes differ by at most one.  Deterministic: the same
    input always yields the same chunks, and concatenating the chunks
    restores the input — this is what makes shard-order merges reproduce
    the serial iteration order exactly.  Empty chunks are dropped."""
    if shards < 1:
        raise ParallelError(f"shard count must be positive, got {shards}")
    items = list(items)
    count = len(items)
    if count == 0:
        return []
    shards = min(shards, count)
    base, extra = divmod(count, shards)
    chunks: List[List[T]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


class WorkerPool:
    """A deterministic fan-out/fan-in pool over one of the three backends.

    Pools are cheap value objects: executors are created per call and torn
    down before returning, so a pool can be stored on an engine and used
    from any thread.  ``workers`` defaults to :func:`resolve_workers`
    (``REPRO_WORKERS`` or 1).
    """

    def __init__(
        self,
        workers: "Optional[int]" = None,
        backend: str = "thread",
    ) -> None:
        if backend not in BACKENDS:
            raise ParallelError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.workers = resolve_workers(workers)
        self.backend = backend if self.workers > 1 else "serial"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerPool(workers={self.workers}, backend={self.backend!r})"

    # -- the bare ordered map ------------------------------------------------

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in input order.

        With an effective worker count of 1 (or at most one item) this is
        a plain loop on the calling thread.  The process backend requires
        ``fn`` and the items to be picklable (module-level functions).
        """
        items = list(items)
        workers = min(self.workers, len(items))
        if workers <= 1 or self.backend == "serial":
            return [fn(item) for item in items]
        if self.backend == "process":
            with ProcessPoolExecutor(max_workers=workers) as executor:
                return list(executor.map(fn, items))
        with ThreadPoolExecutor(max_workers=workers) as executor:
            futures = [executor.submit(fn, item) for item in items]
            # Collect in submission order; the first (lowest-index) failure
            # wins so errors are as deterministic as results.
            return [future.result() for future in futures]

    # -- the instrumented fan-out used by the engines --------------------------

    def run_tasks(
        self,
        tasks: Sequence[Callable[["Optional[EvaluationBudget]"], R]],
        budget: "Optional[EvaluationBudget]" = None,
    ) -> List[R]:
        """Run budget-aware thunks with slicing, charge-back and metrics merge.

        Each task is a callable taking its own
        :class:`~repro.robust.budget.EvaluationBudget` slice (or ``None``
        when the caller runs unbudgeted).  See the module docstring for
        the budget, metrics and determinism contracts.  Thunks close over
        live engine state, so this entry point is for the serial and
        thread backends; process-backed integrations go through
        :meth:`map` with module-level payload functions.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        workers = min(self.workers, len(tasks))
        if workers <= 1 or self.backend == "serial":
            # The serial path is the pre-parallel code path: the parent
            # budget is consumed directly (no slicing) and metrics go
            # straight to the active registry.
            return [task(budget) for task in tasks]
        if self.backend == "process":
            raise ParallelError(
                "run_tasks thunks close over live engine state and cannot "
                "cross a process boundary; use WorkerPool.map with a "
                "module-level payload function instead"
            )

        slices = (
            budget.split(len(tasks))
            if budget is not None
            else [None] * len(tasks)
        )
        parent_registry = active_metrics()
        workspaces: List[Optional[MetricsRegistry]] = [
            MetricsRegistry() if parent_registry is not None else None
            for _ in tasks
        ]

        def run_one(index: int) -> R:
            task_budget = slices[index]
            workspace = workspaces[index]
            if workspace is None:
                return tasks[index](task_budget)
            previous = set_thread_metrics(workspace)
            if task_budget is not None:
                # The slice captured the parent thread's registry at
                # construction; rebind so its ticks land in the worker's
                # private registry instead of contending on the parent's.
                task_budget._metrics = workspace
            try:
                return tasks[index](task_budget)
            finally:
                set_thread_metrics(previous)

        with ThreadPoolExecutor(max_workers=workers) as executor:
            futures = [
                executor.submit(run_one, index) for index in range(len(tasks))
            ]
            results: List[R] = []
            first_error: "Optional[BaseException]" = None
            for future in futures:
                try:
                    results.append(future.result())
                except BaseException as error:  # noqa: BLE001 — re-raised below
                    if first_error is None:
                        first_error = error
                    results.append(None)  # type: ignore[arg-type]

        # Deterministic joins: metrics deltas and step charge-back fold in
        # task-index order whether or not a task failed (a failed shard's
        # partial work still happened and must be accounted for).
        if parent_registry is not None:
            for workspace in workspaces:
                if workspace is not None:
                    parent_registry.merge(workspace)
        if budget is not None:
            spent = sum(s.steps for s in slices if s is not None)
            if spent:
                try:
                    budget.charge(spent, site="parallel.join")
                except Exception:
                    # Charging may itself trip the parent's step limit; a
                    # worker failure (e.g. the slice that exhausted first)
                    # is the more precise signal, so prefer re-raising it.
                    if first_error is None:
                        raise
        if first_error is not None:
            raise first_error
        return results
