"""Parallel execution for the evaluation engines (worker pools, sharding).

The paper's per-cluster loop (Section 8.2) and the engine's batch
entry points are embarrassingly parallel; this package supplies the
:class:`WorkerPool` they fan out through, the deterministic
:func:`shard` helper, and the ``REPRO_WORKERS`` resolution shared by the
CLI and the engine facades.  See ``docs/PARALLEL.md`` for the pool
model, the budget-slicing semantics and the determinism guarantee.
"""

from .pool import (
    BACKENDS,
    WORKERS_ENV_VAR,
    ParallelError,
    ShardOutcome,
    WorkerPool,
    resolve_workers,
    shard,
)

__all__ = [
    "BACKENDS",
    "WORKERS_ENV_VAR",
    "ParallelError",
    "ShardOutcome",
    "WorkerPool",
    "resolve_workers",
    "shard",
]
