"""repro — a reproduction of Grohe & Schweikardt (PODS 2018),
"First-Order Query Evaluation with Cardinality Conditions".

The library implements the logic FOC(P) and its fragment FOC1(P), the
hardness reductions of Section 4, the cl-term decomposition machinery of
Section 6, the neighbourhood-cover / removal-lemma toolkit of Section 7,
the nowhere-dense machinery (splitter games, sparse covers) of Section 8,
and practical evaluation engines built on them — plus an SQL-COUNT facade
matching the paper's Example 5.3.

Quickstart::

    from repro import (
        Rel, variables, count, exists, graph_structure,
        satisfies,
    )

    E = Rel("E", 2)
    x, y = variables("x y")
    graph = graph_structure([1, 2, 3], [(1, 2), (2, 3)])
    degree = count([y], E(x, y))               # #(y). E(x, y)
    high_degree = exists(x, degree.gt(1))      # exists x. @gt(#(y).E(x,y), 1)
    assert satisfies(graph, high_degree)
"""

__version__ = "1.0.0"

from .errors import (
    AdmissionError,
    ArityError,
    BudgetExceededError,
    CheckpointError,
    EvaluationError,
    FaultInjectedError,
    FormulaError,
    FragmentError,
    ParseError,
    PredicateError,
    ReproError,
    SignatureError,
    SuspendedError,
    UniverseError,
)
from .structures import (
    GRAPH_SIGNATURE,
    RelationSymbol,
    Signature,
    Structure,
    ball,
    balanced_tree,
    complete_graph,
    coloured_graph_structure,
    cycle_graph,
    distance,
    graph_structure,
    grid_graph,
    induced,
    neighbourhood,
    path_graph,
    star_graph,
    string_structure,
)
from .logic import (
    And,
    Atom,
    CountTerm,
    Eq,
    Exists,
    Formula,
    Not,
    Or,
    PredicateAtom,
    PredicateCollection,
    Rel,
    Term,
    count,
    count_solutions,
    evaluate,
    exists,
    forall,
    free_variables,
    is_foc1,
    parse_formula,
    parse_term,
    pretty,
    satisfies,
    solutions,
    standard_collection,
    term_value,
    variables,
)

from .core import (
    BasicClTerm,
    BruteForceEvaluator,
    ClPolynomial,
    CoverTerm,
    Foc1Evaluator,
    Foc1Query,
    decompose_factored_count,
    remove_element,
    removal_formula,
)
from .plan import (
    PlanCache,
    PlanExecutor,
    PlanOptions,
    QueryPlan,
    canonicalise,
    compile_plan,
    default_plan_cache,
)
from .sparse import (
    NeighbourhoodCover,
    play_splitter_game,
    rounds_needed,
    sparse_cover,
    trivial_cover,
)
from .approx import ApproxEvaluator, ApproxResult, SamplePlan, plan_samples
from .db import Database, Schema, Table, group_by_count, join_group_count, total_counts
from .io import FormatError, load_structure, save_structure
from .robust import (
    FAULT_SITES,
    PARALLEL_FAULT_SITES,
    CircuitBreaker,
    EvaluationBudget,
    FaultInjector,
    PartialResult,
    RetryPolicy,
    RobustEvaluator,
    RobustReport,
    ShardFailure,
    StageReport,
    inject_faults,
)

__all__ = [name for name in dir() if not name.startswith("_")]
