"""Ergonomic construction helpers for FOC(P) expressions.

The AST in :mod:`repro.logic.syntax` is deliberately plain; this module adds
the thin layer that makes formulas pleasant to write in examples and tests:

>>> from repro.logic.builder import Rel, variables, count, exists
>>> E = Rel("E", 2)
>>> x, y, z = variables("x y z")
>>> out_degree = count([z], E(y, z))          # #(z). E(y, z)
>>> formula = exists(y, out_degree.geq1())     # exists y. @geq1(#(z). E(y,z))
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

from ..errors import FormulaError
from ..structures.signature import RelationSymbol, Signature
from .syntax import (
    Atom,
    CountTerm,
    Eq,
    Exists,
    Forall,
    Formula,
    IntTerm,
    Term,
    TermLike,
    Variable,
    _coerce_term,
)


def variables(names: Union[str, Iterable[str]]) -> Tuple[Variable, ...]:
    """Split a whitespace-separated string (or iterable) into variable names."""
    if isinstance(names, str):
        parts = names.split()
    else:
        parts = list(names)
    if not parts:
        raise FormulaError("no variable names given")
    return tuple(parts)


class Rel:
    """A relation-symbol handle: calling it builds an atom with arity checking."""

    __slots__ = ("name", "arity")

    def __init__(self, name: str, arity: int):
        if arity < 0:
            raise FormulaError(f"relation {name!r} cannot have negative arity")
        self.name = name
        self.arity = arity

    def __call__(self, *args: Variable) -> Atom:
        if len(args) != self.arity:
            raise FormulaError(
                f"{self.name} has arity {self.arity}, got {len(args)} arguments"
            )
        return Atom(self.name, tuple(args))

    @property
    def symbol(self) -> RelationSymbol:
        return RelationSymbol(self.name, self.arity)


def rels(signature: Signature) -> dict:
    """Handles for every symbol of a signature: ``rels(sig)['E'](x, y)``."""
    return {symbol.name: Rel(symbol.name, symbol.arity) for symbol in signature}


def eq(left: Variable, right: Variable) -> Eq:
    return Eq(left, right)


def exists(variables_: Union[Variable, Sequence[Variable]], inner: Formula) -> Formula:
    """``exists(v, phi)`` or ``exists([v1, v2], phi)``."""
    if isinstance(variables_, str):
        return Exists(variables_, inner)
    result = inner
    for variable in reversed(list(variables_)):
        result = Exists(variable, result)
    return result


def forall(variables_: Union[Variable, Sequence[Variable]], inner: Formula) -> Formula:
    if isinstance(variables_, str):
        return Forall(variables_, inner)
    result = inner
    for variable in reversed(list(variables_)):
        result = Forall(variable, result)
    return result


def count(variables_: Union[Variable, Sequence[Variable]], inner: Formula) -> CountTerm:
    """``#(y1, ..., yk). phi``; accepts a single name or a sequence."""
    if isinstance(variables_, str):
        return CountTerm((variables_,), inner)
    return CountTerm(tuple(variables_), inner)


def num(value: int) -> IntTerm:
    return IntTerm(value)


def term(value: TermLike) -> Term:
    """Coerce an int (or term) into a counting term."""
    return _coerce_term(value)


def total(*terms: TermLike) -> Term:
    """Sum of one or more terms."""
    items: List[Term] = [_coerce_term(t) for t in terms]
    if not items:
        raise FormulaError("total() needs at least one term")
    result = items[0]
    for item in items[1:]:
        result = result + item
    return result
