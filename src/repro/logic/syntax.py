"""Abstract syntax of FOC(P) — Definition 3.1, plus the FO+ distance atoms
of Section 7.

Design notes
------------
* Variables are plain strings.  The paper fixes a countable set ``vars``;
  any Python identifier-like string qualifies.
* All nodes are frozen dataclasses: hashable, comparable, safe as cache keys.
* The paper's core syntax has only ``=``-atoms, relation atoms, ``¬``, ``∨``,
  ``∃``, numerical-predicate atoms, counting terms, integers, ``+`` and ``·``.
  We additionally provide ``∧``, ``→``, ``↔``, ``∀``, ``⊤``, ``⊥`` and the
  FO+ atom ``dist(x,y) <= d`` as first-class nodes; all of them are definable
  in the core syntax and :func:`repro.logic.transform.to_primitive` performs
  that elimination, which the tests use to confirm the sugar is conservative.
* Terms support ``+``, ``*`` and ``-`` via operator overloading (``s - t`` is
  the paper's abbreviation for ``s + (-1)·t``).  Comparisons are *methods*
  (``t.eq(s)``, ``t.geq1()``), not operators, because ``__eq__`` must remain
  structural equality for hashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Tuple, Union

from ..errors import FormulaError

Variable = str


def _coerce_term(value: "TermLike") -> "Term":
    if isinstance(value, Term):
        return value
    if isinstance(value, int):
        return IntTerm(value)
    raise FormulaError(f"cannot interpret {value!r} as a counting term")


class Expression:
    """Common base for formulas and counting terms."""

    __slots__ = ()


class Formula(Expression):
    """Base class for FOC(P) formulas."""

    __slots__ = ()

    # Boolean connective sugar --------------------------------------------------
    def __and__(self, other: "Formula") -> "And":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)

    def implies(self, other: "Formula") -> "Implies":
        return Implies(self, other)

    def iff(self, other: "Formula") -> "Iff":
        return Iff(self, other)


class Term(Expression):
    """Base class for FOC(P) counting terms."""

    __slots__ = ()

    def __add__(self, other: "TermLike") -> "Add":
        return Add(self, _coerce_term(other))

    def __radd__(self, other: "TermLike") -> "Add":
        return Add(_coerce_term(other), self)

    def __mul__(self, other: "TermLike") -> "Mul":
        return Mul(self, _coerce_term(other))

    def __rmul__(self, other: "TermLike") -> "Mul":
        return Mul(_coerce_term(other), self)

    def __sub__(self, other: "TermLike") -> "Add":
        """``s - t`` abbreviates ``s + ((-1) · t)`` (Section 3)."""
        return Add(self, Mul(IntTerm(-1), _coerce_term(other)))

    def __rsub__(self, other: "TermLike") -> "Add":
        return Add(_coerce_term(other), Mul(IntTerm(-1), self))

    # Comparison sugar producing numerical-predicate atoms ----------------------
    def eq(self, other: "TermLike") -> "PredicateAtom":
        return PredicateAtom("eq", (self, _coerce_term(other)))

    def neq(self, other: "TermLike") -> "PredicateAtom":
        return PredicateAtom("neq", (self, _coerce_term(other)))

    def leq(self, other: "TermLike") -> "PredicateAtom":
        return PredicateAtom("leq", (self, _coerce_term(other)))

    def lt(self, other: "TermLike") -> "PredicateAtom":
        return PredicateAtom("lt", (self, _coerce_term(other)))

    def gt(self, other: "TermLike") -> "PredicateAtom":
        return PredicateAtom("gt", (self, _coerce_term(other)))

    def geq1(self) -> "PredicateAtom":
        """The paper's ``t >= 1`` abbreviation for ``P>=1(t)``."""
        return PredicateAtom("geq1", (self,))


TermLike = Union[Term, int]


# ---------------------------------------------------------------------------
# Formula nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Eq(Formula):
    """``x1 = x2`` between variables (rule 1)."""

    left: Variable
    right: Variable


@dataclass(frozen=True)
class Atom(Formula):
    """A relation atom ``R(x1, ..., x_ar(R))`` (rule 1); arity may be 0."""

    relation: str
    args: Tuple[Variable, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))
        for arg in self.args:
            if not isinstance(arg, str):
                raise FormulaError(f"atom argument {arg!r} is not a variable name")


@dataclass(frozen=True)
class Not(Formula):
    inner: Formula


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula


@dataclass(frozen=True)
class And(Formula):
    """Derived connective; eliminated by ``to_primitive``."""

    left: Formula
    right: Formula


@dataclass(frozen=True)
class Implies(Formula):
    """Derived connective; eliminated by ``to_primitive``."""

    left: Formula
    right: Formula


@dataclass(frozen=True)
class Iff(Formula):
    """Derived connective; eliminated by ``to_primitive``."""

    left: Formula
    right: Formula


@dataclass(frozen=True)
class Exists(Formula):
    variable: Variable
    inner: Formula


@dataclass(frozen=True)
class Forall(Formula):
    """Derived quantifier; eliminated by ``to_primitive``."""

    variable: Variable
    inner: Formula


@dataclass(frozen=True)
class Top(Formula):
    """The always-true sentence (definable as ``¬∃z ¬z=z``, cf. Example 5.3)."""


@dataclass(frozen=True)
class Bottom(Formula):
    """The always-false sentence."""


@dataclass(frozen=True)
class PredicateAtom(Formula):
    """``P(t1, ..., tm)`` for a numerical predicate P (rule 4)."""

    predicate: str
    terms: Tuple[Term, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "terms", tuple(_coerce_term(t) for t in self.terms)
        )
        if not self.terms:
            raise FormulaError("numerical predicates have arity >= 1")


@dataclass(frozen=True)
class DistAtom(Formula):
    """The FO+ atom ``dist(x, y) <= bound`` (Section 7).

    FO+ is a syntactic extension only: :func:`repro.logic.locality.dist_formula`
    expands the atom into pure FO over a given signature.
    """

    left: Variable
    right: Variable
    bound: int

    def __post_init__(self) -> None:
        if self.bound < 0:
            raise FormulaError("distance bound must be non-negative")


# ---------------------------------------------------------------------------
# Term nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntTerm(Term):
    """An integer literal (rule 6)."""

    value: int

    def __post_init__(self) -> None:
        if not isinstance(self.value, int) or isinstance(self.value, bool):
            raise FormulaError(f"IntTerm needs an int, got {self.value!r}")


@dataclass(frozen=True)
class Add(Term):
    left: Term
    right: Term


@dataclass(frozen=True)
class Mul(Term):
    left: Term
    right: Term


@dataclass(frozen=True)
class CountTerm(Term):
    """``#(y1, ..., yk).phi`` (rule 5).  Binds pairwise distinct variables;
    k = 0 is allowed (the term is then 1 if phi holds, else 0)."""

    variables: Tuple[Variable, ...]
    inner: Formula

    def __post_init__(self) -> None:
        object.__setattr__(self, "variables", tuple(self.variables))
        if len(set(self.variables)) != len(self.variables):
            raise FormulaError(
                f"counting term binds repeated variables: {self.variables}"
            )
        for variable in self.variables:
            if not isinstance(variable, str):
                raise FormulaError(f"{variable!r} is not a variable name")


# ---------------------------------------------------------------------------
# Structural queries (free variables, size, #-depth, subexpressions)
# ---------------------------------------------------------------------------


def free_variables(expression: Expression) -> FrozenSet[Variable]:
    """The set ``free(xi)`` per the paper's inductive definition."""
    if isinstance(expression, Eq):
        return frozenset({expression.left, expression.right})
    if isinstance(expression, Atom):
        return frozenset(expression.args)
    if isinstance(expression, DistAtom):
        return frozenset({expression.left, expression.right})
    if isinstance(expression, Not):
        return free_variables(expression.inner)
    if isinstance(expression, (Or, And, Implies, Iff)):
        return free_variables(expression.left) | free_variables(expression.right)
    if isinstance(expression, (Exists, Forall)):
        return free_variables(expression.inner) - {expression.variable}
    if isinstance(expression, (Top, Bottom)):
        return frozenset()
    if isinstance(expression, PredicateAtom):
        result: FrozenSet[Variable] = frozenset()
        for term in expression.terms:
            result |= free_variables(term)
        return result
    if isinstance(expression, IntTerm):
        return frozenset()
    if isinstance(expression, (Add, Mul)):
        return free_variables(expression.left) | free_variables(expression.right)
    if isinstance(expression, CountTerm):
        return free_variables(expression.inner) - set(expression.variables)
    raise FormulaError(f"unknown expression node {type(expression).__name__}")


def is_sentence(formula: Formula) -> bool:
    return isinstance(formula, Formula) and not free_variables(formula)


def is_ground_term(term: Term) -> bool:
    return isinstance(term, Term) and not free_variables(term)


def expression_size(expression: Expression) -> int:
    """A size measure proportional to the paper's word length ``||xi||``."""
    if isinstance(expression, Eq):
        return 3
    if isinstance(expression, Atom):
        return 1 + len(expression.args)
    if isinstance(expression, DistAtom):
        return 4
    if isinstance(expression, Not):
        return 1 + expression_size(expression.inner)
    if isinstance(expression, (Or, And, Implies, Iff)):
        return 1 + expression_size(expression.left) + expression_size(expression.right)
    if isinstance(expression, (Exists, Forall)):
        return 2 + expression_size(expression.inner)
    if isinstance(expression, (Top, Bottom)):
        return 1
    if isinstance(expression, PredicateAtom):
        return 1 + sum(expression_size(t) for t in expression.terms)
    if isinstance(expression, IntTerm):
        return 1 + len(str(abs(expression.value)))
    if isinstance(expression, (Add, Mul)):
        return 1 + expression_size(expression.left) + expression_size(expression.right)
    if isinstance(expression, CountTerm):
        return 2 + len(expression.variables) + expression_size(expression.inner)
    raise FormulaError(f"unknown expression node {type(expression).__name__}")


def count_depth(expression: Expression) -> int:
    """The #-depth ``d#`` of Section 6.3 (maximal nesting of ``#``)."""
    if isinstance(expression, (Eq, Atom, DistAtom, Top, Bottom, IntTerm)):
        return 0
    if isinstance(expression, Not):
        return count_depth(expression.inner)
    if isinstance(expression, (Or, And, Implies, Iff, Add, Mul)):
        return max(count_depth(expression.left), count_depth(expression.right))
    if isinstance(expression, (Exists, Forall)):
        return count_depth(expression.inner)
    if isinstance(expression, PredicateAtom):
        return max(count_depth(t) for t in expression.terms)
    if isinstance(expression, CountTerm):
        return count_depth(expression.inner) + 1
    raise FormulaError(f"unknown expression node {type(expression).__name__}")


def subexpressions(expression: Expression) -> Iterator[Expression]:
    """All subexpressions (including the expression itself), pre-order."""
    yield expression
    if isinstance(expression, Not):
        yield from subexpressions(expression.inner)
    elif isinstance(expression, (Or, And, Implies, Iff, Add, Mul)):
        yield from subexpressions(expression.left)
        yield from subexpressions(expression.right)
    elif isinstance(expression, (Exists, Forall)):
        yield from subexpressions(expression.inner)
    elif isinstance(expression, PredicateAtom):
        for term in expression.terms:
            yield from subexpressions(term)
    elif isinstance(expression, CountTerm):
        yield from subexpressions(expression.inner)


def all_variables(expression: Expression) -> FrozenSet[Variable]:
    """All variable names occurring anywhere (free or bound)."""
    names: set = set()
    for node in subexpressions(expression):
        if isinstance(node, Eq):
            names.update({node.left, node.right})
        elif isinstance(node, Atom):
            names.update(node.args)
        elif isinstance(node, DistAtom):
            names.update({node.left, node.right})
        elif isinstance(node, (Exists, Forall)):
            names.add(node.variable)
        elif isinstance(node, CountTerm):
            names.update(node.variables)
    return frozenset(names)


def relation_names(expression: Expression) -> FrozenSet[str]:
    """Names of all relation symbols occurring in the expression."""
    return frozenset(
        node.relation for node in subexpressions(expression) if isinstance(node, Atom)
    )


def predicate_names(expression: Expression) -> FrozenSet[str]:
    """Names of all numerical predicates occurring in the expression."""
    return frozenset(
        node.predicate
        for node in subexpressions(expression)
        if isinstance(node, PredicateAtom)
    )


def uses_distance_atoms(expression: Expression) -> bool:
    """Whether the expression is genuinely FO+ (mentions a distance atom)."""
    return any(isinstance(node, DistAtom) for node in subexpressions(expression))


def conjunction(formulas: Iterable[Formula]) -> Formula:
    """Right-nested conjunction of a (possibly empty) iterable; empty = Top."""
    items = list(formulas)
    if not items:
        return Top()
    result = items[-1]
    for item in reversed(items[:-1]):
        result = And(item, result)
    return result


def disjunction(formulas: Iterable[Formula]) -> Formula:
    """Right-nested disjunction; empty = Bottom."""
    items = list(formulas)
    if not items:
        return Bottom()
    result = items[-1]
    for item in reversed(items[:-1]):
        result = Or(item, result)
    return result


def exists_block(variables: Iterable[Variable], inner: Formula) -> Formula:
    """``∃v1 ... ∃vk inner``."""
    result = inner
    for variable in reversed(list(variables)):
        result = Exists(variable, result)
    return result


def forall_block(variables: Iterable[Variable], inner: Formula) -> Formula:
    """``∀v1 ... ∀vk inner``."""
    result = inner
    for variable in reversed(list(variables)):
        result = Forall(variable, result)
    return result
