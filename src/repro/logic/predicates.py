"""Numerical predicate collections (P, ar, ⟦.⟧) — Section 3.

A numerical predicate is a named, fixed-arity predicate over the integers.
The paper treats the collection P as a parameter of the logic and assumes a
*P-oracle*: membership ``(i_1, ..., i_m) in ⟦P⟧`` is decided at unit cost.
We realise predicates as Python callables and count oracle invocations so
that benchmarks can report them.

The collection shipped as :data:`STANDARD_PREDICATES` contains the paper's
basic examples (P>=1, P=, P<=, Prime) plus a few conveniences used by the
test and benchmark workloads.  The paper requires every collection to contain
P>=1; :class:`PredicateCollection` enforces that on construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, Tuple

from ..errors import PredicateError


@dataclass(frozen=True)
class NumericalPredicate:
    """A named predicate over integer tuples.

    ``semantics`` decides membership in ⟦P⟧ ⊆ Z^arity.  It must be pure: the
    evaluation engines freely cache and reorder oracle calls.
    """

    name: str
    arity: int
    semantics: Callable[[Tuple[int, ...]], bool] = field(compare=False)

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise PredicateError(
                f"numerical predicate {self.name!r} must have arity >= 1"
            )

    def holds(self, values: Tuple[int, ...]) -> bool:
        if len(values) != self.arity:
            raise PredicateError(
                f"predicate {self.name} has arity {self.arity}, got {len(values)} arguments"
            )
        return bool(self.semantics(values))


class PredicateCollection:
    """A numerical predicate collection with an oracle-call counter.

    Iteration yields predicates sorted by name; the counter
    :attr:`oracle_calls` increases on every semantic membership query, which
    the benchmark harness reads to report "P-oracle cost" per evaluation.
    """

    def __init__(self, predicates: Iterable[NumericalPredicate], require_geq1: bool = True):
        self._by_name: Dict[str, NumericalPredicate] = {}
        for predicate in predicates:
            if predicate.name in self._by_name:
                raise PredicateError(f"duplicate predicate name {predicate.name!r}")
            self._by_name[predicate.name] = predicate
        if require_geq1 and "geq1" not in self._by_name:
            raise PredicateError(
                "the paper fixes collections containing P>=1; add the 'geq1' "
                "predicate or pass require_geq1=False"
            )
        self.oracle_calls = 0

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> NumericalPredicate:
        try:
            return self._by_name[name]
        except KeyError:
            raise PredicateError(f"unknown numerical predicate {name!r}") from None

    def __iter__(self) -> Iterator[NumericalPredicate]:
        return iter(sorted(self._by_name.values(), key=lambda p: p.name))

    def __len__(self) -> int:
        return len(self._by_name)

    def arity(self, name: str) -> int:
        return self[name].arity

    def query(self, name: str, values: Tuple[int, ...]) -> bool:
        """The P-oracle: decide ``values in ⟦name⟧`` (counted)."""
        self.oracle_calls += 1
        return self[name].holds(tuple(values))

    def extended(self, *predicates: NumericalPredicate) -> "PredicateCollection":
        """A new collection with additional predicates."""
        return PredicateCollection(list(self._by_name.values()) + list(predicates))

    def reset_counter(self) -> None:
        self.oracle_calls = 0


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= n:
        if n % divisor == 0:
            return False
        divisor += 2
    return True


#: P>=1 — required by the paper in every collection.
GEQ1 = NumericalPredicate("geq1", 1, lambda v: v[0] >= 1)
#: P= — the equality predicate of Theorems 4.1/4.3 and Example 5.4.
EQ = NumericalPredicate("eq", 2, lambda v: v[0] == v[1])
#: P<= — the order predicate from Section 3's examples.
LEQ = NumericalPredicate("leq", 2, lambda v: v[0] <= v[1])
#: Prime — from Example 3.2.
PRIME = NumericalPredicate("prime", 1, lambda v: _is_prime(v[0]))
#: Strictly-positive variants and small conveniences for workloads.
GT = NumericalPredicate("gt", 2, lambda v: v[0] > v[1])
LT = NumericalPredicate("lt", 2, lambda v: v[0] < v[1])
NEQ = NumericalPredicate("neq", 2, lambda v: v[0] != v[1])
EVEN = NumericalPredicate("even", 1, lambda v: v[0] % 2 == 0)
ODD = NumericalPredicate("odd", 1, lambda v: v[0] % 2 == 1)
DIVIDES = NumericalPredicate("divides", 2, lambda v: v[0] != 0 and v[1] % v[0] == 0)
ZERO = NumericalPredicate("zero", 1, lambda v: v[0] == 0)


def standard_collection() -> PredicateCollection:
    """A fresh collection with the paper's basic predicates (fresh counter)."""
    return PredicateCollection(
        [GEQ1, EQ, LEQ, PRIME, GT, LT, NEQ, EVEN, ODD, DIVIDES, ZERO]
    )


#: A module-level default instance, used when no collection is supplied.
STANDARD_PREDICATES = standard_collection()
