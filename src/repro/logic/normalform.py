"""Classical normal forms for the FO/FO+ fragment: negation normal form and
prenex normal form.

These are supporting transformations (Gaifman's theorem and the locality
machinery of Sections 6-7 are usually stated for formulas in such shapes).
Both transformations are semantics-preserving and property-tested; both
reject counting constructs — normal forms for full FOC(P) are exactly what
the paper's Hanf/locality machinery replaces.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import FormulaError
from .syntax import (
    And,
    Atom,
    Bottom,
    DistAtom,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Variable,
    all_variables,
)
from .transform import fresh_variable, rename_free


def _require_fo(formula: Formula, operation: str) -> None:
    from .foc1 import is_plain_fo

    if not is_plain_fo(formula):
        raise FormulaError(f"{operation} is defined for FO/FO+ formulas only")


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: negations pushed to atoms, only ∧/∨/∃/∀ above.

    ``->`` and ``<->`` are expanded on the way down.
    """
    _require_fo(formula, "NNF")
    return _nnf(formula, negate=False)


def _nnf(formula: Formula, negate: bool) -> Formula:
    if isinstance(formula, (Eq, Atom, DistAtom)):
        return Not(formula) if negate else formula
    if isinstance(formula, Top):
        return Bottom() if negate else formula
    if isinstance(formula, Bottom):
        return Top() if negate else formula
    if isinstance(formula, Not):
        return _nnf(formula.inner, not negate)
    if isinstance(formula, And):
        left = _nnf(formula.left, negate)
        right = _nnf(formula.right, negate)
        return Or(left, right) if negate else And(left, right)
    if isinstance(formula, Or):
        left = _nnf(formula.left, negate)
        right = _nnf(formula.right, negate)
        return And(left, right) if negate else Or(left, right)
    if isinstance(formula, Implies):
        return _nnf(Or(Not(formula.left), formula.right), negate)
    if isinstance(formula, Iff):
        expanded = Or(
            And(formula.left, formula.right),
            And(Not(formula.left), Not(formula.right)),
        )
        return _nnf(expanded, negate)
    if isinstance(formula, Exists):
        inner = _nnf(formula.inner, negate)
        return Forall(formula.variable, inner) if negate else Exists(formula.variable, inner)
    if isinstance(formula, Forall):
        inner = _nnf(formula.inner, negate)
        return Exists(formula.variable, inner) if negate else Forall(formula.variable, inner)
    raise FormulaError(f"unexpected node {type(formula).__name__}")


def is_nnf(formula: Formula) -> bool:
    """Whether negations appear only directly above atoms."""
    if isinstance(formula, (Eq, Atom, DistAtom, Top, Bottom)):
        return True
    if isinstance(formula, Not):
        return isinstance(formula.inner, (Eq, Atom, DistAtom))
    if isinstance(formula, (And, Or)):
        return is_nnf(formula.left) and is_nnf(formula.right)
    if isinstance(formula, (Exists, Forall)):
        return is_nnf(formula.inner)
    return False


def to_prenex(formula: Formula) -> Formula:
    """Prenex normal form: a quantifier prefix over a quantifier-free matrix.

    Works on the NNF of the input; bound variables are renamed apart first,
    so quantifiers can be pulled out without capture.
    """
    _require_fo(formula, "prenex")
    renamed = _rename_apart(to_nnf(formula))
    prefix, matrix = _pull(renamed)
    result: Formula = matrix
    for kind, variable in reversed(prefix):
        result = Exists(variable, result) if kind == "E" else Forall(variable, result)
    return result


def _rename_apart(formula: Formula) -> Formula:
    """Give every quantifier a globally fresh bound variable."""
    taken = set(all_variables(formula))

    def walk(node: Formula) -> Formula:
        if isinstance(node, (Eq, Atom, DistAtom, Top, Bottom)):
            return node
        if isinstance(node, Not):
            return Not(walk(node.inner))
        if isinstance(node, And):
            return And(walk(node.left), walk(node.right))
        if isinstance(node, Or):
            return Or(walk(node.left), walk(node.right))
        if isinstance(node, (Exists, Forall)):
            fresh = fresh_variable(node.variable, taken)
            taken.add(fresh)
            inner = node.inner
            if fresh != node.variable:
                inner = rename_free(inner, {node.variable: fresh})  # type: ignore[assignment]
            inner = walk(inner)  # type: ignore[arg-type]
            binder = Exists if isinstance(node, Exists) else Forall
            return binder(fresh, inner)
        raise FormulaError(f"unexpected node {type(node).__name__}")

    return walk(formula)


def _pull(formula: Formula) -> Tuple[List[Tuple[str, Variable]], Formula]:
    """Pull quantifiers of an apart-renamed NNF formula to the front."""
    if isinstance(formula, (Eq, Atom, DistAtom, Top, Bottom, Not)):
        return [], formula
    if isinstance(formula, Exists):
        prefix, matrix = _pull(formula.inner)
        return [("E", formula.variable)] + prefix, matrix
    if isinstance(formula, Forall):
        prefix, matrix = _pull(formula.inner)
        return [("A", formula.variable)] + prefix, matrix
    if isinstance(formula, (And, Or)):
        left_prefix, left_matrix = _pull(formula.left)
        right_prefix, right_matrix = _pull(formula.right)
        connective = And if isinstance(formula, And) else Or
        return left_prefix + right_prefix, connective(left_matrix, right_matrix)
    raise FormulaError(f"unexpected node {type(formula).__name__}")


def is_prenex(formula: Formula) -> bool:
    """Whether the formula is a quantifier prefix over a quantifier-free matrix."""
    node = formula
    while isinstance(node, (Exists, Forall)):
        node = node.inner
    from .syntax import subexpressions

    return not any(isinstance(n, (Exists, Forall)) for n in subexpressions(node))
