"""Reference semantics of FOC(P) — a literal rendering of Definition 3.1.

This evaluator is intentionally naive: ``∃`` iterates the whole universe and
``#(y1,...,yk)`` enumerates all ``|A|^k`` assignments.  It is the ground-truth
oracle every optimized engine in :mod:`repro.core` is tested against, and the
brute-force baseline of the scaling benchmarks (experiment E3).

Semantic values are integers: formulas evaluate to 0/1, counting terms to
arbitrary integers — exactly the paper's ``⟦xi⟧_I`` convention.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, Optional, Sequence, Tuple

from ..errors import ArityError, EvaluationError
from ..robust.budget import EvaluationBudget
from ..structures.gaifman import distance
from ..structures.structure import Element, Structure
from .predicates import PredicateCollection, standard_collection
from .syntax import (
    Add,
    And,
    Atom,
    Bottom,
    CountTerm,
    DistAtom,
    Eq,
    Exists,
    Expression,
    Forall,
    Formula,
    free_variables,
    Iff,
    Implies,
    IntTerm,
    Mul,
    Not,
    Or,
    PredicateAtom,
    Term,
    Top,
    Variable,
)

Assignment = Dict[Variable, Element]


class Interpretation:
    """A sigma-interpretation ``I = (A, beta)``.

    The assignment needs to cover only the free variables of the expressions
    evaluated under it; evaluating an expression with an unbound free variable
    raises :class:`~repro.errors.EvaluationError` (the paper's total
    assignments are realised lazily).
    """

    __slots__ = ("structure", "assignment", "predicates")

    def __init__(
        self,
        structure: Structure,
        assignment: "Optional[Dict[Variable, Element]]" = None,
        predicates: "Optional[PredicateCollection]" = None,
    ):
        self.structure = structure
        self.assignment: Assignment = dict(assignment or {})
        for variable, element in self.assignment.items():
            if element not in structure:
                raise EvaluationError(
                    f"assignment sends {variable!r} to {element!r}, "
                    "which is outside the universe"
                )
        self.predicates = predicates if predicates is not None else standard_collection()

    def rebind(self, variables: Sequence[Variable], elements: Sequence[Element]) -> "Interpretation":
        """``I[a1...ak / y1...yk]`` — a new interpretation with updated bindings."""
        updated = dict(self.assignment)
        updated.update(zip(variables, elements))
        return Interpretation(self.structure, updated, self.predicates)


def evaluate(
    expression: Expression,
    structure: Structure,
    assignment: "Optional[Dict[Variable, Element]]" = None,
    predicates: "Optional[PredicateCollection]" = None,
    budget: "Optional[EvaluationBudget]" = None,
) -> int:
    """``⟦xi⟧_I`` for the interpretation I = (structure, assignment).

    An optional :class:`~repro.robust.budget.EvaluationBudget` is drawn on
    once per quantifier/counting iteration, making even the naive
    ``n^k`` scans cancellable.
    """
    interpretation = Interpretation(structure, assignment, predicates)
    return _eval(
        expression,
        interpretation.structure,
        interpretation.assignment,
        interpretation.predicates,
        budget,
    )


def satisfies(
    structure: Structure,
    formula: Formula,
    assignment: "Optional[Dict[Variable, Element]]" = None,
    predicates: "Optional[PredicateCollection]" = None,
    budget: "Optional[EvaluationBudget]" = None,
) -> bool:
    """``I |= phi``."""
    if not isinstance(formula, Formula):
        raise EvaluationError("satisfies() expects a formula")
    return evaluate(formula, structure, assignment, predicates, budget) == 1


def term_value(
    structure: Structure,
    term: Term,
    assignment: "Optional[Dict[Variable, Element]]" = None,
    predicates: "Optional[PredicateCollection]" = None,
    budget: "Optional[EvaluationBudget]" = None,
) -> int:
    """``t^A[a-bar]`` for a counting term."""
    if not isinstance(term, Term):
        raise EvaluationError("term_value() expects a counting term")
    return evaluate(term, structure, assignment, predicates, budget)


def solutions(
    structure: Structure,
    formula: Formula,
    variables: Sequence[Variable],
    predicates: "Optional[PredicateCollection]" = None,
    budget: "Optional[EvaluationBudget]" = None,
) -> Iterator[Tuple[Element, ...]]:
    """Enumerate ``phi(A)``: all tuples ``a-bar`` with ``A |= phi[a-bar]``.

    ``variables`` fixes the tuple ordering and must cover ``free(phi)``.
    """
    missing = free_variables(formula) - set(variables)
    if missing:
        raise EvaluationError(f"variables {sorted(missing)} are free but not listed")
    collection = predicates if predicates is not None else standard_collection()
    env: Assignment = {}
    universe = structure.universe_order
    for tup in itertools.product(universe, repeat=len(variables)):
        if budget is not None:
            budget.tick("semantics.solutions")
        for variable, element in zip(variables, tup):
            env[variable] = element
        if _eval(formula, structure, env, collection, budget) == 1:
            yield tup


def count_solutions(
    structure: Structure,
    formula: Formula,
    variables: Sequence[Variable],
    predicates: "Optional[PredicateCollection]" = None,
    budget: "Optional[EvaluationBudget]" = None,
) -> int:
    """``|phi(A)|`` by brute-force enumeration (the counting problem)."""
    return sum(1 for _ in solutions(structure, formula, variables, predicates, budget))


def _eval(
    expression: Expression,
    structure: Structure,
    env: Assignment,
    predicates: PredicateCollection,
    budget: "Optional[EvaluationBudget]" = None,
) -> int:
    # -- formulas ---------------------------------------------------------------
    if isinstance(expression, Eq):
        return 1 if _lookup(expression.left, env) == _lookup(expression.right, env) else 0
    if isinstance(expression, Atom):
        symbol = structure.signature.get(expression.relation)
        if symbol is None:
            raise EvaluationError(
                f"relation {expression.relation!r} is not in the structure's signature"
            )
        if symbol.arity != len(expression.args):
            raise ArityError(
                f"atom {expression.relation} has {len(expression.args)} arguments, "
                f"signature says {symbol.arity}"
            )
        tup = tuple(_lookup(arg, env) for arg in expression.args)
        return 1 if tup in structure.relation(symbol) else 0
    if isinstance(expression, DistAtom):
        a = _lookup(expression.left, env)
        b = _lookup(expression.right, env)
        return 1 if distance(structure, a, b) <= expression.bound else 0
    if isinstance(expression, Not):
        return 1 - _eval(expression.inner, structure, env, predicates, budget)
    if isinstance(expression, Or):
        left = _eval(expression.left, structure, env, predicates, budget)
        if left == 1:
            return 1
        return _eval(expression.right, structure, env, predicates, budget)
    if isinstance(expression, And):
        left = _eval(expression.left, structure, env, predicates, budget)
        if left == 0:
            return 0
        return _eval(expression.right, structure, env, predicates, budget)
    if isinstance(expression, Implies):
        left = _eval(expression.left, structure, env, predicates, budget)
        if left == 0:
            return 1
        return _eval(expression.right, structure, env, predicates, budget)
    if isinstance(expression, Iff):
        left = _eval(expression.left, structure, env, predicates, budget)
        right = _eval(expression.right, structure, env, predicates, budget)
        return 1 if left == right else 0
    if isinstance(expression, Exists):
        return _eval_quantifier(
            expression.variable, expression.inner, structure, env, predicates, budget, want=1
        )
    if isinstance(expression, Forall):
        return _eval_quantifier(
            expression.variable, expression.inner, structure, env, predicates, budget, want=0
        )
    if isinstance(expression, Top):
        return 1
    if isinstance(expression, Bottom):
        return 0
    if isinstance(expression, PredicateAtom):
        values = tuple(
            _eval(term, structure, env, predicates, budget) for term in expression.terms
        )
        return 1 if predicates.query(expression.predicate, values) else 0

    # -- counting terms -----------------------------------------------------------
    if isinstance(expression, IntTerm):
        return expression.value
    if isinstance(expression, Add):
        return _eval(expression.left, structure, env, predicates, budget) + _eval(
            expression.right, structure, env, predicates, budget
        )
    if isinstance(expression, Mul):
        return _eval(expression.left, structure, env, predicates, budget) * _eval(
            expression.right, structure, env, predicates, budget
        )
    if isinstance(expression, CountTerm):
        variables = expression.variables
        if not variables:
            return _eval(expression.inner, structure, env, predicates, budget)
        saved = {v: env[v] for v in variables if v in env}
        total = 0
        universe = structure.universe_order
        try:
            for tup in itertools.product(universe, repeat=len(variables)):
                if budget is not None:
                    budget.tick("semantics.count")
                for variable, element in zip(variables, tup):
                    env[variable] = element
                total += _eval(expression.inner, structure, env, predicates, budget)
        finally:
            for variable in variables:
                env.pop(variable, None)
            env.update(saved)
        return total

    raise EvaluationError(f"unknown expression node {type(expression).__name__}")


def _eval_quantifier(
    variable: Variable,
    inner: Formula,
    structure: Structure,
    env: Assignment,
    predicates: PredicateCollection,
    budget: "Optional[EvaluationBudget]",
    want: int,
) -> int:
    """Shared ∃/∀ loop: ∃ short-circuits on value 1, ∀ on value 0."""
    had = variable in env
    saved = env.get(variable)
    try:
        for element in structure.universe_order:
            if budget is not None:
                budget.tick("semantics.quantifier")
            env[variable] = element
            if _eval(inner, structure, env, predicates, budget) == want:
                return want
        return 1 - want
    finally:
        if had:
            env[variable] = saved
        else:
            env.pop(variable, None)


def _lookup(variable: Variable, env: Assignment) -> Element:
    try:
        return env[variable]
    except KeyError:
        raise EvaluationError(f"free variable {variable!r} is not assigned") from None
