"""Pretty-printer for FOC(P) expressions.

Produces the ASCII concrete syntax accepted by :mod:`repro.logic.parser`;
``parse(pretty(e)) == e`` is a property test of the test suite.

Concrete syntax summary (see the parser for the grammar):

* ``x = y``, ``R(x, y)``, ``true``, ``false``, ``dist(x, y) <= 3``
* ``!phi``, ``phi & psi``, ``phi | psi``, ``phi -> psi``, ``phi <-> psi``
* ``exists x. phi``, ``forall x. phi``
* ``@eq(t1, t2)`` — numerical predicate atoms
* ``#(y, z). phi`` — counting terms; ``t + s``, ``t * s``, integers
"""

from __future__ import annotations

from ..errors import FormulaError
from .syntax import (
    Add,
    And,
    Atom,
    Bottom,
    CountTerm,
    DistAtom,
    Eq,
    Exists,
    Expression,
    Forall,
    Formula,
    Iff,
    Implies,
    IntTerm,
    Mul,
    Not,
    Or,
    PredicateAtom,
    Term,
    Top,
)

# Precedence levels (higher binds tighter).
_PREC_IFF = 1
_PREC_IMPLIES = 2
_PREC_OR = 3
_PREC_AND = 4
_PREC_UNARY = 5
_PREC_ATOM = 6

_PREC_ADD = 1
_PREC_MUL = 2
_PREC_TERM_ATOM = 3


def pretty(expression: Expression) -> str:
    """Render an expression in parser-compatible concrete syntax."""
    if isinstance(expression, Formula):
        return _formula(expression, 0)
    if isinstance(expression, Term):
        return _term(expression, 0)
    raise FormulaError(f"cannot pretty-print {type(expression).__name__}")


def _wrap(text: str, needed: bool) -> str:
    return f"({text})" if needed else text


def _formula(formula: Formula, context: int) -> str:
    if isinstance(formula, Eq):
        return f"{formula.left} = {formula.right}"
    if isinstance(formula, Atom):
        return f"{formula.relation}({', '.join(formula.args)})"
    if isinstance(formula, DistAtom):
        return f"dist({formula.left}, {formula.right}) <= {formula.bound}"
    if isinstance(formula, Top):
        return "true"
    if isinstance(formula, Bottom):
        return "false"
    if isinstance(formula, Not):
        return _wrap(f"!{_formula(formula.inner, _PREC_UNARY)}", context > _PREC_UNARY)
    if isinstance(formula, And):
        # '&' parses left-associatively, so a right-nested And needs parens
        # to round-trip structurally.
        text = (
            f"{_formula(formula.left, _PREC_AND)} & "
            f"{_formula(formula.right, _PREC_AND + 1)}"
        )
        return _wrap(text, context > _PREC_AND)
    if isinstance(formula, Or):
        text = (
            f"{_formula(formula.left, _PREC_OR)} | "
            f"{_formula(formula.right, _PREC_OR + 1)}"
        )
        return _wrap(text, context > _PREC_OR)
    if isinstance(formula, Implies):
        text = (
            f"{_formula(formula.left, _PREC_IMPLIES + 1)} -> "
            f"{_formula(formula.right, _PREC_IMPLIES)}"
        )
        return _wrap(text, context > _PREC_IMPLIES)
    if isinstance(formula, Iff):
        text = (
            f"{_formula(formula.left, _PREC_IFF + 1)} <-> "
            f"{_formula(formula.right, _PREC_IFF)}"
        )
        return _wrap(text, context > _PREC_IFF)
    if isinstance(formula, Exists):
        text = f"exists {formula.variable}. {_formula(formula.inner, 0)}"
        return _wrap(text, context > 0)
    if isinstance(formula, Forall):
        text = f"forall {formula.variable}. {_formula(formula.inner, 0)}"
        return _wrap(text, context > 0)
    if isinstance(formula, PredicateAtom):
        args = ", ".join(_term(t, 0) for t in formula.terms)
        return f"@{formula.predicate}({args})"
    raise FormulaError(f"unknown formula node {type(formula).__name__}")


def _term(term: Term, context: int) -> str:
    if isinstance(term, IntTerm):
        text = str(term.value)
        return _wrap(text, term.value < 0 and context >= _PREC_MUL)
    if isinstance(term, Add):
        # Render s + (-1)*t as s - t for readability; the parser reverses it.
        right = term.right
        if (
            isinstance(right, Mul)
            and isinstance(right.left, IntTerm)
            and right.left.value == -1
        ):
            text = f"{_term(term.left, _PREC_ADD)} - {_term(right.right, _PREC_ADD + 1)}"
        else:
            # '+' parses left-associatively: parenthesise right-nested sums.
            text = f"{_term(term.left, _PREC_ADD)} + {_term(right, _PREC_ADD + 1)}"
        return _wrap(text, context > _PREC_ADD)
    if isinstance(term, Mul):
        text = f"{_term(term.left, _PREC_MUL)} * {_term(term.right, _PREC_MUL + 1)}"
        return _wrap(text, context > _PREC_MUL)
    if isinstance(term, CountTerm):
        body = term.inner
        if isinstance(body, (Eq, Atom, DistAtom, Top, Bottom, PredicateAtom, Not)):
            rendered = _formula(body, _PREC_UNARY)
        else:
            rendered = f"({_formula(body, 0)})"
        variables = ", ".join(term.variables)
        return f"#({variables}). {rendered}"
    raise FormulaError(f"unknown term node {type(term).__name__}")
