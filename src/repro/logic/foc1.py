"""The fragment FOC1(P) — Definition 5.1.

FOC1(P) restricts rule (4) of Definition 3.1: a numerical predicate may only
be applied to counting terms ``t1, ..., tm`` whose free variables *jointly*
number at most one (rule 4').  Everything else — negation, disjunction,
quantification, counting, integer arithmetic — is unrestricted, so FOC1(P)
still extends FO and captures the SQL COUNT idioms of Examples 5.3/5.4.

This module provides the fragment check, diagnostic reporting of violations,
and small structural analyses used by the evaluation engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List

from ..errors import FragmentError
from .syntax import (
    CountTerm,
    Expression,
    PredicateAtom,
    Term,
    count_depth,
    free_variables,
    subexpressions,
)


@dataclass(frozen=True)
class Foc1Violation:
    """A predicate atom that breaks rule (4'), with its offending variables."""

    atom: PredicateAtom
    variables: FrozenSet[str]

    def describe(self) -> str:
        names = ", ".join(sorted(self.variables))
        return (
            f"predicate atom @{self.atom.predicate}(...) mentions free variables "
            f"{{{names}}}; FOC1(P) allows at most one"
        )


def foc1_violations(expression: Expression) -> List[Foc1Violation]:
    """All rule-(4') violations anywhere inside ``expression``."""
    violations: List[Foc1Violation] = []
    for node in subexpressions(expression):
        if isinstance(node, PredicateAtom):
            joint: FrozenSet[str] = frozenset()
            for term in node.terms:
                joint |= free_variables(term)
            if len(joint) > 1:
                violations.append(Foc1Violation(node, joint))
    return violations


def is_foc1(expression: Expression) -> bool:
    """Whether the expression belongs to FOC1(P) (Definition 5.1)."""
    return not foc1_violations(expression)


def assert_foc1(expression: Expression) -> None:
    """Raise :class:`~repro.errors.FragmentError` with a diagnostic if the
    expression uses rule (4) beyond rule (4')."""
    violations = foc1_violations(expression)
    if violations:
        details = "; ".join(v.describe() for v in violations[:3])
        more = "" if len(violations) <= 3 else f" (+{len(violations) - 3} more)"
        raise FragmentError(f"not an FOC1(P) expression: {details}{more}")


def is_plain_fo(expression: Expression) -> bool:
    """Whether the expression is pure FO (rules 1-3 only): no counting
    machinery at all.  Distance atoms are allowed (FO+ is FO)."""
    return all(
        not isinstance(node, (PredicateAtom, CountTerm, Term))
        for node in subexpressions(expression)
    )


def counting_terms(expression: Expression) -> Iterator[CountTerm]:
    """All counting-term subexpressions, outermost first."""
    for node in subexpressions(expression):
        if isinstance(node, CountTerm):
            yield node


def max_counting_width(expression: Expression) -> int:
    """The largest number of variables bound by any ``#`` in the expression.

    For a counting term this includes its own free variable if any: the
    *width* (in the sense of Section 6's cl-terms) of ``#(y2..yk).psi(y1,..)``
    is k.  This quantity controls the exponent of brute-force evaluation and
    the ``G_k`` pattern enumeration of Lemma 6.4.
    """
    best = 0
    for term in counting_terms(expression):
        width = len(term.variables) + len(free_variables(term))
        best = max(best, width)
    return best


def fragment_summary(expression: Expression) -> dict:
    """A small structural report used by examples and benchmarks."""
    violations = foc1_violations(expression)
    return {
        "is_fo": is_plain_fo(expression),
        "is_foc1": not violations,
        "violations": len(violations),
        "count_depth": count_depth(expression),
        "max_counting_width": max_counting_width(expression),
    }
