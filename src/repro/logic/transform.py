"""Syntactic transformations on FOC(P) expressions.

Provides the workhorses used throughout the reproduction:

* capture-avoiding renaming of free variables (used by the Section 5
  free-variable elimination and by Theorem 6.10's ``z``-normalisation);
* elimination of derived connectives down to the paper's core syntax
  (rules 1-7 of Definition 3.1);
* quantifier/counting relativization (the ``∃x(ψ_a(x) ∧ ψ)`` rewriting in
  the proof of Theorem 4.1);
* light algebraic simplification (constant folding), handy for keeping
  machine-generated formulas readable.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Mapping, Set

from ..errors import FormulaError
from .syntax import (
    Add,
    And,
    Atom,
    Bottom,
    CountTerm,
    DistAtom,
    Eq,
    Exists,
    Expression,
    Forall,
    Formula,
    Iff,
    Implies,
    IntTerm,
    Mul,
    Not,
    Or,
    PredicateAtom,
    Term,
    Top,
    Variable,
    all_variables,
)


def fresh_variable(base: Variable, used: Iterable[Variable]) -> Variable:
    """A variable named after ``base`` that avoids every name in ``used``."""
    taken = set(used)
    if base not in taken:
        return base
    for index in itertools.count(1):
        candidate = f"{base}_{index}"
        if candidate not in taken:
            return candidate
    raise AssertionError("unreachable")


def rename_free(expression: Expression, mapping: Mapping[Variable, Variable]) -> Expression:
    """Capture-avoiding renaming of *free* variable occurrences.

    Bound variables are alpha-renamed on demand when they would capture a
    substituted name.
    """
    relevant = {
        old: new for old, new in mapping.items() if old != new
    }
    if not relevant:
        return expression
    forbidden = set(relevant.values()) | set(relevant) | set(all_variables(expression))
    return _rename(expression, dict(relevant), forbidden)


def _rename(
    expression: Expression, env: Dict[Variable, Variable], forbidden: Set[Variable]
) -> Expression:
    if isinstance(expression, Eq):
        return Eq(env.get(expression.left, expression.left), env.get(expression.right, expression.right))
    if isinstance(expression, Atom):
        return Atom(expression.relation, tuple(env.get(a, a) for a in expression.args))
    if isinstance(expression, DistAtom):
        return DistAtom(
            env.get(expression.left, expression.left),
            env.get(expression.right, expression.right),
            expression.bound,
        )
    if isinstance(expression, Not):
        return Not(_rename(expression.inner, env, forbidden))
    if isinstance(expression, Or):
        return Or(_rename(expression.left, env, forbidden), _rename(expression.right, env, forbidden))
    if isinstance(expression, And):
        return And(_rename(expression.left, env, forbidden), _rename(expression.right, env, forbidden))
    if isinstance(expression, Implies):
        return Implies(_rename(expression.left, env, forbidden), _rename(expression.right, env, forbidden))
    if isinstance(expression, Iff):
        return Iff(_rename(expression.left, env, forbidden), _rename(expression.right, env, forbidden))
    if isinstance(expression, (Top, Bottom, IntTerm)):
        return expression
    if isinstance(expression, (Exists, Forall)):
        binder = type(expression)
        variable = expression.variable
        scoped = {old: new for old, new in env.items() if old != variable}
        if variable in set(scoped.values()):
            renamed = fresh_variable(variable, forbidden)
            forbidden = forbidden | {renamed}
            scoped[variable] = renamed
            return binder(renamed, _rename(expression.inner, scoped, forbidden))
        return binder(variable, _rename(expression.inner, scoped, forbidden))
    if isinstance(expression, PredicateAtom):
        return PredicateAtom(
            expression.predicate,
            tuple(_rename(t, env, forbidden) for t in expression.terms),
        )
    if isinstance(expression, Add):
        return Add(_rename(expression.left, env, forbidden), _rename(expression.right, env, forbidden))
    if isinstance(expression, Mul):
        return Mul(_rename(expression.left, env, forbidden), _rename(expression.right, env, forbidden))
    if isinstance(expression, CountTerm):
        bound = expression.variables
        scoped = {old: new for old, new in env.items() if old not in bound}
        targets = set(scoped.values())
        if targets & set(bound):
            replacements: Dict[Variable, Variable] = {}
            new_bound = []
            for variable in bound:
                if variable in targets:
                    renamed = fresh_variable(variable, forbidden)
                    forbidden = forbidden | {renamed}
                    replacements[variable] = renamed
                    new_bound.append(renamed)
                else:
                    new_bound.append(variable)
            scoped.update(replacements)
            return CountTerm(tuple(new_bound), _rename(expression.inner, scoped, forbidden))
        return CountTerm(bound, _rename(expression.inner, scoped, forbidden))
    raise FormulaError(f"unknown expression node {type(expression).__name__}")


def to_primitive(expression: Expression) -> Expression:
    """Eliminate derived constructs, yielding the paper's core syntax.

    ``∧``, ``→``, ``↔``, ``∀`` are rewritten through ``¬`` and ``∨``;
    ``⊤``/``⊥`` become the sentences ``¬∃z ¬z=z`` / ``∃z ¬z=z``.
    Distance atoms are left alone (they are FO+ primitives; expansion to pure
    FO needs a signature — see :func:`repro.logic.locality.dist_formula`).
    """
    if isinstance(expression, (Eq, Atom, DistAtom, IntTerm)):
        return expression
    if isinstance(expression, Not):
        return Not(to_primitive(expression.inner))
    if isinstance(expression, Or):
        return Or(to_primitive(expression.left), to_primitive(expression.right))
    if isinstance(expression, And):
        return Not(Or(Not(to_primitive(expression.left)), Not(to_primitive(expression.right))))
    if isinstance(expression, Implies):
        return Or(Not(to_primitive(expression.left)), to_primitive(expression.right))
    if isinstance(expression, Iff):
        left = to_primitive(expression.left)
        right = to_primitive(expression.right)
        # (l -> r) and (r -> l), fully primitively:
        forward = Or(Not(left), right)
        backward = Or(Not(right), left)
        return Not(Or(Not(forward), Not(backward)))
    if isinstance(expression, Exists):
        return Exists(expression.variable, to_primitive(expression.inner))
    if isinstance(expression, Forall):
        return Not(Exists(expression.variable, Not(to_primitive(expression.inner))))
    if isinstance(expression, Top):
        fresh = fresh_variable("z", all_variables(expression))
        return Not(Exists(fresh, Not(Eq(fresh, fresh))))
    if isinstance(expression, Bottom):
        fresh = fresh_variable("z", all_variables(expression))
        return Exists(fresh, Not(Eq(fresh, fresh)))
    if isinstance(expression, PredicateAtom):
        return PredicateAtom(
            expression.predicate, tuple(to_primitive(t) for t in expression.terms)
        )
    if isinstance(expression, Add):
        return Add(to_primitive(expression.left), to_primitive(expression.right))
    if isinstance(expression, Mul):
        return Mul(to_primitive(expression.left), to_primitive(expression.right))
    if isinstance(expression, CountTerm):
        return CountTerm(expression.variables, to_primitive(expression.inner))
    raise FormulaError(f"unknown expression node {type(expression).__name__}")


def relativize(
    formula: Formula,
    guard: Callable[[Variable], Formula],
    relativize_counts: bool = True,
) -> Formula:
    """Relativize all quantifiers (and optionally counting binders) to a guard.

    ``∃x ψ`` becomes ``∃x (guard(x) ∧ ψ')`` and ``∀x ψ`` becomes
    ``∀x (guard(x) → ψ')`` — the rewriting used in the proof of Theorem 4.1
    ("replacing subformulas ∃x ψ by ∃x(ψ_a(x) ∧ ψ)").  With
    ``relativize_counts`` the binder ``#(y1..yk).ψ`` becomes
    ``#(y1..yk).(guard(y1) ∧ ... ∧ guard(yk) ∧ ψ')``.
    """
    if isinstance(formula, (Eq, Atom, DistAtom, Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(relativize(formula.inner, guard, relativize_counts))
    if isinstance(formula, Or):
        return Or(
            relativize(formula.left, guard, relativize_counts),
            relativize(formula.right, guard, relativize_counts),
        )
    if isinstance(formula, And):
        return And(
            relativize(formula.left, guard, relativize_counts),
            relativize(formula.right, guard, relativize_counts),
        )
    if isinstance(formula, Implies):
        return Implies(
            relativize(formula.left, guard, relativize_counts),
            relativize(formula.right, guard, relativize_counts),
        )
    if isinstance(formula, Iff):
        return Iff(
            relativize(formula.left, guard, relativize_counts),
            relativize(formula.right, guard, relativize_counts),
        )
    if isinstance(formula, Exists):
        return Exists(
            formula.variable,
            And(guard(formula.variable), relativize(formula.inner, guard, relativize_counts)),
        )
    if isinstance(formula, Forall):
        return Forall(
            formula.variable,
            Implies(guard(formula.variable), relativize(formula.inner, guard, relativize_counts)),
        )
    if isinstance(formula, PredicateAtom):
        return PredicateAtom(
            formula.predicate,
            tuple(_relativize_term(t, guard, relativize_counts) for t in formula.terms),
        )
    raise FormulaError(f"unknown formula node {type(formula).__name__}")


def _relativize_term(
    term: Term, guard: Callable[[Variable], Formula], relativize_counts: bool
) -> Term:
    if isinstance(term, IntTerm):
        return term
    if isinstance(term, Add):
        return Add(
            _relativize_term(term.left, guard, relativize_counts),
            _relativize_term(term.right, guard, relativize_counts),
        )
    if isinstance(term, Mul):
        return Mul(
            _relativize_term(term.left, guard, relativize_counts),
            _relativize_term(term.right, guard, relativize_counts),
        )
    if isinstance(term, CountTerm):
        inner = relativize(term.inner, guard, relativize_counts)
        if relativize_counts:
            for variable in reversed(term.variables):
                inner = And(guard(variable), inner)
        return CountTerm(term.variables, inner)
    raise FormulaError(f"unknown term node {type(term).__name__}")


def simplify(expression: Expression) -> Expression:
    """Light bottom-up simplification: boolean absorption with ⊤/⊥, double
    negation, and integer constant folding.  Semantics-preserving."""
    if isinstance(expression, (Eq, Atom, DistAtom, Top, Bottom, IntTerm)):
        return expression
    if isinstance(expression, Not):
        inner = simplify(expression.inner)
        if isinstance(inner, Top):
            return Bottom()
        if isinstance(inner, Bottom):
            return Top()
        if isinstance(inner, Not):
            return inner.inner
        return Not(inner)
    if isinstance(expression, Or):
        left = simplify(expression.left)
        right = simplify(expression.right)
        if isinstance(left, Top) or isinstance(right, Top):
            return Top()
        if isinstance(left, Bottom):
            return right
        if isinstance(right, Bottom):
            return left
        return Or(left, right)
    if isinstance(expression, And):
        left = simplify(expression.left)
        right = simplify(expression.right)
        if isinstance(left, Bottom) or isinstance(right, Bottom):
            return Bottom()
        if isinstance(left, Top):
            return right
        if isinstance(right, Top):
            return left
        return And(left, right)
    if isinstance(expression, Implies):
        left = simplify(expression.left)
        right = simplify(expression.right)
        if isinstance(left, Bottom) or isinstance(right, Top):
            return Top()
        if isinstance(left, Top):
            return right
        return Implies(left, right)
    if isinstance(expression, Iff):
        left = simplify(expression.left)
        right = simplify(expression.right)
        if isinstance(left, Top):
            return right
        if isinstance(right, Top):
            return left
        if isinstance(left, Bottom):
            return simplify(Not(right))
        if isinstance(right, Bottom):
            return simplify(Not(left))
        return Iff(left, right)
    if isinstance(expression, Exists):
        inner = simplify(expression.inner)
        if isinstance(inner, (Top, Bottom)):
            # universes are non-empty, so the quantifier is vacuous
            return inner
        return Exists(expression.variable, inner)
    if isinstance(expression, Forall):
        inner = simplify(expression.inner)
        if isinstance(inner, (Top, Bottom)):
            return inner
        return Forall(expression.variable, inner)
    if isinstance(expression, PredicateAtom):
        return PredicateAtom(
            expression.predicate, tuple(simplify(t) for t in expression.terms)
        )
    if isinstance(expression, Add):
        left = simplify(expression.left)
        right = simplify(expression.right)
        if isinstance(left, IntTerm) and isinstance(right, IntTerm):
            return IntTerm(left.value + right.value)
        if isinstance(left, IntTerm) and left.value == 0:
            return right
        if isinstance(right, IntTerm) and right.value == 0:
            return left
        return Add(left, right)
    if isinstance(expression, Mul):
        left = simplify(expression.left)
        right = simplify(expression.right)
        if isinstance(left, IntTerm) and isinstance(right, IntTerm):
            return IntTerm(left.value * right.value)
        if isinstance(left, IntTerm) and left.value == 1:
            return right
        if isinstance(right, IntTerm) and right.value == 1:
            return left
        if (isinstance(left, IntTerm) and left.value == 0) or (
            isinstance(right, IntTerm) and right.value == 0
        ):
            return IntTerm(0)
        return Mul(left, right)
    if isinstance(expression, CountTerm):
        inner = simplify(expression.inner)
        if isinstance(inner, Bottom):
            return IntTerm(0)
        return CountTerm(expression.variables, inner)
    raise FormulaError(f"unknown expression node {type(expression).__name__}")
