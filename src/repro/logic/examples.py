"""The paper's running example formulas, machine-readable.

Implements Example 3.2 (prime sums and degree counts over digraphs) and
Example 5.4 (the coloured-digraph triangle census).  These are used verbatim
by tests, examples and the E12 benchmark, and they double as documentation
of what FOC(P) / FOC1(P) formulas look like in this library.
"""

from __future__ import annotations

from .builder import Rel, count
from .syntax import (
    And,
    CountTerm,
    Eq,
    Exists,
    Formula,
    PredicateAtom,
    Term,
)

E = Rel("E", 2)
R = Rel("R", 1)
B = Rel("B", 1)
G = Rel("G", 1)


def nodes_term() -> CountTerm:
    """``#(x). x=x`` — the number of nodes."""
    return count(["x"], Eq("x", "x"))


def edges_term() -> CountTerm:
    """``#(x, y). E(x, y)`` — the number of (directed) edges."""
    return count(["x", "y"], E("x", "y"))


def example_3_2_prime_sum() -> Formula:
    """Example 3.2, first formula: nodes + edges is a prime.

    ``Prime( #(x).x=x + #(x,y).E(x,y) )`` — a sentence, and in FOC1(P)
    because both terms are ground.
    """
    return PredicateAtom("prime", (nodes_term() + edges_term(),))


def out_degree_term(variable: str = "y") -> CountTerm:
    """``#(z). E(y, z)`` — the out-degree of ``y`` (Example 3.2)."""
    return count(["z"], E(variable, "z"))


def out_degree_positive(variable: str = "y") -> Formula:
    """``P>=1(#(z).E(y,z))`` — out-degree of y is >= 1; in FOC1(P)."""
    return out_degree_term(variable).geq1()


def example_3_2_degree_prime() -> Formula:
    """Example 3.2, last formula — **not** in FOC1(P).

    ``exists x Prime( #(y). P=( #(z).E(x,z), #(z).E(y,z) ) )``: some
    out-degree d occurs a prime number of times.  The inner ``P=`` compares
    terms whose joint free variables are {x, y}, violating rule (4').
    """
    inner_eq = PredicateAtom(
        "eq", (count(["z"], E("x", "z")), count(["z"], E("y", "z")))
    )
    return Exists("x", PredicateAtom("prime", (count(["y"], inner_eq),)))


# ---------------------------------------------------------------------------
# Example 5.4 — coloured digraph census
# ---------------------------------------------------------------------------


def red_count_term() -> CountTerm:
    """``t_R = #(x). R(x)`` — total number of red nodes."""
    return count(["x"], R("x"))


def _two_bound(variable: str) -> tuple:
    """Two bound-variable names distinct from ``variable`` (capture-free)."""
    names = [name for name in ("y", "z", "w", "v") if name != variable]
    return names[0], names[1]


def triangle_term(variable: str = "x") -> CountTerm:
    """``t_Delta(x) = #(y, z).(E(x,y) & E(y,z) & E(z,x))`` — the number of
    directed triangles through ``x``.  Bound names are chosen capture-free
    when ``variable`` collides with the paper's ``y``/``z``."""
    first, second = _two_bound(variable)
    return count(
        [first, second],
        And(E(variable, first), And(E(first, second), E(second, variable))),
    )


def phi_triangles_equal_reds(variable: str = "x") -> Formula:
    """``phi_{Delta,R}(x)``: x participates in exactly as many triangles as
    there are red nodes.  In FOC1(P): the joint free variables of the two
    compared terms are just {x}."""
    return triangle_term(variable).eq(red_count_term())


def count_phi_triangles_equal_reds() -> CountTerm:
    """``t_{Delta,R} = #(x). phi_{Delta,R}(x)`` — how many such nodes exist."""
    return count(["x"], phi_triangles_equal_reds("x"))


def blue_neighbour_term(variable: str = "x") -> CountTerm:
    """``t_B(x) = #(y).(E(x,y) & B(y))`` — number of blue out-neighbours.
    The bound name is chosen capture-free."""
    bound = "y" if variable != "y" else "w"
    return count([bound], And(E(variable, bound), B(bound)))


def phi_blue_balance(variable: str = "x") -> Formula:
    """``phi_{B,Delta,R}(x)``: t_B(x) = t_Delta(x) + t_{Delta,R}."""
    return blue_neighbour_term(variable).eq(
        triangle_term(variable) + count_phi_triangles_equal_reds()
    )


def example_5_4_query():
    """The full query of Example 5.4:

    ``{ (x, y, t_B(x) * t_Delta(y)) : phi_{B,Delta,R}(x) & G(y) }``.

    Returns a :class:`repro.core.query.Foc1Query` (imported lazily to avoid
    a package cycle).
    """
    from ..core.query import Foc1Query

    head_term: Term = blue_neighbour_term("x") * triangle_term("y")
    condition: Formula = And(phi_blue_balance("x"), G("y"))
    return Foc1Query(head_variables=("x", "y"), head_terms=(head_term,), condition=condition)
