"""FOC(P) substrate: syntax, semantics, parsing, fragments, and locality.

Implements Section 3 (the logic FOC(P) of Kuske–Schweikardt), Definition 5.1
(the fragment FOC1(P)), and the locality toolkit of Sections 6.1 and 7 that
the evaluation engines in :mod:`repro.core` are built on.
"""

from .predicates import (
    DIVIDES,
    EQ,
    EVEN,
    GEQ1,
    GT,
    LEQ,
    LT,
    NEQ,
    ODD,
    PRIME,
    ZERO,
    NumericalPredicate,
    PredicateCollection,
    STANDARD_PREDICATES,
    standard_collection,
)
from .syntax import (
    Add,
    And,
    Atom,
    Bottom,
    CountTerm,
    DistAtom,
    Eq,
    Exists,
    Expression,
    Forall,
    Formula,
    Iff,
    Implies,
    IntTerm,
    Mul,
    Not,
    Or,
    PredicateAtom,
    Term,
    Top,
    Variable,
    all_variables,
    conjunction,
    count_depth,
    disjunction,
    exists_block,
    expression_size,
    forall_block,
    free_variables,
    is_ground_term,
    is_sentence,
    predicate_names,
    relation_names,
    subexpressions,
    uses_distance_atoms,
)
from .semantics import (
    Interpretation,
    count_solutions,
    evaluate,
    satisfies,
    solutions,
    term_value,
)
from .builder import Rel, count, eq, exists, forall, num, rels, term, total, variables
from .parser import parse_formula, parse_term
from .printer import pretty
from .transform import (
    fresh_variable,
    relativize,
    rename_free,
    simplify,
    to_primitive,
)
from .foc1 import (
    Foc1Violation,
    assert_foc1,
    counting_terms,
    foc1_violations,
    fragment_summary,
    is_foc1,
    is_plain_fo,
    max_counting_width,
)
from .normalform import is_nnf, is_prenex, to_nnf, to_prenex
from .locality import (
    ScatteredSentence,
    adjacency_formula,
    all_graphs_on,
    delta_formula,
    dist_formula,
    dist_gt_formula,
    evaluate_in_neighbourhood,
    expand_distance_atoms,
    gaifman_locality_radius,
    graph_components,
    is_connected_graph,
    is_r_local_at,
    quantifier_rank,
)

__all__ = [name for name in dir() if not name.startswith("_")]
