"""Locality machinery: distance formulas, r-local formulas, the connectivity
formulas ``delta_G,r``, and basic local sentences (Sections 6.1-6.2, 7).

Pure-FO distance formulas are built by recursive doubling, so
``dist_formula(x, y, r)`` has quantifier rank O(log r) — the very fact that
motivates the paper's FO+ "distance atoms" and the fine-tuned q-rank measure.
Both representations are available here:

* :func:`dist_formula` — pure FO over a signature (no distance atoms);
* :class:`~repro.logic.syntax.DistAtom` — the FO+ primitive, expanded on
  demand by :func:`expand_distance_atoms`.

Locality itself is a *semantic* property; we provide the standard
Gaifman-theorem upper bound on the locality radius via the quantifier rank
(every FO formula of rank q is r-local for ``r = (7^q - 1)/2``), plus a
semantic locality checker used by property tests.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import FormulaError
from ..structures.gaifman import distances_from, neighbourhood
from ..structures.signature import Signature
from ..structures.structure import Element, Structure
from .predicates import PredicateCollection
from .semantics import satisfies
from .syntax import (
    And,
    Atom,
    Bottom,
    DistAtom,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    PredicateAtom,
    Top,
    Variable,
    conjunction,
    exists_block,
    free_variables,
    subexpressions,
)


# ---------------------------------------------------------------------------
# Quantifier rank (FO+ fragment)
# ---------------------------------------------------------------------------


def quantifier_rank(formula: Formula) -> int:
    """Quantifier rank of an FO+ formula.  Counting constructs are rejected
    (they have no classical rank); use q-rank machinery from
    :mod:`repro.core.rank` for the two-parameter measure of Section 7."""
    if isinstance(formula, (Eq, Atom, DistAtom, Top, Bottom)):
        return 0
    if isinstance(formula, Not):
        return quantifier_rank(formula.inner)
    if isinstance(formula, (Or, And, Implies, Iff)):
        return max(quantifier_rank(formula.left), quantifier_rank(formula.right))
    if isinstance(formula, (Exists, Forall)):
        return 1 + quantifier_rank(formula.inner)
    raise FormulaError(
        f"quantifier_rank is defined on FO+ formulas; found {type(formula).__name__}"
    )


def gaifman_locality_radius(formula: Formula) -> int:
    """Conservative locality radius from Gaifman's theorem.

    An FO formula of quantifier rank q is r-local around its free variables
    for ``r = (7^q - 1) / 2``.  Distance atoms ``dist <= d`` are accounted
    for as if implemented by their pure-FO expansion (rank ``ceil(log2 d)+1``).
    """
    extra = 0
    for node in subexpressions(formula):
        if isinstance(node, DistAtom) and node.bound > 0:
            extra = max(extra, math.ceil(math.log2(node.bound)) + 1 if node.bound > 1 else 1)
    rank = quantifier_rank(formula) + extra
    return (7**rank - 1) // 2


# ---------------------------------------------------------------------------
# Pure-FO distance formulas
# ---------------------------------------------------------------------------


def adjacency_formula(x: Variable, y: Variable, signature: Signature) -> Formula:
    """Gaifman adjacency as an FO formula: distinct x, y co-occur in a tuple."""
    disjuncts: List[Formula] = []
    for symbol in signature:
        if symbol.arity < 2:
            continue
        for i in range(symbol.arity):
            for j in range(symbol.arity):
                if i == j:
                    continue
                args: List[Variable] = []
                bound: List[Variable] = []
                for position in range(symbol.arity):
                    if position == i:
                        args.append(x)
                    elif position == j:
                        args.append(y)
                    else:
                        helper = f"_adj_{symbol.name}_{position}"
                        args.append(helper)
                        bound.append(helper)
                disjuncts.append(exists_block(bound, Atom(symbol.name, tuple(args))))
    if not disjuncts:
        return Bottom()
    body: Formula = disjuncts[0]
    for disjunct in disjuncts[1:]:
        body = Or(body, disjunct)
    return And(Not(Eq(x, y)), body)


def dist_formula(x: Variable, y: Variable, radius: int, signature: Signature) -> Formula:
    """``dist_sigma(x, y) <= radius`` in pure FO (recursive doubling).

    Quantifier rank is ``O(log radius)``; midpoints get fresh reserved names
    (prefix ``_m``), so ``x`` and ``y`` may be any non-reserved variables.
    """
    if radius < 0:
        raise FormulaError("radius must be non-negative")
    counter = itertools.count()

    def build(a: Variable, b: Variable, r: int) -> Formula:
        if r == 0:
            return Eq(a, b)
        if r == 1:
            return Or(Eq(a, b), adjacency_formula(a, b, signature))
        half_hi = (r + 1) // 2
        half_lo = r // 2
        midpoint = f"_m{next(counter)}"
        return Exists(midpoint, And(build(a, midpoint, half_hi), build(midpoint, b, half_lo)))

    return build(x, y, radius)


def dist_gt_formula(x: Variable, y: Variable, radius: int, signature: Signature) -> Formula:
    """``dist_sigma(x, y) > radius`` (the paper's ``dist > r`` shorthand)."""
    return Not(dist_formula(x, y, radius, signature))


def expand_distance_atoms(formula: Formula, signature: Signature) -> Formula:
    """Replace every FO+ atom ``dist(x,y) <= d`` by its pure-FO expansion."""
    if isinstance(formula, DistAtom):
        return dist_formula(formula.left, formula.right, formula.bound, signature)
    if isinstance(formula, (Eq, Atom, Top, Bottom, PredicateAtom)):
        return formula
    if isinstance(formula, Not):
        return Not(expand_distance_atoms(formula.inner, signature))
    if isinstance(formula, Or):
        return Or(
            expand_distance_atoms(formula.left, signature),
            expand_distance_atoms(formula.right, signature),
        )
    if isinstance(formula, And):
        return And(
            expand_distance_atoms(formula.left, signature),
            expand_distance_atoms(formula.right, signature),
        )
    if isinstance(formula, Implies):
        return Implies(
            expand_distance_atoms(formula.left, signature),
            expand_distance_atoms(formula.right, signature),
        )
    if isinstance(formula, Iff):
        return Iff(
            expand_distance_atoms(formula.left, signature),
            expand_distance_atoms(formula.right, signature),
        )
    if isinstance(formula, Exists):
        return Exists(formula.variable, expand_distance_atoms(formula.inner, signature))
    if isinstance(formula, Forall):
        return Forall(formula.variable, expand_distance_atoms(formula.inner, signature))
    raise FormulaError(f"cannot expand distance atoms in {type(formula).__name__}")


# ---------------------------------------------------------------------------
# Connectivity formulas delta_G,r (Section 6.1)
# ---------------------------------------------------------------------------


def delta_formula(
    variables: Sequence[Variable],
    edges: Iterable[Tuple[int, int]],
    radius: int,
) -> Formula:
    """``delta_G,r(y-bar)`` as an FO+ formula over 1-based edge positions:
    conjunction of ``dist(y_i, y_j) <= r`` for edges and the negation for
    non-edges (Section 6.1 / Section 7.2)."""
    k = len(variables)
    edge_set = {tuple(sorted(edge)) for edge in edges}
    for i, j in edge_set:
        if not (1 <= i < j <= k):
            raise FormulaError(f"edge ({i},{j}) out of range for k={k}")
    conjuncts: List[Formula] = []
    for i in range(1, k + 1):
        for j in range(i + 1, k + 1):
            atom = DistAtom(variables[i - 1], variables[j - 1], radius)
            conjuncts.append(atom if (i, j) in edge_set else Not(atom))
    return conjunction(conjuncts)


def all_graphs_on(k: int) -> List[FrozenSet[Tuple[int, int]]]:
    """The set ``G_k`` of all graphs with vertex set [k], as edge sets."""
    pairs = [(i, j) for i in range(1, k + 1) for j in range(i + 1, k + 1)]
    graphs: List[FrozenSet[Tuple[int, int]]] = []
    for bits in itertools.product((False, True), repeat=len(pairs)):
        graphs.append(frozenset(pair for pair, bit in zip(pairs, bits) if bit))
    return graphs


def graph_components(k: int, edges: FrozenSet[Tuple[int, int]]) -> List[FrozenSet[int]]:
    """Connected components of a graph on [k], ordered by smallest member."""
    adjacency: Dict[int, Set[int]] = {i: set() for i in range(1, k + 1)}
    for i, j in edges:
        adjacency[i].add(j)
        adjacency[j].add(i)
    seen: Set[int] = set()
    components: List[FrozenSet[int]] = []
    for start in range(1, k + 1):
        if start in seen:
            continue
        component = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbour in adjacency[node]:
                if neighbour not in component:
                    component.add(neighbour)
                    stack.append(neighbour)
        seen |= component
        components.append(frozenset(component))
    return components


def is_connected_graph(k: int, edges: FrozenSet[Tuple[int, int]]) -> bool:
    return len(graph_components(k, edges)) <= 1


# ---------------------------------------------------------------------------
# Semantic locality
# ---------------------------------------------------------------------------


def evaluate_in_neighbourhood(
    structure: Structure,
    formula: Formula,
    variables: Sequence[Variable],
    elements: Sequence[Element],
    radius: int,
    predicates: "Optional[PredicateCollection]" = None,
) -> bool:
    """Evaluate ``phi[a-bar]`` inside ``N_r(a-bar)`` — the right-hand side of
    the r-locality equivalence."""
    local = neighbourhood(structure, elements, radius)
    assignment = dict(zip(variables, elements))
    return satisfies(local, formula, assignment, predicates)


def is_r_local_at(
    structure: Structure,
    formula: Formula,
    variables: Sequence[Variable],
    elements: Sequence[Element],
    radius: int,
    predicates: "Optional[PredicateCollection]" = None,
) -> bool:
    """Check the r-locality equivalence at one tuple: A |= phi[a-bar] iff
    N_r(a-bar) |= phi[a-bar].  Property tests quantify this over tuples."""
    assignment = dict(zip(variables, elements))
    globally = satisfies(structure, formula, assignment, predicates)
    locally = evaluate_in_neighbourhood(
        structure, formula, variables, elements, radius, predicates
    )
    return globally == locally


# ---------------------------------------------------------------------------
# Scattered (basic local / independence) sentences — Definition 6.6, Section 7
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScatteredSentence:
    """A sentence asserting k points, pairwise at distance > ``min_distance``,
    each satisfying ``psi`` (one free variable ``variable``).

    With ``psi`` r-local this is a *basic local sentence* of radius r
    (Definition 6.6); with ``psi`` quantifier-free it is an
    (r, k)-independence sentence (Section 7).
    """

    count: int
    min_distance: int
    variable: Variable
    psi: Formula

    def __post_init__(self) -> None:
        if self.count < 1:
            raise FormulaError("scattered sentences need k >= 1")
        if self.min_distance < 0:
            raise FormulaError("min_distance must be non-negative")
        extra = free_variables(self.psi) - {self.variable}
        if extra:
            raise FormulaError(
                f"psi must have at most the free variable {self.variable!r}; "
                f"also found {sorted(extra)}"
            )

    def build(self) -> Formula:
        """The FO+ sentence ``exists y1..yk (AND dist(yi,yj) > d AND psi(yi))``."""
        from .transform import rename_free

        names = [f"{self.variable}_{i}" for i in range(1, self.count + 1)]
        conjuncts: List[Formula] = []
        for i in range(self.count):
            for j in range(i + 1, self.count):
                conjuncts.append(Not(DistAtom(names[i], names[j], self.min_distance)))
        for name in names:
            conjuncts.append(rename_free(self.psi, {self.variable: name}))
        return exists_block(names, conjunction(conjuncts))

    def witnesses(
        self,
        structure: Structure,
        predicates: "Optional[PredicateCollection]" = None,
        psi_radius: "Optional[int]" = None,
    ) -> "Optional[Tuple[Element, ...]]":
        """Find witnesses directly (no brute-force k-tuple scan).

        First computes the set S of psi-satisfiers (locally, within
        ``psi_radius`` balls, when a radius is given), then searches for k
        elements of S pairwise further than ``min_distance`` apart: a greedy
        pass handles the common case, exact backtracking the rest.
        Returns a witness tuple or ``None``.
        """
        if psi_radius is not None:
            satisfiers = [
                a
                for a in structure.universe_order
                if evaluate_in_neighbourhood(
                    structure, self.psi, [self.variable], [a], psi_radius, predicates
                )
            ]
        else:
            satisfiers = [
                a
                for a in structure.universe_order
                if satisfies(structure, self.psi, {self.variable: a}, predicates)
            ]
        if len(satisfiers) < self.count:
            return None

        # Greedy: repeatedly take a satisfier and discard its <=d ball.
        chosen: List[Element] = []
        remaining = set(satisfiers)
        order = [a for a in structure.universe_order if a in remaining]
        for candidate in order:
            if candidate not in remaining:
                continue
            chosen.append(candidate)
            if len(chosen) == self.count:
                return tuple(chosen)
            near = distances_from(structure, [candidate], self.min_distance)
            remaining -= set(near)
        # Greedy failed; fall back to exact backtracking over satisfiers.
        return self._exact_search(structure, satisfiers)

    def _exact_search(
        self, structure: Structure, satisfiers: List[Element]
    ) -> "Optional[Tuple[Element, ...]]":
        """Exact scattered-set search with distance pruning (small k only)."""
        balls: Dict[Element, FrozenSet[Element]] = {}

        def near_set(element: Element) -> FrozenSet[Element]:
            if element not in balls:
                balls[element] = frozenset(
                    distances_from(structure, [element], self.min_distance)
                )
            return balls[element]

        chosen: List[Element] = []

        def extend(start: int) -> bool:
            if len(chosen) == self.count:
                return True
            if len(satisfiers) - start < self.count - len(chosen):
                return False
            for index in range(start, len(satisfiers)):
                candidate = satisfiers[index]
                if any(candidate in near_set(existing) for existing in chosen):
                    continue
                chosen.append(candidate)
                if extend(index + 1):
                    return True
                chosen.pop()
            return False

        if extend(0):
            return tuple(chosen)
        return None

    def holds_in(
        self,
        structure: Structure,
        predicates: "Optional[PredicateCollection]" = None,
        psi_radius: "Optional[int]" = None,
    ) -> bool:
        return self.witnesses(structure, predicates, psi_radius) is not None
