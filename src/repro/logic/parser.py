"""Recursive-descent parser for the ASCII FOC(P) syntax.

Grammar (EBNF; ``IDENT`` is ``[A-Za-z_][A-Za-z0-9_]*``, ``INT`` is ``[0-9]+``):

.. code-block:: text

    formula     := quantified
    quantified  := ("exists" | "forall") IDENT "." quantified | iff
    iff         := implies ("<->" implies)*            (right-assoc)
    implies     := or ("->" or)*                       (right-assoc)
    or          := and ("|" and)*
    and         := unary ("&" unary)*
    unary       := "!" unary | fatom
    fatom       := "true" | "false"
                 | "dist" "(" IDENT "," IDENT ")" "<=" INT
                 | "@" IDENT "(" term ("," term)* ")"
                 | IDENT "(" [IDENT ("," IDENT)*] ")"   -- relation atom
                 | IDENT "=" IDENT                      -- equality
                 | "(" formula ")"
    term        := multerm (("+" | "-") multerm)*
    multerm     := tatom ("*" tatom)*
    tatom       := INT | "-" tatom | "(" term ")"
                 | "#" "(" [IDENT ("," IDENT)*] ")" "." body
    body        := a `unary`-level formula (parenthesize anything looser)

``s - t`` is sugar for ``s + (-1) * t`` (the paper's abbreviation).  Keywords
``exists, forall, true, false, dist`` are reserved and cannot name relations
or variables.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from ..errors import ParseError
from .syntax import (
    Add,
    And,
    Atom,
    Bottom,
    CountTerm,
    DistAtom,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    IntTerm,
    Mul,
    Not,
    Or,
    PredicateAtom,
    Term,
    Top,
)

_KEYWORDS = {"exists", "forall", "true", "false", "dist"}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<int>[0-9]+)
  | (?P<iff><->)
  | (?P<implies>->)
  | (?P<leq><=)
  | (?P<sym>[()@#.,=|&!+\-*])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise ParseError(f"unexpected character {source[position]!r}", position)
        kind = match.lastgroup or ""
        text = match.group()
        if kind != "ws":
            if kind == "sym":
                kind = text
            elif kind in {"iff", "implies", "leq"}:
                kind = text
            tokens.append(_Token(kind, text, position))
        position = match.end()
    tokens.append(_Token("eof", "", len(source)))
    return tokens


class _Parser:
    def __init__(self, source: str):
        self.tokens = _tokenize(source)
        self.index = 0

    # -- token helpers -----------------------------------------------------------

    def peek(self, offset: int = 0) -> _Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind!r}, found {token.text or 'end of input'!r}",
                token.position,
            )
        return self.advance()

    def expect_ident(self) -> str:
        token = self.expect("ident")
        if token.text in _KEYWORDS:
            raise ParseError(f"{token.text!r} is a reserved keyword", token.position)
        return token.text

    # -- formulas -----------------------------------------------------------------

    def formula(self) -> Formula:
        token = self.peek()
        if token.kind == "ident" and token.text in {"exists", "forall"}:
            self.advance()
            variable = self.expect_ident()
            self.expect(".")
            inner = self.formula()
            return Exists(variable, inner) if token.text == "exists" else Forall(variable, inner)
        return self.iff()

    def iff(self) -> Formula:
        left = self.implies()
        if self.peek().kind == "<->":
            self.advance()
            return Iff(left, self.iff())
        return left

    def implies(self) -> Formula:
        left = self.or_level()
        if self.peek().kind == "->":
            self.advance()
            return Implies(left, self.implies())
        return left

    def or_level(self) -> Formula:
        left = self.and_level()
        while self.peek().kind == "|":
            self.advance()
            left = Or(left, self.and_level())
        return left

    def and_level(self) -> Formula:
        left = self.unary()
        while self.peek().kind == "&":
            self.advance()
            left = And(left, self.unary())
        return left

    def unary(self) -> Formula:
        token = self.peek()
        if token.kind == "!":
            self.advance()
            return Not(self.unary())
        if token.kind == "ident" and token.text in {"exists", "forall"}:
            return self.formula()
        return self.fatom()

    def fatom(self) -> Formula:
        token = self.peek()
        if token.kind == "(":
            self.advance()
            inner = self.formula()
            self.expect(")")
            return inner
        if token.kind == "@":
            self.advance()
            name = self.expect("ident").text
            self.expect("(")
            terms = [self.term()]
            while self.peek().kind == ",":
                self.advance()
                terms.append(self.term())
            self.expect(")")
            return PredicateAtom(name, tuple(terms))
        if token.kind == "ident":
            if token.text == "true":
                self.advance()
                return Top()
            if token.text == "false":
                self.advance()
                return Bottom()
            if token.text == "dist":
                self.advance()
                self.expect("(")
                left = self.expect_ident()
                self.expect(",")
                right = self.expect_ident()
                self.expect(")")
                self.expect("<=")
                bound = int(self.expect("int").text)
                return DistAtom(left, right, bound)
            name = self.advance().text
            if self.peek().kind == "(":
                self.advance()
                args: List[str] = []
                if self.peek().kind != ")":
                    args.append(self.expect_ident())
                    while self.peek().kind == ",":
                        self.advance()
                        args.append(self.expect_ident())
                self.expect(")")
                return Atom(name, tuple(args))
            if self.peek().kind == "=":
                self.advance()
                right = self.expect_ident()
                return Eq(name, right)
            raise ParseError(
                f"expected '(' or '=' after identifier {name!r}", self.peek().position
            )
        raise ParseError(
            f"unexpected token {token.text or 'end of input'!r} in formula",
            token.position,
        )

    # -- terms ---------------------------------------------------------------------

    def term(self) -> Term:
        left = self.multerm()
        while self.peek().kind in {"+", "-"}:
            operator = self.advance().kind
            right = self.multerm()
            if operator == "+":
                left = Add(left, right)
            else:
                left = Add(left, Mul(IntTerm(-1), right))
        return left

    def multerm(self) -> Term:
        left = self.tatom()
        while self.peek().kind == "*":
            self.advance()
            left = Mul(left, self.tatom())
        return left

    def tatom(self) -> Term:
        token = self.peek()
        if token.kind == "int":
            self.advance()
            return IntTerm(int(token.text))
        if token.kind == "-":
            self.advance()
            inner = self.tatom()
            if isinstance(inner, IntTerm):
                return IntTerm(-inner.value)
            return Mul(IntTerm(-1), inner)
        if token.kind == "(":
            self.advance()
            inner = self.term()
            self.expect(")")
            return inner
        if token.kind == "#":
            self.advance()
            self.expect("(")
            variables: List[str] = []
            if self.peek().kind != ")":
                variables.append(self.expect_ident())
                while self.peek().kind == ",":
                    self.advance()
                    variables.append(self.expect_ident())
            self.expect(")")
            self.expect(".")
            body = self.unary()
            return CountTerm(tuple(variables), body)
        raise ParseError(
            f"unexpected token {token.text or 'end of input'!r} in counting term",
            token.position,
        )


def parse_formula(source: str) -> Formula:
    """Parse a formula; raises :class:`~repro.errors.ParseError` on junk."""
    parser = _Parser(source)
    result = parser.formula()
    trailing = parser.peek()
    if trailing.kind != "eof":
        raise ParseError(f"trailing input {trailing.text!r}", trailing.position)
    return result


def parse_term(source: str) -> Term:
    """Parse a counting term."""
    parser = _Parser(source)
    result = parser.term()
    trailing = parser.peek()
    if trailing.kind != "eof":
        raise ParseError(f"trailing input {trailing.text!r}", trailing.position)
    return result
