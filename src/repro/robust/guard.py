"""The graceful fallback cascade: :class:`RobustEvaluator`.

Section 4 of the paper shows that general FOC(P) evaluation is AW[*]-hard,
and the fixed-parameter tractability of FOC1(P) (Theorem 5.5) is
conditional on the input coming from a nowhere dense class.  An engine
facing untrusted queries and arbitrary structures therefore needs, beyond
hard resource limits (:mod:`repro.robust.budget`), a *degradation story*:
when the clever path fails — out of fragment, out of budget slice, or a
genuine defect — answer anyway, exactly, by a simpler path.

:class:`RobustEvaluator` implements a three-stage cascade:

1. ``main_algorithm`` — the Section 8.2 cover/removal loop; applicable
   only to unary basic cl-terms (:meth:`RobustEvaluator.evaluate_unary_cl_term`),
   recorded as *skipped* for other operations.
2. ``foc1`` — the generic :class:`~repro.core.evaluator.Foc1Evaluator`
   (memoised, guarded enumeration); exact on all inputs.
3. ``baseline`` — the literal Definition 3.1 brute force
   (:class:`~repro.core.baseline.BruteForceEvaluator`); exact on all of
   FOC(P), including formulas outside the FOC1 fragment.

With ``approx=True`` an optional fourth stage joins counting operations:
the sampling tier (:class:`~repro.approx.evaluator.ApproxEvaluator`),
last in the fixed order — a bounded-cost answer of last resort — and
allowed to *lead* only when ``route="auto"`` predicts every exact stage
blowing past the remaining budget.  An approx answer is an
:class:`~repro.approx.result.ApproxResult` (never a bare int) and the
report carries ``approximate=True``, so an estimate can never be
mistaken for an exact count.

Every exact stage computes the *exact* answer when it completes, so the
cascade never trades correctness for availability — only speed.  Each stage runs
under a slice of the shared :class:`~repro.robust.budget.EvaluationBudget`
(an even split of whatever remains), so one runaway stage cannot starve
its fallbacks; if every stage fails and the overall budget is exhausted,
the cascade raises :class:`~repro.errors.BudgetExceededError`, otherwise it
re-raises the last stage failure.  The outcome of every stage — who
answered, who failed and why, who was skipped — is recorded in a
structured :class:`RobustReport` available as
:attr:`RobustEvaluator.last_report`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.baseline import BruteForceEvaluator
from ..core.clterms import BasicClTerm
from ..core.evaluator import Foc1Evaluator
from ..core.main_algorithm import MainAlgorithmStats, evaluate_unary_main_algorithm
from ..approx.result import ApproxResult
from ..core.query import Foc1Query
from ..cost.router import _UNITS_PER_SECOND, EngineRouter, RouteDecision
from ..errors import BudgetExceededError, ReproError, SuspendedError
from ..logic.predicates import PredicateCollection, standard_collection
from ..logic.syntax import Expression, Formula, Term, Variable
from ..obs import active_metrics, span
from ..parallel import resolve_workers
from ..plan.cache import PlanCache, default_plan_cache
from ..plan.compiler import compile_plan
from ..plan.ir import PlanOptions, QueryPlan
from ..plan.normalise import canonicalise
from ..structures.structure import Element, Structure
from .breaker import CircuitBreaker
from .budget import EvaluationBudget
from .checkpoint import active_checkpoint_session
from .partial import PartialResult, validate_failure_mode
from .retry import RetryPolicy

__all__ = ["RobustEvaluator", "RobustReport", "StageReport", "STAGES"]

#: Cascade order (the optional ``approx`` stage, when enabled, runs last).
STAGES = ("main_algorithm", "foc1", "baseline")

#: Abstract work units treated as affordable when no deadline bounds the
#: run: without a clock to blow, only a truly astronomical exact
#: prediction justifies leading with an estimate.
_AFFORDABLE_NO_DEADLINE = 5e7


@dataclass
class StageReport:
    """Outcome of one cascade stage."""

    stage: str
    status: str  # "ok" | "failed" | "skipped"
    detail: str = ""
    error_type: "Optional[str]" = None
    error: "Optional[str]" = None
    elapsed: float = 0.0
    steps: int = 0
    #: Counter deltas attributed to this stage (only populated when a
    #: metrics registry is active during the run; see repro.obs).
    metrics: "Optional[Dict[str, int]]" = None

    def summary(self) -> str:
        if self.status == "ok":
            return f"{self.stage}: ok ({self.elapsed:.3f}s, {self.steps} steps)"
        if self.status == "partial":
            return f"{self.stage}: partial ({self.detail})"
        if self.status == "failed":
            return f"{self.stage}: failed [{self.error_type}] {self.error}"
        if self.status == "suspended":
            return f"{self.stage}: suspended ({self.detail})"
        return f"{self.stage}: skipped ({self.detail})"

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe view of this stage outcome (for ``--report-json``)."""
        return {
            "stage": self.stage,
            "status": self.status,
            "detail": self.detail,
            "error_type": self.error_type,
            "error": self.error,
            "elapsed": self.elapsed,
            "steps": self.steps,
            "metrics": dict(self.metrics) if self.metrics else None,
        }


@dataclass
class RobustReport:
    """Structured account of one robust evaluation."""

    operation: str
    answered_by: "Optional[str]" = None
    stages: List[StageReport] = field(default_factory=list)
    elapsed: float = 0.0
    steps: int = 0
    #: The salvaged :class:`~repro.robust.partial.PartialResult` when the
    #: answering stage lost shards (``None`` for complete answers).
    partial: "Optional[PartialResult]" = None
    #: The :class:`~repro.cost.router.RouteDecision` taken for this run
    #: (``None`` in ``route="cascade"`` mode or when nothing was estimable).
    routing: "Optional[RouteDecision]" = None
    #: True when the answering stage was the sampling tier — the answer
    #: is an :class:`~repro.approx.result.ApproxResult`, not an exact count.
    approximate: bool = False

    def stage(self, name: str) -> StageReport:
        for entry in self.stages:
            if entry.stage == name:
                return entry
        raise KeyError(f"no stage named {name!r} in this report")

    def failed_stages(self) -> List[str]:
        return [s.stage for s in self.stages if s.status == "failed"]

    def skipped_stages(self) -> List[str]:
        return [s.stage for s in self.stages if s.status == "skipped"]

    def succeeded(self) -> bool:
        return self.answered_by is not None

    def is_partial(self) -> bool:
        return self.partial is not None

    def summary(self) -> str:
        head = (
            f"{self.operation}: answered by {self.answered_by}"
            if self.answered_by
            else f"{self.operation}: no stage answered"
        )
        if self.partial is not None:
            head += f" (partial, coverage {self.partial.coverage:.1%})"
        parts = "; ".join(s.summary() for s in self.stages)
        return f"{head} ({parts})"

    def to_dict(
        self,
        breaker: "Optional[CircuitBreaker]" = None,
        checkpoint: "Optional[Dict[str, object]]" = None,
    ) -> Dict[str, object]:
        """JSON-safe view of the whole report (for ``--report-json``).

        ``breaker`` adds per-stage circuit states; ``checkpoint`` attaches
        suspension/resume info (as produced by ``Checkpoint.to_dict``).
        """
        partial = None
        if self.partial is not None:
            partial = {
                "coverage": self.partial.coverage,
                "covered": self.partial.covered,
                "expected": self.partial.expected,
                "failures": [
                    {
                        "shard": f.shard,
                        "items": len(f.items),
                        "error_type": f.error_type,
                        "error": f.error,
                        "attempts": f.attempts,
                    }
                    for f in self.partial.failures
                ],
            }
        breakers = None
        if breaker is not None:
            breakers = {
                s.stage: {
                    "state": breaker.state(s.stage),
                    "consecutive_failures": breaker.failures(s.stage),
                }
                for s in self.stages
            }
        return {
            "schema": "repro-robust-report/1",
            "operation": self.operation,
            "answered_by": self.answered_by,
            "elapsed": self.elapsed,
            "steps": self.steps,
            "stages": [s.to_dict() for s in self.stages],
            "partial": partial,
            "breakers": breakers,
            "checkpoint": checkpoint,
            "routing": self.routing.to_dict() if self.routing else None,
            "approximate": self.approximate,
        }


# A stage is (name, thunk) where thunk(budget) computes the exact answer,
# or (name, None) with a skip reason when the stage cannot apply.
_Stage = Tuple[str, "Optional[Callable[[Optional[EvaluationBudget]], object]]", str]


class RobustEvaluator:
    """Budgeted, fault-tolerant façade over the evaluation engines.

    Parameters
    ----------
    predicates:
        Numerical predicate collection shared by every stage.
    budget:
        The overall :class:`EvaluationBudget` for this evaluator's calls
        (all calls draw from the same pool; pass a fresh budget per request
        in a serving context).  ``None`` means unlimited.
    check_fragment:
        Whether the ``foc1`` stage enforces the FOC1(P) fragment.  With the
        default ``True``, out-of-fragment FOC(P) inputs simply fall through
        to the ``baseline`` stage — the cascade's answer stays exact.
    main_depth:
        Recursion depth handed to the Section 8.2 main algorithm.
    catch:
        Exception types treated as *stage* failures (triggering fallback)
        rather than evaluator failures.  Defaults to the library's typed
        errors plus ``RecursionError``; genuine programming errors
        (``TypeError`` &c.) always propagate.
    plan_cache:
        The :class:`~repro.plan.cache.PlanCache` shared by every planned
        stage (``main_algorithm`` base cases and ``foc1``), so a retry of
        the same query after a budget failure — and every later stage of
        the cascade — reuses the compiled plan instead of re-analysing.
        Defaults to the process-wide shared cache.
    workers:
        Worker count honoured by the cascade stages that have parallel
        paths: the ``main_algorithm`` stage fans its cluster loop out, and
        the ``foc1`` stage's engines inherit the count for their sharded
        entry points (:meth:`count_many`, unary targets).  The
        ``baseline`` stage stays deliberately serial — it is the
        last-resort oracle and takes no shortcuts.  ``None`` resolves
        ``REPRO_WORKERS`` (default 1).
    parallel_backend:
        ``"thread"`` (default) or ``"process"``; ignored at ``workers=1``.
    retry:
        Optional :class:`~repro.robust.retry.RetryPolicy` handed to every
        parallel stage, so a transient shard failure re-runs only that
        shard instead of failing the stage (and paying a whole fallback).
    on_shard_failure:
        ``"raise"`` (default) or ``"salvage"``, forwarded to the parallel
        stages.  A salvaged stage *answers* with its
        :class:`~repro.robust.partial.PartialResult` — recorded as status
        ``"partial"`` in the report with the coverage fraction — instead
        of falling through the cascade.
    breaker:
        The :class:`~repro.robust.breaker.CircuitBreaker` guarding the
        cascade stages: after its ``threshold`` *consecutive* failures of
        a stage (across this evaluator's calls), that stage is skipped —
        without consuming a budget slice — until a success or
        :meth:`CircuitBreaker.reset` closes the circuit.  Defaults to a
        fresh ``CircuitBreaker(threshold=3)`` per evaluator; share one
        instance across evaluators to pool their failure counts.
    route:
        ``"auto"`` (default) consults the :class:`~repro.cost.router.
        EngineRouter` per query and tries the predicted-cheapest stage
        first when the prediction is decisive (see the router's margin and
        confidence thresholds); ``"cascade"`` always runs the fixed
        ``STAGES`` order.  Routing only ever *reorders* the runnable
        stages — every stage remains available as a fallback, so answers
        are identical in both modes; the decision taken is recorded in
        :attr:`RobustReport.routing`.  Preemptible (checkpoint-session)
        runs always use the fixed order, so a resumed cascade replays the
        stage sequence its first quantum recorded.
    router:
        The :class:`~repro.cost.router.EngineRouter` instance to consult
        in ``route="auto"`` mode.  Share one across evaluators to pool
        their calibration (observed predicted-vs-actual corrections).
        Defaults to a fresh router per evaluator.
    approx:
        Opt-in fourth cascade stage for :meth:`count` and ground counting
        terms: the sampling tier (:class:`~repro.approx.evaluator.
        ApproxEvaluator`).  Off by default — the default cascade stays
        exactly the three exact stages.  When enabled it runs *last* in
        the fixed order, and ``route="auto"`` may promote it to first
        only when every exact stage's predicted cost exceeds what the
        remaining budget can afford.  Its answer is an
        :class:`~repro.approx.result.ApproxResult` and sets
        :attr:`RobustReport.approximate`.
    epsilon / delta / approx_seed:
        The ``(1 +- epsilon, delta)`` target and reproducibility seed for
        the approx stage (ignored unless ``approx=True``).
    """

    def __init__(
        self,
        predicates: "Optional[PredicateCollection]" = None,
        budget: "Optional[EvaluationBudget]" = None,
        check_fragment: bool = True,
        main_depth: int = 1,
        catch: Tuple[type, ...] = (ReproError, RecursionError),
        plan_cache: "Optional[PlanCache]" = None,
        workers: "Optional[int]" = None,
        parallel_backend: str = "thread",
        retry: "Optional[RetryPolicy]" = None,
        on_shard_failure: str = "raise",
        breaker: "Optional[CircuitBreaker]" = None,
        route: str = "auto",
        router: "Optional[EngineRouter]" = None,
        approx: bool = False,
        epsilon: float = 0.1,
        delta: float = 0.05,
        approx_seed: int = 0,
    ):
        if route not in ("auto", "cascade"):
            raise ReproError(
                f"route must be 'auto' or 'cascade', got {route!r}"
            )
        self._default_predicates = predicates is None
        self.predicates = predicates if predicates is not None else standard_collection()
        self.budget = budget
        self.check_fragment = check_fragment
        self.main_depth = main_depth
        self.catch = tuple(catch)
        self.plan_cache = plan_cache
        self.workers = resolve_workers(workers)
        self.parallel_backend = parallel_backend
        self.retry = retry
        self.on_shard_failure = validate_failure_mode(on_shard_failure)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.route = route
        self.router = router if router is not None else EngineRouter()
        self.approx = approx
        self.epsilon = epsilon
        self.delta = delta
        self.approx_seed = approx_seed
        self.last_report: "Optional[RobustReport]" = None

    # -- engine-API mirror -----------------------------------------------------

    def model_check(self, structure: Structure, sentence: Formula) -> bool:
        return self._run(
            "model_check",
            [
                self._not_applicable("main_algorithm"),
                ("foc1", lambda b: self._foc1(b).model_check(structure, sentence), ""),
                ("baseline", lambda b: self._baseline(b).model_check(structure, sentence), ""),
            ],
            route_info=self._route_info(
                structure, "model_check", (sentence,), ()
            ),
        )

    def count(
        self, structure: Structure, formula: Formula, variables: Sequence[Variable]
    ) -> int:
        stages: List[_Stage] = [
            self._not_applicable("main_algorithm"),
            ("foc1", lambda b: self._foc1(b).count(structure, formula, variables), ""),
            ("baseline", lambda b: self._baseline(b).count(structure, formula, variables), ""),
        ]
        if self.approx:
            stages.append(
                (
                    "approx",
                    lambda b: self._approx(b).count(structure, formula, variables),
                    "",
                )
            )
        return self._run(
            "count",
            stages,
            route_info=self._route_info(
                structure, "count", (formula,), tuple(variables)
            ),
        )

    def count_many(
        self,
        structures: Sequence[Structure],
        formula: Formula,
        variables: Sequence[Variable],
    ) -> List[int]:
        """Batched counting through the cascade (one plan, many inputs).

        The ``foc1`` stage runs :meth:`Foc1Evaluator.count_many` — compile
        once per distinct signature, fan out across this evaluator's
        workers.  The ``baseline`` stage answers with a deliberately serial
        brute-force loop over the batch.
        """
        structures = list(structures)
        return self._run(
            "count_many",
            [
                self._not_applicable("main_algorithm"),
                (
                    "foc1",
                    lambda b: self._foc1(b).count_many(structures, formula, variables),
                    "",
                ),
                (
                    "baseline",
                    lambda b: [
                        self._baseline(b).count(s, formula, variables)
                        for s in structures
                    ],
                    "",
                ),
            ],
            # Route on the first structure as the batch's representative.
            route_info=self._route_info(
                structures[0] if structures else None,
                "count",
                (formula,),
                tuple(variables),
            ),
        )

    def ground_term_value(self, structure: Structure, term: Term) -> int:
        stages: List[_Stage] = [
            self._not_applicable("main_algorithm"),
            ("foc1", lambda b: self._foc1(b).ground_term_value(structure, term), ""),
            ("baseline", lambda b: self._baseline(b).ground_term_value(structure, term), ""),
        ]
        if self.approx:
            from ..logic.syntax import CountTerm

            if isinstance(term, CountTerm):
                stages.append(
                    (
                        "approx",
                        lambda b: self._approx(b).ground_term_value(structure, term),
                        "",
                    )
                )
            else:
                stages.append(
                    ("approx", None, "only counting terms can be sampled")
                )
        return self._run(
            "ground_term_value",
            stages,
            route_info=self._route_info(
                structure, "ground_term", (term,), ()
            ),
        )

    def unary_term_values(
        self,
        structure: Structure,
        term: Term,
        variable: Variable,
        elements: "Optional[Sequence[Element]]" = None,
    ) -> Dict[Element, int]:
        return self._run(
            "unary_term_values",
            [
                self._not_applicable("main_algorithm"),
                (
                    "foc1",
                    lambda b: self._foc1(b).unary_term_values(
                        structure, term, variable, elements
                    ),
                    "",
                ),
                (
                    "baseline",
                    lambda b: self._baseline(b).unary_term_values(
                        structure, term, variable, elements
                    ),
                    "",
                ),
            ],
            route_info=self._route_info(
                structure, "unary_term", (term,), (variable,)
            ),
        )

    def evaluate_query(self, structure: Structure, query: Foc1Query) -> List[Tuple]:
        return self._run(
            "evaluate_query",
            [
                self._not_applicable("main_algorithm"),
                ("foc1", lambda b: self._foc1(b).evaluate_query(structure, query), ""),
                ("baseline", lambda b: self._baseline(b).evaluate_query(structure, query), ""),
            ],
            route_info=self._route_info(
                structure,
                "query",
                (query.condition, *query.head_terms),
                tuple(query.head_variables),
            ),
        )

    # -- the full three-stage cascade ------------------------------------------

    def evaluate_unary_cl_term(
        self, structure: Structure, term: BasicClTerm, depth: "Optional[int]" = None
    ) -> Dict[Element, int]:
        """``u^A[a]`` for all ``a`` through the full cascade.

        Stage 1 runs the Section 8.2 cover/removal loop, stage 2 the
        generic FOC1 engine on ``term.count_term()``, stage 3 the brute
        force.  All three are exact; the report records which answered.
        """
        if not term.unary:
            raise ReproError("evaluate_unary_cl_term expects a unary basic cl-term")
        use_depth = self.main_depth if depth is None else depth
        free = term.free_variable

        def main_stage(budget: "Optional[EvaluationBudget]") -> Dict[Element, int]:
            stats = MainAlgorithmStats()
            return evaluate_unary_main_algorithm(
                structure,
                term,
                depth=use_depth,
                predicates=self.predicates,
                stats=stats,
                budget=budget,
                plan_cache=self.plan_cache,
                workers=self.workers,
                retry=self.retry,
                on_shard_failure=self.on_shard_failure,
            )

        def foc1_stage(budget: "Optional[EvaluationBudget]") -> Dict[Element, int]:
            engine = Foc1Evaluator(
                predicates=self.predicates,
                check_fragment=False,
                budget=budget,
                plan_cache=self.plan_cache,
            )
            return engine.unary_term_values(structure, term.count_term(), free)

        def baseline_stage(budget: "Optional[EvaluationBudget]") -> Dict[Element, int]:
            return self._baseline(budget).unary_term_values(
                structure, term.count_term(), free
            )

        return self._run(
            "evaluate_unary_cl_term",
            [
                ("main_algorithm", main_stage, ""),
                ("foc1", foc1_stage, ""),
                ("baseline", baseline_stage, ""),
            ],
            route_info=self._route_info(
                structure,
                "unary_term",
                (term.count_term(),),
                (free,),
                cl_term=term,
            ),
        )

    # -- machinery -------------------------------------------------------------

    def _foc1(self, budget: "Optional[EvaluationBudget]") -> Foc1Evaluator:
        return Foc1Evaluator(
            predicates=self.predicates,
            check_fragment=self.check_fragment,
            budget=budget,
            plan_cache=self.plan_cache,
            workers=self.workers,
            parallel_backend=self.parallel_backend,
            retry=self.retry,
            on_shard_failure=self.on_shard_failure,
        )

    def _baseline(self, budget: "Optional[EvaluationBudget]") -> BruteForceEvaluator:
        # The last stage answers on all of FOC(P): fragment checking stays
        # off so out-of-fragment inputs rejected by the foc1 stage still
        # fall through to an exact brute-force answer.
        return BruteForceEvaluator(
            predicates=self.predicates, budget=budget, check_fragment=False
        )

    def _approx(self, budget: "Optional[EvaluationBudget]"):
        from ..approx.evaluator import ApproxEvaluator

        # A defaulted collection ships as None so the process backend can
        # rebuild it child-side (closures do not pickle).
        return ApproxEvaluator(
            predicates=None if self._default_predicates else self.predicates,
            budget=budget,
            epsilon=self.epsilon,
            delta=self.delta,
            seed=self.approx_seed,
            workers=self.workers,
            parallel_backend=self.parallel_backend,
        )

    @staticmethod
    def _not_applicable(name: str) -> _Stage:
        return (name, None, "not applicable to this operation")

    # -- routing ----------------------------------------------------------------

    def _route_info(
        self,
        structure: "Optional[Structure]",
        plan_kind: str,
        expressions: Tuple[Expression, ...],
        variables: Tuple[Variable, ...],
        cl_term: "Optional[BasicClTerm]" = None,
    ) -> "Optional[Dict[str, object]]":
        """The inputs :meth:`_run` needs to consult the router, or ``None``
        when routing is off or nothing is routable."""
        if self.route != "auto" or structure is None:
            return None
        return {
            "structure": structure,
            "plan_kind": plan_kind,
            "expressions": expressions,
            "variables": variables,
            "cl_term": cl_term,
        }

    def _plan_for_routing(
        self,
        kind: str,
        expressions: Tuple[Expression, ...],
        variables: Tuple[Variable, ...],
        structure: Structure,
    ) -> "Optional[QueryPlan]":
        """Fetch/compile the plan the foc1 stage would use, through the
        same cache key it builds, so routing never compiles twice.  Any
        failure (out-of-fragment input, unknown relations) returns None —
        the router then prices foc1 as un-estimable and falls back."""
        try:
            options = PlanOptions(True, True)
            canon = tuple(canonicalise(e) for e in expressions)
            cache = (
                self.plan_cache
                if self.plan_cache is not None
                else default_plan_cache()
            )
            key = (kind, canon, tuple(variables), structure.signature, options)
            return cache.get_or_compile(
                key,
                lambda: compile_plan(
                    kind, canon, tuple(variables), structure.signature, options
                ),
            )
        except Exception:
            return None

    def _route_decision(
        self, operation: str, stages: List[_Stage], info: Dict[str, object]
    ) -> "Optional[RouteDecision]":
        runnable = [name for name, fn, _ in stages if fn is not None]
        structure = info["structure"]
        plan = self._plan_for_routing(
            info["plan_kind"],  # type: ignore[arg-type]
            info["expressions"],  # type: ignore[arg-type]
            info["variables"],  # type: ignore[arg-type]
            structure,  # type: ignore[arg-type]
        )
        try:
            return self.router.route(
                operation,
                runnable,
                structure,
                plan=plan,
                expressions=info["expressions"],  # type: ignore[arg-type]
                variables=info["variables"],  # type: ignore[arg-type]
                cl_term=info["cl_term"],
            )
        except Exception:
            registry = active_metrics()
            if registry is not None:
                registry.inc("cost.route.error")
            return None

    @staticmethod
    def _reordered(stages: List[_Stage], chosen: str) -> List[_Stage]:
        first = [s for s in stages if s[0] == chosen]
        rest = [s for s in stages if s[0] != chosen]
        return first + rest

    def _exact_blowup(self, decision: RouteDecision) -> bool:
        """True when every *priced* exact stage is predicted to exceed
        what the remaining budget can afford — the only condition under
        which routing may put the sampling stage first."""
        exact = [
            units
            for name, units in decision.predicted.items()
            if name != "approx"
        ]
        if not exact:
            return True
        affordable = _AFFORDABLE_NO_DEADLINE
        if self.budget is not None:
            remaining = self.budget.remaining_seconds()
            if remaining is not None:
                affordable = remaining * _UNITS_PER_SECOND
        return min(exact) > affordable

    def _run(
        self,
        operation: str,
        stages: List[_Stage],
        route_info: "Optional[Dict[str, object]]" = None,
    ):
        report = RobustReport(operation=operation)
        started = time.monotonic()
        answer: object = None
        last_error: "Optional[BaseException]" = None
        runnable_left = sum(1 for _, fn, _ in stages if fn is not None)
        registry = active_metrics()

        # Resuming a suspended cascade: re-enter the stage the previous
        # quantum was suspended in.  Earlier stages already had their
        # outcome (failed or skipped) decided in that quantum — re-running
        # them would re-pay known failures — so they are recorded as
        # resume-skips without a budget slice or a breaker update.
        session = active_checkpoint_session()
        if session is not None and not session.on_owner_thread():
            session = None
        resume_past: set = set()
        if session is not None:
            resume_stage = session.consume_resume_stage()
            stage_names = [name for name, _, _ in stages]
            if resume_stage in stage_names:
                resume_past = set(stage_names[: stage_names.index(resume_stage)])

        # Cost-based routing: try the predicted-cheapest stage first.
        # Never under a checkpoint session — a resumed cascade must replay
        # the exact stage order its first quantum recorded.
        decision: "Optional[RouteDecision]" = None
        execution = stages
        if route_info is not None and session is None:
            decision = self._route_decision(operation, stages, route_info)
            if (
                decision is not None
                and decision.mode == "auto"
                and decision.chosen == "approx"
                and not self._exact_blowup(decision)
            ):
                # An estimate may lead only when exactness is predicted
                # unaffordable; otherwise the exact cascade runs (approx
                # stays available as the last fallback).
                decision.mode = "cascade"
                decision.chosen = next(
                    (
                        name
                        for name, fn, _ in stages
                        if fn is not None and name != "approx"
                    ),
                    decision.chosen,
                )
                decision.reason += (
                    "; approx withheld: an exact stage is predicted affordable"
                )
            if decision is not None and decision.mode == "auto":
                execution = self._reordered(stages, decision.chosen)
        report.routing = decision

        for name, fn, skip_reason in execution:
            if fn is not None and name in resume_past:
                runnable_left -= 1
                if registry is not None:
                    registry.inc(f"robust.stage.{name}.skipped")
                    registry.inc("robust.resume.skipped")
                report.stages.append(
                    StageReport(
                        name,
                        "skipped",
                        detail=(
                            "resumed: outcome decided before the previous "
                            "suspension"
                        ),
                    )
                )
                continue
            if fn is None:
                if registry is not None:
                    registry.inc(f"robust.stage.{name}.skipped")
                report.stages.append(
                    StageReport(name, "skipped", detail=skip_reason)
                )
                continue
            if report.answered_by is not None:
                if registry is not None:
                    registry.inc(f"robust.stage.{name}.skipped")
                report.stages.append(
                    StageReport(
                        name,
                        "skipped",
                        detail=f"not needed: answered by {report.answered_by}",
                    )
                )
                continue
            if not self.breaker.allow(name):
                # Circuit open: route straight to the next stage without
                # paying this stage's budget slice (runnable_left drops,
                # so the remaining stages split the freed share).
                runnable_left -= 1
                if registry is not None:
                    registry.inc(f"robust.stage.{name}.skipped")
                    registry.inc("robust.breaker.skipped")
                report.stages.append(
                    StageReport(
                        name,
                        "skipped",
                        detail=(
                            "circuit open: "
                            f"{self.breaker.failures(name)} consecutive "
                            "failures"
                        ),
                    )
                )
                continue

            stage_budget = self._slice_for(runnable_left)
            if stage_budget is not None:
                stage_budget.stage = name
            if session is not None:
                session.record_stage(name)
            runnable_left -= 1
            stage_started = time.monotonic()
            entry = StageReport(name, "failed")
            before = dict(registry.counters) if registry is not None else None
            try:
                with span(f"robust.stage.{name}"):
                    answer = fn(stage_budget)
            except SuspendedError as error:
                # Suspension is the quantum boundary of a preemptible run,
                # not a stage failure: the breaker must not trip (the stage
                # will resume, not fall back) and the cascade re-raises
                # after finalising the report for this quantum.
                entry.status = "suspended"
                entry.detail = str(error)
                entry.elapsed = time.monotonic() - stage_started
                if stage_budget is not None:
                    entry.steps = stage_budget.steps
                    self._charge_parent(stage_budget.steps, name)
                if registry is not None:
                    entry.metrics = {
                        key: value - before.get(key, 0)
                        for key, value in registry.counters.items()
                        if value != before.get(key, 0)
                    }
                    registry.inc(f"robust.stage.{name}.suspended")
                report.stages.append(entry)
                report.elapsed = time.monotonic() - started
                report.steps = (
                    self.budget.steps
                    if self.budget is not None
                    else sum(s.steps for s in report.stages)
                )
                self.last_report = report
                raise
            except self.catch as error:
                entry.status = "failed"
                entry.error_type = type(error).__name__
                entry.error = str(error)
                last_error = error
                if self.breaker.record_failure(name):
                    if registry is not None:
                        registry.inc("robust.breaker.trip")
            else:
                if isinstance(answer, PartialResult):
                    # A salvaged stage answers with what it kept; record
                    # the degraded coverage rather than falling through.
                    entry.status = "partial"
                    entry.detail = (
                        f"coverage {answer.coverage:.1%} "
                        f"({answer.covered}/{answer.expected})"
                    )
                    report.partial = answer
                    if registry is not None:
                        registry.inc("robust.salvage.partial")
                elif isinstance(answer, ApproxResult):
                    # The sampling stage answered: the caller gets the
                    # full ApproxResult (never a bare int) and the report
                    # is marked so downstream serialisation says so.
                    entry.status = "ok"
                    entry.detail = answer.summary()
                    report.approximate = True
                    if registry is not None:
                        registry.inc("robust.approx.answered")
                else:
                    entry.status = "ok"
                report.answered_by = name
                self.breaker.record_success(name)
            entry.elapsed = time.monotonic() - stage_started
            if registry is not None:
                entry.metrics = {
                    key: value - before.get(key, 0)
                    for key, value in registry.counters.items()
                    if value != before.get(key, 0)
                }
                registry.inc(f"robust.stage.{name}.{entry.status}")
            if stage_budget is not None:
                entry.steps = stage_budget.steps
                self._charge_parent(stage_budget.steps, name)
            report.stages.append(entry)

        # Reports always list stages in the canonical STAGES order, whatever
        # order routing actually ran them in (the per-stage details record
        # the outcomes; the routing decision records the order's cause).
        canonical = {name: i for i, (name, _, _) in enumerate(stages)}
        report.stages.sort(key=lambda s: canonical.get(s.stage, len(canonical)))

        report.elapsed = time.monotonic() - started
        report.steps = self.budget.steps if self.budget is not None else sum(
            s.steps for s in report.stages
        )
        if decision is not None:
            answered_elapsed = 0.0
            if report.answered_by is not None:
                try:
                    answered_elapsed = report.stage(report.answered_by).elapsed
                except KeyError:
                    pass
            try:
                self.router.observe(decision, report.answered_by, answered_elapsed)
            except Exception:
                pass
        self.last_report = report

        if report.answered_by is None:
            if self.budget is not None and self.budget.expired():
                # Surface the resource exhaustion (with overall stats)
                # rather than whichever per-slice error came last.
                self.budget.check(site="robust.cascade")
            if last_error is not None:
                raise last_error
            raise ReproError(f"no stage could answer operation {operation!r}")
        return answer

    def _slice_for(self, runnable_left: int) -> "Optional[EvaluationBudget]":
        if self.budget is None:
            return None
        fraction = 1.0 if runnable_left <= 1 else 1.0 / runnable_left
        return self.budget.slice(fraction)

    def _charge_parent(self, steps: int, site: str) -> None:
        if self.budget is None or steps == 0:
            return
        try:
            self.budget.charge(steps, site=f"robust.{site}")
        except BudgetExceededError:
            # The parent pool is dry; the next stage's slice (or the final
            # accounting in _run) will surface it.  Swallowing here keeps
            # charge-back from masking the stage's own outcome.
            pass
