"""Cooperative resource budgets for query evaluation.

Section 4 of the paper proves FOC(P) model checking AW[*]-complete already
on trees and strings, and even the tractable fragment FOC1(P) is only
fixed-parameter almost linear on *nowhere dense* inputs (Theorem 5.5).  On
dense or adversarial inputs every engine in this repository can therefore
blow up super-polynomially — by design, not by bug.  A service that accepts
untrusted queries needs a way to *stop* such runs.

:class:`EvaluationBudget` is that mechanism: a wall-clock deadline plus a
step budget, checked cooperatively via :meth:`EvaluationBudget.tick` inside
the engines' hot loops (memoised satisfaction/counting, guarded
enumeration, per-cluster cover processing, brute-force scans).  Exhaustion
raises :class:`~repro.errors.BudgetExceededError` carrying partial-progress
statistics, so callers can distinguish "too expensive" from "wrong".

Design notes
------------
* ``tick()`` is called extremely often; the step-limit comparison is a
  single integer compare, and the wall clock is consulted only every
  ``check_interval`` ticks (default 64) to keep the common path cheap.
  The interval *adapts downward*: when a wall-clock check observes that
  more than 10% of the deadline's remaining time went by since the last
  check, the interval halves (floor 1), so slow-tick workloads — one
  approx sample can hide a full ball computation — cannot overshoot the
  deadline by a whole 64-tick stride of expensive iterations.
* Budgets are *shareable*: pass the same object to nested engines and the
  whole pipeline draws from one pool.
* :meth:`slice` carves a fraction of the *remaining* budget into a child
  budget — the mechanism :class:`~repro.robust.guard.RobustEvaluator` uses
  to give each stage of its fallback cascade a bounded share while the
  parent deadline stays authoritative.
"""

from __future__ import annotations

import time
from typing import Optional

from ..errors import BudgetExceededError, SuspendedError
from ..obs import active_metrics

__all__ = ["EvaluationBudget"]

_CHECK_INTERVAL = 64

#: A wall-clock check that finds more than this fraction of the
#: remaining deadline consumed since the previous check halves the
#: check interval — ticks are running slow, so look at the clock sooner.
_ADAPT_THRESHOLD = 0.10


class EvaluationBudget:
    """A wall-clock + step budget consumed cooperatively during evaluation.

    Parameters
    ----------
    deadline:
        Wall-clock allowance in seconds from construction, or ``None`` for
        no time limit.
    max_steps:
        Total number of cooperative steps allowed, or ``None`` for no step
        limit.  A "step" is one unit of engine work: one candidate tried in
        guarded enumeration, one memo-table miss, one brute-force
        assignment, one cover cluster processed, ...
    check_interval:
        *Initial* number of ticks between wall-clock checks (the step
        limit is checked on every tick).  The interval halves — down to
        a floor of 1 — every time a check observes more than 10% of the
        remaining deadline consumed since the previous check, so budgets
        ticking through expensive iterations converge on checking the
        clock (nearly) every tick as the deadline approaches.
    preemptible:
        Soft-exhaustion mode.  With the default ``False``, exhaustion
        raises the fatal :class:`~repro.errors.BudgetExceededError`; with
        ``True`` it raises the *resumable*
        :class:`~repro.errors.SuspendedError` instead — the budget is a
        scheduling quantum, and the evaluation is suspended for a later
        resume (see :mod:`repro.robust.checkpoint`) rather than killed.
        Slices and splits inherit the mode, so a preemptible pipeline
        suspends end to end.
    stage:
        Optional label naming the pipeline stage this budget serves
        (e.g. a cascade stage); carried on the raised error so reports
        and logs can say *where* the budget died.
    """

    __slots__ = (
        "deadline",
        "max_steps",
        "steps",
        "started_at",
        "preemptible",
        "stage",
        "_deadline_at",
        "_check_interval",
        "_countdown",
        "_last_check_at",
        "_metrics",
    )

    def __init__(
        self,
        deadline: "Optional[float]" = None,
        max_steps: "Optional[int]" = None,
        check_interval: int = _CHECK_INTERVAL,
        _deadline_at: "Optional[float]" = None,
        preemptible: bool = False,
        stage: str = "",
    ):
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be non-negative")
        if max_steps is not None and max_steps < 0:
            raise ValueError("max_steps must be non-negative")
        if check_interval < 1:
            raise ValueError("check_interval must be positive")
        self.deadline = deadline
        self.max_steps = max_steps
        self.steps = 0
        self.preemptible = preemptible
        self.stage = stage
        self.started_at = time.monotonic()
        if _deadline_at is not None:
            self._deadline_at = _deadline_at
        else:
            self._deadline_at = (
                self.started_at + deadline if deadline is not None else None
            )
        self._check_interval = check_interval
        self._countdown = check_interval
        self._last_check_at = self.started_at
        # Captured once per budget: tick() is the hottest checkpoint in the
        # codebase, so the disabled path must stay one load + one compare.
        self._metrics = active_metrics()

    # -- the hot path ----------------------------------------------------------

    def tick(self, site: str = "", weight: int = 1) -> None:
        """Record ``weight`` steps of work; raise if the budget is exhausted.

        ``site`` names the checkpoint for diagnostics (it appears in the
        raised error and costs nothing when the budget holds).
        """
        self.steps += weight
        if self._metrics is not None:
            self._metrics.inc("budget.ticks", weight)
        if self.max_steps is not None and self.steps > self.max_steps:
            self._exhaust("steps", site)
        self._countdown -= 1
        if self._countdown <= 0:
            if self._deadline_at is not None:
                now = time.monotonic()
                # Adapt: if this stride of ticks burned >10% of the time
                # the deadline had left at the previous check, the ticks
                # are slow — halve the stride before resetting it.
                remaining_then = self._deadline_at - self._last_check_at
                if (
                    self._check_interval > 1
                    and remaining_then > 0.0
                    and now - self._last_check_at
                    > _ADAPT_THRESHOLD * remaining_then
                ):
                    self._check_interval //= 2
                self._last_check_at = now
                if now > self._deadline_at:
                    self._exhaust("deadline", site)
            self._countdown = self._check_interval

    # -- queries ---------------------------------------------------------------

    def elapsed(self) -> float:
        """Seconds since the budget was created."""
        return time.monotonic() - self.started_at

    def remaining_seconds(self) -> "Optional[float]":
        """Wall-clock remaining (never negative), or ``None`` if unlimited."""
        if self._deadline_at is None:
            return None
        return max(0.0, self._deadline_at - time.monotonic())

    def remaining_steps(self) -> "Optional[int]":
        """Steps remaining (never negative), or ``None`` if unlimited."""
        if self.max_steps is None:
            return None
        return max(0, self.max_steps - self.steps)

    def expired(self) -> bool:
        """Non-raising check of both limits."""
        if self.max_steps is not None and self.steps >= self.max_steps:
            return True
        if self._deadline_at is not None and time.monotonic() > self._deadline_at:
            return True
        return False

    def check(self, site: str = "") -> None:
        """Raise immediately if either limit is already exhausted."""
        if self.max_steps is not None and self.steps >= self.max_steps:
            self._exhaust("steps", site)
        if self._deadline_at is not None and time.monotonic() > self._deadline_at:
            self._exhaust("deadline", site)

    # -- composition -----------------------------------------------------------

    def slice(self, fraction: float) -> "EvaluationBudget":
        """A child budget holding ``fraction`` of the *remaining* allowance.

        The child's deadline never exceeds the parent's, so a slice cannot
        be used to outlive the parent.  Steps spent in the child must be
        charged back via :meth:`charge` (the child keeps its own counter).
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        remaining_time = self.remaining_seconds()
        remaining_steps = self.remaining_steps()
        child_deadline = (
            None if remaining_time is None else remaining_time * fraction
        )
        child_deadline_at = (
            None
            if child_deadline is None
            else min(self._deadline_at, time.monotonic() + child_deadline)
        )
        child_steps = (
            None
            if remaining_steps is None
            else max(1, int(remaining_steps * fraction))
        )
        return EvaluationBudget(
            deadline=child_deadline,
            max_steps=child_steps,
            check_interval=self._check_interval,
            _deadline_at=child_deadline_at,
            preemptible=self.preemptible,
            stage=self.stage,
        )

    def split(self, shards: int) -> "list[EvaluationBudget]":
        """Proportional child budgets for ``shards`` parallel workers.

        Unlike :meth:`slice` (sequential stages, where a stage's unused
        time rolls over to the next), parallel shards all run *now*, so
        every child keeps the **parent's full deadline** — wall clock is
        not divisible across concurrent workers and the parent deadline
        stays authoritative.  The *step* budget, by contrast, is genuinely
        additive work: each child gets an even share of the remaining
        steps (at least 1).  Steps spent in a child must be charged back
        via :meth:`charge` when the worker joins.
        """
        if shards < 1:
            raise ValueError("shards must be positive")
        remaining_steps = self.remaining_steps()
        child_steps = (
            None
            if remaining_steps is None
            else max(1, remaining_steps // shards)
        )
        return [
            EvaluationBudget(
                deadline=self.remaining_seconds(),
                max_steps=child_steps,
                check_interval=self._check_interval,
                _deadline_at=self._deadline_at,
                preemptible=self.preemptible,
                stage=self.stage,
            )
            for _ in range(shards)
        ]

    def charge(self, steps: int, site: str = "") -> None:
        """Account for ``steps`` of work done elsewhere (e.g. in a slice).

        Unlike :meth:`tick` this never raises mid-accounting for the
        deadline, only for the step limit — charging is bookkeeping after
        the fact, and the next tick will observe the deadline anyway.
        Preemptible budgets never raise from ``charge`` at all: charging
        happens while joining already-finished work (shard results that
        must not be lost to a mid-merge suspension); the following
        :meth:`tick` or :meth:`check` observes the overdraft and suspends
        at a clean boundary.
        """
        self.steps += steps
        if self.preemptible:
            return
        if self.max_steps is not None and self.steps > self.max_steps:
            self._exhaust("steps", site)

    # -- internals -------------------------------------------------------------

    def _exhaust(self, reason: str, site: str) -> None:
        elapsed = self.elapsed()
        if reason == "steps":
            message = (
                f"step budget exhausted: {self.steps} > {self.max_steps} steps"
            )
        else:
            message = (
                f"deadline exceeded: {elapsed:.3f}s elapsed, "
                f"budget was {self.deadline:.3f}s"
            )
        if site:
            message += f" (at {site})"
        if self.stage:
            message += f" (stage {self.stage})"
        remaining = (
            None
            if self._deadline_at is None
            else max(0.0, self._deadline_at - time.monotonic())
        )
        if self.preemptible:
            raise SuspendedError(
                "suspended: " + message,
                reason=reason,
                site=site,
                steps=self.steps,
                elapsed=elapsed,
                max_steps=self.max_steps,
                deadline=self.deadline,
                deadline_remaining=remaining,
                stage=self.stage,
            )
        raise BudgetExceededError(
            message,
            reason=reason,
            site=site,
            steps=self.steps,
            elapsed=elapsed,
            max_steps=self.max_steps,
            deadline=self.deadline,
            deadline_remaining=remaining,
            stage=self.stage,
        )

    def __repr__(self) -> str:
        return (
            f"EvaluationBudget(deadline={self.deadline!r}, "
            f"max_steps={self.max_steps!r}, steps={self.steps})"
        )
