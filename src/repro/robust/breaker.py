"""Circuit breakers for the fallback cascade.

:class:`~repro.robust.guard.RobustEvaluator` gives every cascade stage a
slice of the shared :class:`~repro.robust.budget.EvaluationBudget` on
every call.  When a stage is *persistently* broken — a defect in the main
algorithm, an engine that keeps exhausting its slice on this workload —
paying that slice on every request just to watch the stage fail again is
exactly the cost a heavily-loaded service cannot afford.

:class:`CircuitBreaker` is the standard remedy: after ``threshold``
**consecutive** failures of a key (here: a cascade stage name), the
breaker *opens* and :meth:`allow` answers ``False``, so the cascade
routes straight to the next stage without spending the failed stage's
budget slice.  A success at any point closes the circuit and resets the
count.  With a ``cooldown``, an open circuit turns *half-open* after that
many seconds: exactly one probe call is let through — success closes the
circuit, failure re-opens it for another cooldown.  Without a cooldown
(the default) an open circuit stays open for the breaker's lifetime,
which for the cascade means "this evaluator session" — construct a fresh
evaluator (or call :meth:`reset`) to re-arm.

All methods are thread-safe; breakers are cheap enough to attach one per
evaluator.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

__all__ = ["BreakerOpenError", "CircuitBreaker"]


class BreakerOpenError(RuntimeError):
    """Raised by :meth:`CircuitBreaker.guard` when the circuit is open.

    The cascade does not use this (it checks :meth:`allow` and records a
    skip); it exists for callers that prefer exception control flow.
    """


class _KeyState:
    __slots__ = ("consecutive_failures", "opened_at", "probing")

    def __init__(self):
        self.consecutive_failures = 0
        self.opened_at: "Optional[float]" = None
        self.probing = False


class CircuitBreaker:
    """Per-key consecutive-failure breaker (closed → open → half-open).

    Parameters
    ----------
    threshold:
        Consecutive failures of a key that trip its circuit (>= 1).
    cooldown:
        Seconds an open circuit waits before allowing one half-open probe,
        or ``None`` (default) to stay open until :meth:`reset` / a new
        breaker.
    """

    def __init__(self, threshold: int = 3, cooldown: "Optional[float]" = None):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown is not None and cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.threshold = threshold
        self.cooldown = cooldown
        self._states: Dict[str, _KeyState] = {}
        self._lock = threading.Lock()

    # -- queries ---------------------------------------------------------------

    def state(self, key: str) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` for ``key``."""
        with self._lock:
            entry = self._states.get(key)
            if entry is None or entry.opened_at is None:
                return "closed"
            if self._cooled_down(entry):
                return "half_open"
            return "open"

    def is_open(self, key: str) -> bool:
        return self.state(key) == "open"

    def failures(self, key: str) -> int:
        """Current consecutive-failure count for ``key``."""
        with self._lock:
            entry = self._states.get(key)
            return entry.consecutive_failures if entry is not None else 0

    # -- the gate --------------------------------------------------------------

    def allow(self, key: str) -> bool:
        """Whether a call keyed ``key`` may proceed right now.

        Closed: always.  Open: no.  Half-open (cooldown elapsed): yes for
        exactly one concurrent probe; further callers are refused until
        the probe reports its outcome.
        """
        with self._lock:
            entry = self._states.get(key)
            if entry is None or entry.opened_at is None:
                return True
            if self._cooled_down(entry) and not entry.probing:
                entry.probing = True
                return True
            return False

    def guard(self, key: str) -> None:
        """:meth:`allow` as an exception: raises :class:`BreakerOpenError`."""
        if not self.allow(key):
            raise BreakerOpenError(
                f"circuit for {key!r} is open "
                f"({self.failures(key)} consecutive failures)"
            )

    # -- outcome reporting -----------------------------------------------------

    def record_success(self, key: str) -> None:
        """A call keyed ``key`` succeeded: close the circuit, reset counts."""
        with self._lock:
            self._states.pop(key, None)

    def record_failure(self, key: str) -> bool:
        """A call keyed ``key`` failed; returns ``True`` iff this failure
        just tripped the circuit open (callers use that to count trips)."""
        with self._lock:
            entry = self._states.setdefault(key, _KeyState())
            entry.consecutive_failures += 1
            entry.probing = False
            if entry.opened_at is not None:
                # A failed half-open probe re-opens for a fresh cooldown.
                entry.opened_at = time.monotonic()
                return False
            if entry.consecutive_failures >= self.threshold:
                entry.opened_at = time.monotonic()
                return True
            return False

    def reset(self, key: "Optional[str]" = None) -> None:
        """Close the circuit for ``key`` (or every key with ``None``)."""
        with self._lock:
            if key is None:
                self._states.clear()
            else:
                self._states.pop(key, None)

    # -- internals -------------------------------------------------------------

    def _cooled_down(self, entry: _KeyState) -> bool:
        return (
            self.cooldown is not None
            and entry.opened_at is not None
            and time.monotonic() - entry.opened_at >= self.cooldown
        )

    def __repr__(self) -> str:
        with self._lock:
            open_keys = sorted(
                key
                for key, entry in self._states.items()
                if entry.opened_at is not None
            )
        return (
            f"CircuitBreaker(threshold={self.threshold}, "
            f"cooldown={self.cooldown}, open={open_keys})"
        )
