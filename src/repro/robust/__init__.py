"""Resource governance and graceful degradation (the robustness layer).

The pieces:

* :mod:`repro.robust.budget` — :class:`EvaluationBudget`, a wall-clock +
  step budget checked cooperatively inside every engine's hot loops;
* :mod:`repro.robust.faults` — deterministic, site-named fault injection
  used by the tests to prove the cascade degrades gracefully;
* :mod:`repro.robust.retry` — :class:`RetryPolicy`, bounded per-shard
  retries with deterministic backoff, applied by the worker pool;
* :mod:`repro.robust.breaker` — :class:`CircuitBreaker`, which stops the
  cascade paying for a persistently failing stage;
* :mod:`repro.robust.partial` — :class:`PartialResult`, the structured
  salvaged answer (completed shards + coverage fraction);
* :mod:`repro.robust.checkpoint` — :class:`Checkpoint` and
  :class:`CheckpointSession`, the suspend/resume machinery behind
  preemptible budgets (versioned, integrity-hashed, crash-consistent
  persistence of resumable evaluation state);
* :mod:`repro.robust.guard` — :class:`RobustEvaluator`, a façade running
  the fallback cascade *main algorithm → FOC1 engine → brute force* with
  per-stage budget slices and a structured :class:`RobustReport`.

``budget``, ``faults``, ``retry``, ``breaker``, ``partial`` and
``checkpoint`` are leaf modules (they depend only on :mod:`repro.errors`
and each other) so the instrumented production modules can import them
freely.  ``guard`` sits on top of the whole engine stack and is loaded
lazily (PEP 562) to keep this package importable from inside those
low-level modules without an import cycle.
"""

from __future__ import annotations

from .breaker import BreakerOpenError, CircuitBreaker
from .budget import EvaluationBudget
from .checkpoint import (
    Checkpoint,
    CheckpointSession,
    StratumRecord,
    active_checkpoint_session,
    checkpoint_session,
    load_checkpoint,
    save_checkpoint,
)
from .faults import (
    FAULT_SITES,
    PARALLEL_FAULT_SITES,
    FaultInjector,
    active_injector,
    fault_check,
    inject_faults,
)
from .partial import PartialResult, ShardFailure
from .retry import RetryPolicy

__all__ = [
    "BreakerOpenError",
    "Checkpoint",
    "CheckpointSession",
    "CircuitBreaker",
    "EvaluationBudget",
    "FAULT_SITES",
    "FaultInjector",
    "PARALLEL_FAULT_SITES",
    "PartialResult",
    "RetryPolicy",
    "RobustEvaluator",
    "RobustReport",
    "ShardFailure",
    "StageReport",
    "StratumRecord",
    "active_checkpoint_session",
    "active_injector",
    "checkpoint_session",
    "fault_check",
    "inject_faults",
    "load_checkpoint",
    "save_checkpoint",
]

_GUARD_NAMES = {"RobustEvaluator", "RobustReport", "StageReport"}


def __getattr__(name: str):
    if name in _GUARD_NAMES:
        from . import guard

        return getattr(guard, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _GUARD_NAMES)
