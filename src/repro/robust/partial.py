"""Structured partial results for salvaged parallel evaluations.

Dreier & Rossmanith (*Approximate Evaluation of First-Order Counting
Queries*, 2020) argue that a degraded-but-*bounded* answer is a
principled response when exact evaluation is too expensive; this module
is the systems-side analogue for shard failures.  When a parallel entry
point runs with ``on_shard_failure="salvage"`` and a shard still fails
after its retries, the completed shards are **kept** and returned inside
a :class:`PartialResult` that says precisely what the answer covers: the
merged values, which work items were lost with which error, and the
coverage fraction — so a caller can decide whether 93% of a unary sweep
is good enough, rather than being forced to choose between "everything"
and "an exception".

Salvage never degrades silently: entry points return their plain, full
result whenever *no* shard failed, and a :class:`PartialResult` only when
something was genuinely lost.  The covered values are byte-identical to
the same slice of a fault-free serial run — salvage drops work, it never
approximates it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Tuple

__all__ = ["PartialResult", "ShardFailure", "ON_SHARD_FAILURE_MODES"]

#: The accepted ``on_shard_failure`` modes, shared by every entry point.
ON_SHARD_FAILURE_MODES = ("raise", "salvage")


def validate_failure_mode(mode: str) -> str:
    """Validate an ``on_shard_failure`` argument (shared by all callers)."""
    if mode not in ON_SHARD_FAILURE_MODES:
        raise ValueError(
            f"on_shard_failure must be one of {ON_SHARD_FAILURE_MODES}, "
            f"got {mode!r}"
        )
    return mode


@dataclass
class ShardFailure:
    """One shard that failed permanently (retries exhausted or disabled)."""

    #: Shard index in the deterministic shard order.
    shard: int
    #: The work items the shard carried (cluster ids, target elements,
    #: batch positions — whatever the entry point fans out over).
    items: Tuple
    #: Exception type name and message of the final attempt.
    error_type: str
    error: str
    #: How many attempts were made (1 = no retries).
    attempts: int = 1

    def summary(self) -> str:
        return (
            f"shard {self.shard} ({len(self.items)} item(s), "
            f"{self.attempts} attempt(s)): [{self.error_type}] {self.error}"
        )


@dataclass
class PartialResult:
    """A salvaged answer: completed shards plus an account of the losses.

    ``value`` holds the merged results of every completed shard, in the
    same deterministic order the fault-free run would produce (unary
    sweeps: a dict missing the lost elements; batch counts: a list with
    ``None`` holes).  ``expected``/``covered`` count the operation's
    natural result units (elements, batch entries), so ``coverage`` is an
    honest fraction of the *answer*, not of the shards.
    """

    operation: str
    value: Any
    failures: List[ShardFailure] = field(default_factory=list)
    #: Total result units the full answer would contain.
    expected: int = 0
    #: Result units actually present in ``value``.
    covered: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of the full answer present, in [0, 1]."""
        if self.expected <= 0:
            return 1.0
        return self.covered / self.expected

    def complete(self) -> bool:
        return not self.failures and self.covered == self.expected

    def failed_items(self) -> List:
        """All lost work items across failed shards, in shard order."""
        return [item for failure in self.failures for item in failure.items]

    def failed_shards(self) -> List[int]:
        return [failure.shard for failure in self.failures]

    def summary(self) -> str:
        head = (
            f"{self.operation}: partial answer, coverage "
            f"{self.coverage:.1%} ({self.covered}/{self.expected})"
        )
        if not self.failures:
            return head
        parts = "; ".join(f.summary() for f in self.failures)
        return f"{head} — lost {parts}"
