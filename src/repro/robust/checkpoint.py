"""Preemptible evaluation: checkpoint, suspend, and resume instead of kill.

The evaluation pipeline front-loads expensive phases — neighbourhood-cover
construction, Theorem 6.10 aux-relation materialisation, memoised counting
— so a query killed by :class:`~repro.errors.BudgetExceededError` forfeits
all of that work even when it was seconds from finishing.  This module is
the sage-engine-style alternative (web preemption): a query that exhausts
a *preemptible* :class:`~repro.robust.budget.EvaluationBudget` quantum is
**suspended** — it raises :class:`~repro.errors.SuspendedError` carrying a
:class:`Checkpoint` of everything already computed — and a later run
resumes from that checkpoint instead of starting over.

What a checkpoint captures
--------------------------
* **Materialised strata** — the aux relations each plan executor has
  already built (the ``Paux__N`` stages of Theorem 6.10), replayed on
  resume without re-querying the predicate oracle or paying budget ticks;
* **Memo contents** — the satisfaction/count memo tables, re-keyed by a
  stable textual form so they survive process boundaries and re-attach to
  the resumed plan's (fresh) AST nodes;
* **Completed parallel shards** — the per-shard results a
  :class:`~repro.parallel.WorkerPool` fan-out already finished, so a
  resumed run never re-executes a completed shard;
* **The spent-step ledger and the suspended cascade stage** — so resumed
  accounting continues where it left off and the
  :class:`~repro.robust.guard.RobustEvaluator` cascade re-enters the
  stage it was suspended in.

Soundness of restore
--------------------
Executor-level state (strata, memos) is keyed by a content digest of the
*(structure, plan)* pair it was computed against.  Values are restored
only under an exactly matching digest, and evaluation is deterministic
given structure + plan, so a restored value always equals the value the
resumed run would recompute — restoration can only ever *skip* work,
never change an answer.  Shard results are keyed by the deterministic
fan-out order (scope counter + task count), which repeats exactly on
resume because everything up to the suspension point is deterministic.

Crash-consistent persistence
----------------------------
:func:`save_checkpoint` serialises to a sibling temp file and atomically
renames it over the target, guarded by an exclusive lock file against
concurrent saves; a crash mid-save (exercised via the
``checkpoint.save`` fault site) leaves the previous checkpoint intact.
:func:`load_checkpoint` verifies a version header, a payload length and a
SHA-256 integrity hash before unpickling; truncated, corrupted,
version-mismatched or foreign files raise a typed
:class:`~repro.errors.CheckpointError` — never a silent partial restore.
Checkpoint files embed a query fingerprint (:func:`fingerprint`) so a
checkpoint cannot be resumed against a different query or structure.

Note: the payload is a pickle — checkpoints are a crash/preemption
recovery mechanism for files *you* wrote, not an interchange format;
do not load checkpoints from untrusted sources.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pickle
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import CheckpointError
from .faults import fault_check

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointSession",
    "StratumRecord",
    "active_checkpoint_session",
    "checkpoint_session",
    "fingerprint",
    "load_checkpoint",
    "save_checkpoint",
    "structure_digest",
]

#: Format version of persisted checkpoints.  Bumped whenever the payload
#: layout changes; mismatched versions are rejected on load (a resumed
#: run built from different code must not trust a stale snapshot).
CHECKPOINT_VERSION = 1

_MAGIC = "repro-ckpt"


@dataclass(frozen=True)
class StratumRecord:
    """One completed Theorem 6.10 materialisation stratum.

    Captures exactly what :meth:`ExecutionState.apply_materialise_step`
    produced — the auxiliary relation's symbol, arity and tuples — so a
    resume can re-expand the structure without re-evaluating the
    numerical predicate anywhere.
    """

    index: int
    symbol: str
    arity: int
    tuples: Tuple[Tuple, ...]


@dataclass
class ExecRecord:
    """Resumable state of one (structure, plan) execution context."""

    #: Completed strata by plan-step index (contiguous from 0).
    strata: Dict[int, StratumRecord] = field(default_factory=dict)
    #: Exported memo entries (see ``ExecutionState.export_memo_snapshot``).
    memo: List[Tuple] = field(default_factory=list)


@dataclass
class Checkpoint:
    """A versioned snapshot of resumable evaluation state."""

    #: Fingerprint of (operation, expression, structure); resumes against
    #: anything else are rejected.
    query_key: str
    #: The engine operation that was suspended (diagnostics only).
    operation: str = ""
    #: Cascade stage the evaluation was suspended in ("" outside the
    #: robust cascade); the cascade re-enters this stage on resume.
    stage: str = ""
    #: Per-(structure, plan) executor state, keyed by content digest.
    exec_state: Dict[str, ExecRecord] = field(default_factory=dict)
    #: Completed parallel shard results: scope id -> {shard index: value}.
    shards: Dict[int, Dict[int, Any]] = field(default_factory=dict)
    #: Task count per shard scope (sanity check on resume).
    shard_counts: Dict[int, int] = field(default_factory=dict)
    #: Cumulative steps spent across all suspended quanta.
    steps_spent: int = 0
    #: How many times this evaluation has been suspended so far.
    suspensions: int = 0
    version: int = CHECKPOINT_VERSION

    def summary(self) -> str:
        strata = sum(len(r.strata) for r in self.exec_state.values())
        memo = sum(len(r.memo) for r in self.exec_state.values())
        shards = sum(len(s) for s in self.shards.values())
        head = self.operation or "evaluation"
        if self.stage:
            head += f" [stage {self.stage}]"
        return (
            f"{head}: {self.suspensions} suspension(s), "
            f"{self.steps_spent} steps spent, {strata} stratum(-a), "
            f"{memo} memo entr(y/ies), {shards} shard result(s)"
        )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe summary (counts, not contents) for reports."""
        return {
            "query_key": self.query_key,
            "operation": self.operation,
            "stage": self.stage,
            "version": self.version,
            "suspensions": self.suspensions,
            "steps_spent": self.steps_spent,
            "strata": sum(len(r.strata) for r in self.exec_state.values()),
            "memo_entries": sum(
                len(r.memo) for r in self.exec_state.values()
            ),
            "shard_results": sum(len(s) for s in self.shards.values()),
        }


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def structure_digest(structure) -> str:
    """A content digest of a structure: universe order plus every relation.

    Two structures share a digest iff they are extensionally identical
    (universe order included, because evaluation order — and therefore
    result ordering — follows it).
    """
    hasher = hashlib.sha256()
    hasher.update(repr(tuple(structure.universe_order)).encode())
    for symbol in sorted(structure.signature, key=lambda s: (s.name, s.arity)):
        tuples = sorted(structure.relation(symbol))
        hasher.update(f"|{symbol.name}/{symbol.arity}:{tuples!r}".encode())
    return hasher.hexdigest()


def fingerprint(operation: str, expression_text: str, structure) -> str:
    """The checkpoint's query fingerprint: what a resume must match."""
    hasher = hashlib.sha256()
    hasher.update(operation.encode())
    hasher.update(b"\x00")
    hasher.update(expression_text.encode())
    hasher.update(b"\x00")
    hasher.update(structure_digest(structure).encode())
    return hasher.hexdigest()


# ---------------------------------------------------------------------------
# Crash-consistent persistence
# ---------------------------------------------------------------------------


def save_checkpoint(checkpoint: Checkpoint, path) -> None:
    """Persist ``checkpoint`` to ``path`` atomically.

    Layout: one ASCII header line
    ``repro-ckpt v<version> sha256=<hex> bytes=<n>\\n`` followed by the
    pickled payload.  The payload is written to a sibling temp file and
    atomically renamed over ``path``, so a reader never observes a
    half-written checkpoint and a crash mid-save (the ``checkpoint.save``
    fault site fires between the temp write and the rename) leaves any
    previous checkpoint at ``path`` untouched.  A ``<path>.lock`` file
    taken with ``O_EXCL`` rejects concurrent saves with a typed
    :class:`~repro.errors.CheckpointError`.
    """
    path = os.fspath(path)
    payload = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).hexdigest()
    header = (
        f"{_MAGIC} v{checkpoint.version} sha256={digest} "
        f"bytes={len(payload)}\n"
    ).encode("ascii")

    lock_path = path + ".lock"
    try:
        lock_fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        raise CheckpointError(
            f"concurrent checkpoint save: lock file {lock_path!r} exists "
            "(another save is in progress, or a crashed save left it "
            "behind — remove it to proceed)"
        ) from None
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        try:
            with open(tmp_path, "wb") as handle:
                handle.write(header)
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            # The crash window under test: the temp file exists, the
            # target has not been replaced yet.
            fault_check("checkpoint.save")
            os.replace(tmp_path, path)
        except OSError as error:
            raise CheckpointError(
                f"cannot save checkpoint to {path!r}: {error}"
            ) from None
        finally:
            if os.path.exists(tmp_path):
                try:
                    os.remove(tmp_path)
                except OSError:
                    pass
    finally:
        os.close(lock_fd)
        try:
            os.remove(lock_path)
        except OSError:
            pass


def load_checkpoint(path) -> Checkpoint:
    """Load and verify a checkpoint; raise ``CheckpointError`` otherwise.

    Verification order: magic, format version, payload length, SHA-256
    integrity hash — only then is the payload unpickled.  Any failure
    raises a typed error and restores nothing.
    """
    path = os.fspath(path)
    fault_check("checkpoint.restore")
    try:
        with open(path, "rb") as handle:
            header = handle.readline()
            payload = handle.read()
    except OSError as error:
        raise CheckpointError(
            f"cannot read checkpoint {path!r}: {error}"
        ) from None
    try:
        text = header.decode("ascii").strip()
        magic, version_field, sha_field, bytes_field = text.split(" ")
        version = int(version_field.removeprefix("v"))
        expected_sha = sha_field.removeprefix("sha256=")
        expected_bytes = int(bytes_field.removeprefix("bytes="))
    except (UnicodeDecodeError, ValueError):
        raise CheckpointError(
            f"{path!r} is not a checkpoint file (malformed header)"
        ) from None
    if magic != _MAGIC:
        raise CheckpointError(
            f"{path!r} is not a checkpoint file (bad magic {magic!r})"
        )
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has format version {version}, this build "
            f"reads version {CHECKPOINT_VERSION}; re-run without --resume"
        )
    if len(payload) != expected_bytes:
        raise CheckpointError(
            f"checkpoint {path!r} is truncated or padded: header promises "
            f"{expected_bytes} payload bytes, found {len(payload)}"
        )
    actual_sha = hashlib.sha256(payload).hexdigest()
    if actual_sha != expected_sha:
        raise CheckpointError(
            f"checkpoint {path!r} failed integrity verification "
            f"(sha256 mismatch); refusing to restore"
        )
    try:
        checkpoint = pickle.loads(payload)
    except Exception as error:  # noqa: BLE001 — any unpickling failure
        raise CheckpointError(
            f"checkpoint {path!r} payload does not unpickle "
            f"({type(error).__name__}: {error})"
        ) from None
    if not isinstance(checkpoint, Checkpoint):
        raise CheckpointError(
            f"checkpoint {path!r} payload is a "
            f"{type(checkpoint).__name__}, not a Checkpoint"
        )
    return checkpoint


# ---------------------------------------------------------------------------
# The live session
# ---------------------------------------------------------------------------


class CheckpointSession:
    """The live recorder/restorer behind one preemptible evaluation run.

    One session spans one quantum: install it (via
    :func:`checkpoint_session`), run the evaluation under a preemptible
    budget, and on :class:`~repro.errors.SuspendedError` call
    :meth:`snapshot` to obtain the :class:`Checkpoint` for the next run,
    which is constructed with ``resume=`` that checkpoint.

    The session is consulted only from the thread that created it (the
    engines' worker threads deliberately bypass it — their progress is
    captured at shard granularity by the pool), so recording needs no
    locking beyond the pool's own deterministic, parent-side merge order.
    """

    def __init__(
        self,
        resume: "Optional[Checkpoint]" = None,
        operation: str = "",
        query_key: str = "",
    ):
        self.resume = resume
        self.operation = operation or (resume.operation if resume else "")
        self.query_key = query_key or (resume.query_key if resume else "")
        self.stage = resume.stage if resume else ""
        self._exec_state: Dict[str, ExecRecord] = (
            {key: record for key, record in resume.exec_state.items()}
            if resume
            else {}
        )
        self._shards: Dict[int, Dict[int, Any]] = (
            dict(resume.shards) if resume else {}
        )
        self._shard_counts: Dict[int, int] = (
            dict(resume.shard_counts) if resume else {}
        )
        self._scope_counter = itertools.count()
        self._steps_base = resume.steps_spent if resume else 0
        self._suspensions = resume.suspensions if resume else 0
        self._resume_stage_pending = bool(self.stage)
        self._thread = threading.get_ident()

    # -- thread scoping ------------------------------------------------------

    def on_owner_thread(self) -> bool:
        return threading.get_ident() == self._thread

    # -- executor state (strata + memos) -------------------------------------

    def exec_record(self, digest: str) -> ExecRecord:
        """The (created-on-demand) record for one (structure, plan) digest."""
        record = self._exec_state.get(digest)
        if record is None:
            record = ExecRecord()
            self._exec_state[digest] = record
        return record

    def record_stratum(self, digest: str, record: StratumRecord) -> None:
        self.exec_record(digest).strata[record.index] = record

    def resumed_strata(self, digest: str) -> Dict[int, StratumRecord]:
        existing = self._exec_state.get(digest)
        return existing.strata if existing is not None else {}

    def record_memo(self, digest: str, entries: List[Tuple]) -> None:
        """Replace the digest's memo snapshot (snapshots are cumulative:
        a later export contains every entry of an earlier one)."""
        record = self.exec_record(digest)
        if len(entries) >= len(record.memo):
            record.memo = list(entries)

    def resumed_memo(self, digest: str) -> List[Tuple]:
        existing = self._exec_state.get(digest)
        return existing.memo if existing is not None else []

    # -- parallel shard state -------------------------------------------------

    def next_shard_scope(self, count: int) -> int:
        """Claim the next deterministic fan-out scope for ``count`` tasks."""
        scope = next(self._scope_counter)
        recorded = self._shard_counts.get(scope)
        if recorded is not None and recorded != count:
            # The resumed run fanned out differently than the recorded one
            # (should not happen for deterministic evaluations); drop the
            # stale results rather than merge wrong values.
            self._shards.pop(scope, None)
        self._shard_counts[scope] = count
        return scope

    def resumed_shards(self, scope: int) -> Dict[int, Any]:
        return self._shards.get(scope, {})

    def record_shard(self, scope: int, index: int, value: Any) -> None:
        self._shards.setdefault(scope, {})[index] = value

    # -- cascade stage --------------------------------------------------------

    def record_stage(self, stage: str) -> None:
        self.stage = stage

    def consume_resume_stage(self) -> str:
        """The stage to re-enter on resume, yielded at most once."""
        if not self._resume_stage_pending:
            return ""
        self._resume_stage_pending = False
        return self.stage

    # -- snapshots ------------------------------------------------------------

    @property
    def steps_base(self) -> int:
        """Steps spent in *previous* quanta (the resumed ledger)."""
        return self._steps_base

    def snapshot(self, steps_this_run: int = 0) -> Checkpoint:
        """Freeze the session into a :class:`Checkpoint`.

        ``steps_this_run`` is the suspended quantum's own step count; the
        checkpoint's ledger adds it to the steps carried over from earlier
        quanta.
        """
        self._suspensions += 1
        return Checkpoint(
            query_key=self.query_key,
            operation=self.operation,
            stage=self.stage,
            exec_state={
                key: ExecRecord(dict(rec.strata), list(rec.memo))
                for key, rec in self._exec_state.items()
            },
            shards={k: dict(v) for k, v in self._shards.items()},
            shard_counts=dict(self._shard_counts),
            steps_spent=self._steps_base + steps_this_run,
            suspensions=self._suspensions,
        )


# The installed session is *thread-local*: a multi-tenant server (see
# repro.serve) runs one preemptible quantum per executor thread, each
# under its own session, and those recorders must not see each other.
# Engine worker threads spawned *inside* a quantum still bypass the
# session — they find no thread-local entry, exactly as they previously
# failed the ``on_owner_thread()`` check against a process-global slot —
# so shard-granularity recording by the owning pool is unchanged.
_ACTIVE = threading.local()


def active_checkpoint_session() -> "Optional[CheckpointSession]":
    """The calling thread's installed session, if any."""
    return getattr(_ACTIVE, "session", None)


@contextmanager
def checkpoint_session(session: CheckpointSession) -> Iterator[CheckpointSession]:
    """Install ``session`` on this thread for the ``with`` block.

    Sessions do not nest (per thread): two overlapping recorders would
    interleave their scope counters and corrupt both checkpoints.
    Distinct threads may each run their own session concurrently — that
    is how the :mod:`repro.serve` scheduler preempts many queries at
    once.
    """
    if getattr(_ACTIVE, "session", None) is not None:
        raise RuntimeError("a CheckpointSession is already active")
    _ACTIVE.session = session
    try:
        yield session
    finally:
        _ACTIVE.session = None
