"""Per-shard retry policies for the parallel evaluation paths.

PR 4 made the Section 8.2 main algorithm and the cover evaluators fan out
per-cluster shards across a :class:`~repro.parallel.WorkerPool`; before
this module existed, one failed shard aborted the entire evaluation and
forced :class:`~repro.robust.guard.RobustEvaluator` to re-run the *whole*
query in a slower cascade stage.  A :class:`RetryPolicy` makes the far
cheaper response possible: re-run **only the failed shard**, a bounded
number of times, with deterministic seeded exponential backoff.

Scope and determinism
---------------------
The policy is **per shard, not per pool**: every shard gets its own
``retries`` attempts, and the backoff delay for shard ``s``'s attempt
``a`` is a pure function of ``(seed, s, a)`` — no shared random state, so
the same schedule falls out of every run, every thread interleaving and
every backend.  (The derivation seeds ``random.Random`` with a *string*,
which hashes deterministically across processes; tuple seeds would go
through ``hash()`` and break under ``PYTHONHASHSEED`` randomisation.)

What retries
------------
Only failures that are plausibly transient: by default the library's
typed :class:`~repro.errors.ReproError` family **minus**
:class:`~repro.errors.BudgetExceededError` — a shard that exhausted its
budget slice will exhaust a fresh identical slice too, and retrying it
would silently double-charge the parent.  Genuine programming errors
(``TypeError`` &c.) never retry.

Sleeping is injectable (``sleep=``) so tests can assert the exact delay
sequence without waiting; the default ``base_delay`` is 0, which makes
retries immediate — production callers opt into real backoff.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Tuple

from ..errors import BudgetExceededError, ReproError, SuspendedError

__all__ = ["RetryPolicy"]


class RetryPolicy:
    """Bounded per-shard retries with seeded exponential backoff + jitter.

    Parameters
    ----------
    retries:
        Maximum number of *re*-attempts per shard after its first run
        (``0`` disables retrying while keeping the bookkeeping — useful to
        measure the machinery's overhead).
    base_delay:
        Delay in seconds before the first retry.  Each further retry
        multiplies it by ``multiplier``, capped at ``max_delay``.  The
        default 0.0 makes retries immediate.
    multiplier:
        Exponential backoff factor (>= 1).
    max_delay:
        Upper bound on any single delay, jitter included.
    jitter:
        Fraction of the delay added as deterministic pseudo-random noise
        in ``[0, jitter]`` — decorrelates shards that failed together
        without sacrificing reproducibility.
    seed:
        Seed for the jitter derivation.
    retry_on:
        Exception types eligible for retry.
    no_retry:
        Exception types never retried even when matched by ``retry_on``
        (default: :class:`BudgetExceededError` and
        :class:`~repro.errors.SuspendedError` — a suspension is not a
        failure, it is the quantum boundary of a preemptible run; see the
        module docstring).
    sleep:
        The sleep hook (default :func:`time.sleep`); tests inject a
        recorder here.
    """

    __slots__ = (
        "retries",
        "base_delay",
        "multiplier",
        "max_delay",
        "jitter",
        "seed",
        "retry_on",
        "no_retry",
        "sleep",
    )

    def __init__(
        self,
        retries: int = 2,
        base_delay: float = 0.0,
        multiplier: float = 2.0,
        max_delay: float = 1.0,
        jitter: float = 0.1,
        seed: int = 0,
        retry_on: Tuple[type, ...] = (ReproError,),
        no_retry: Tuple[type, ...] = (BudgetExceededError, SuspendedError),
        sleep: "Callable[[float], None]" = time.sleep,
    ):
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        if multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.retries = retries
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed
        self.retry_on = tuple(retry_on)
        self.no_retry = tuple(no_retry)
        self.sleep = sleep

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether a shard whose attempt number ``attempt`` (1-based) just
        failed with ``error`` deserves another run."""
        if attempt > self.retries:
            return False
        if isinstance(error, self.no_retry):
            return False
        return isinstance(error, self.retry_on)

    def delay(self, shard: int, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based) of ``shard``.

        Deterministic: a pure function of ``(seed, shard, attempt)``.
        """
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        if self.base_delay == 0.0:
            return 0.0
        raw = min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )
        if self.jitter:
            draw = random.Random(
                f"{self.seed}:{shard}:{attempt}"
            ).random()
            raw *= 1.0 + self.jitter * draw
        return min(raw, self.max_delay)

    def pause(self, shard: int, attempt: int) -> float:
        """Sleep the computed :meth:`delay` (via the hook); returns it."""
        seconds = self.delay(shard, attempt)
        if seconds > 0:
            self.sleep(seconds)
        return seconds

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(retries={self.retries}, base_delay={self.base_delay}, "
            f"multiplier={self.multiplier}, max_delay={self.max_delay}, "
            f"jitter={self.jitter}, seed={self.seed})"
        )
