"""Deterministic fault injection for the robustness machinery.

The fallback cascade of :class:`~repro.robust.guard.RobustEvaluator` claims
to survive failures of its inner stages.  That claim is only testable if
failures can be *produced on demand*, deterministically, at the exact spots
where the real algorithms can go wrong.  This module provides that:

* a fixed registry of named **fault sites** — the instrumented spots in the
  production code (cover construction, removal surgery, memo inserts, the
  numerical-predicate oracle);
* a :class:`FaultInjector` that arms faults at chosen sites, either at an
  exact hit number (fully deterministic) or at a seeded random rate
  (deterministic given the seed);
* :func:`inject_faults`, a context manager installing an injector globally,
  and :func:`fault_check`, the near-free checkpoint the production code
  calls (a single ``is None`` test when no injector is installed).

Armed faults raise :class:`~repro.errors.FaultInjectedError`; they fire
*once* per (site, hit) so a fallback stage that retries the same machinery
is not re-broken — which is exactly how the cascade tests prove graceful
degradation rather than permanent corruption, and how per-shard retries
prove recovery: a retried shard registers a *new* hit number, so the same
armed fault cannot strike it twice.

Concurrency and determinism
---------------------------
The parallel layer checks faults from worker threads, so all counter
updates happen under a lock — hits are never lost to races.  Rate-mode
draws are a pure function of ``(seed, site, hit)`` (seeded with a *string*,
which hashes deterministically across processes): whether hit N of a site
faults does not depend on thread interleaving or on draws at other sites,
so the same seed produces the same fault schedule under ``workers=1``, the
thread backend and the process backend alike.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional

from ..errors import FaultInjectedError

__all__ = [
    "FAULT_SITES",
    "PARALLEL_FAULT_SITES",
    "FaultInjector",
    "fault_check",
    "inject_faults",
    "active_injector",
]

#: The registered fault sites.  Every ``fault_check(site)`` call in the
#: production code uses one of these names; injectors reject unknown names
#: so tests cannot silently arm a site that no longer exists.
FAULT_SITES = (
    "cover.construct",
    "removal.surgery",
    "memo.insert",
    "predicate.oracle",
    "worker.task",
    "worker.join",
    "shard.result",
    "checkpoint.save",
    "checkpoint.restore",
)

#: The parallel-layer sites, checked by :class:`~repro.parallel.WorkerPool`
#: once per shard *in the parent* — at submission (``worker.task``), when a
#: shard's outcome is collected (``worker.join``) and when its result is
#: accepted into the merge (``shard.result``).  Parent-side checking keeps
#: hit numbering deterministic and identical across thread and process
#: backends (process children would otherwise each start a fresh counter).
PARALLEL_FAULT_SITES = ("worker.task", "worker.join", "shard.result")


class FaultInjector:
    """A seeded, site-named fault plan plus its hit counters.

    Parameters
    ----------
    sites:
        Mapping ``site -> hit number`` (1-based): the fault fires exactly
        when that site is checked for the N-th time, once.
    rate:
        Additional probability of firing at *any* armed-by-rate check.
        ``rate_sites`` restricts which sites participate (default: all
        registered sites).  Each draw is seeded by ``(seed, site, hit)``,
        so a fixed seed gives a fixed fault schedule independent of thread
        interleaving and of draws at other sites.
    limit:
        Maximum number of rate-based faults to fire (``None`` = unlimited).

    All counter updates are lock-protected: injectors are safe to share
    across the worker threads of a :class:`~repro.parallel.WorkerPool`.
    """

    def __init__(
        self,
        sites: "Optional[Mapping[str, int]]" = None,
        *,
        seed: int = 0,
        rate: float = 0.0,
        rate_sites: "Optional[tuple]" = None,
        limit: "Optional[int]" = None,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.sites: Dict[str, int] = dict(sites or {})
        for site, hit in self.sites.items():
            if site not in FAULT_SITES:
                raise ValueError(
                    f"unknown fault site {site!r}; registered sites: "
                    f"{', '.join(FAULT_SITES)}"
                )
            if hit < 1:
                raise ValueError(f"hit numbers are 1-based, got {hit} for {site!r}")
        self.rate = rate
        self.rate_sites = tuple(rate_sites) if rate_sites is not None else FAULT_SITES
        for site in self.rate_sites:
            if site not in FAULT_SITES:
                raise ValueError(f"unknown fault site {site!r}")
        self.limit = limit
        self.seed = seed
        self.hits: Dict[str, int] = {site: 0 for site in FAULT_SITES}
        self.fired: Dict[str, int] = {site: 0 for site in FAULT_SITES}
        self._lock = threading.Lock()

    def check(self, site: str) -> None:
        """Register one hit of ``site``; raise if a fault is armed for it."""
        with self._lock:
            count = self.hits.get(site)
            if count is None:
                raise ValueError(
                    f"fault_check called with unregistered site {site!r}"
                )
            count += 1
            self.hits[site] = count
            fire = self.sites.get(site) == count
            if (
                not fire
                and self.rate > 0.0
                and site in self.rate_sites
                and (self.limit is None or sum(self.fired.values()) < self.limit)
                and random.Random(f"{self.seed}:{site}:{count}").random()
                < self.rate
            ):
                fire = True
            if fire:
                self.fired[site] += 1
        if fire:
            raise FaultInjectedError(site, count)

    def total_fired(self) -> int:
        with self._lock:
            return sum(self.fired.values())

    def __repr__(self) -> str:
        return (
            f"FaultInjector(sites={self.sites!r}, seed={self.seed}, "
            f"rate={self.rate}, fired={self.total_fired()})"
        )


_ACTIVE: "Optional[FaultInjector]" = None


def fault_check(site: str) -> None:
    """Cooperative fault checkpoint — a no-op unless an injector is active."""
    if _ACTIVE is not None:
        _ACTIVE.check(site)


def active_injector() -> "Optional[FaultInjector]":
    """The currently installed injector, if any."""
    return _ACTIVE


@contextmanager
def inject_faults(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` for the duration of the ``with`` block.

    Injectors do not nest: installing a second one raises, because two
    overlapping fault schedules have no well-defined semantics.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a FaultInjector is already active")
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = None
