"""Theorem 4.3: a polynomial fpt-reduction from FO model checking on all
graphs to FOC({P=}) model checking on *strings* over the alphabet {a, b, c}.

For a graph G with vertex set [n], vertex i with neighbours {j1, ..., jm}
becomes the substring

    s_i = a c^i b c^{j1} b c^{j2} ... b c^{jm}

and ``S_G`` is the concatenation s_1 s_2 ... s_n.  Vertices correspond to
``a``-positions; the c-run directly after an ``a`` spells the vertex index
in unary, and each ``b c^j`` inside the block spells one neighbour index.

The sentence translation mirrors Theorem 4.1: relativise quantifiers to
``a``-positions, and replace ``E(x, x')`` by "the block of x contains a b
whose c-run has the same length as the c-run of x'":

    psi_E(x, x') = exists y ( P_b(y) ∧ same_block(x, y) ∧
                              P=( run(y), run(x') ) )

where ``run(p) = #z.(P_c(z) ∧ p < z ∧ forall w (p < w <= z -> P_c(w)))``
counts the c-run immediately after position p.  Again P= is applied to
terms with two joint free variables — FOC({P=}) but not FOC1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import FormulaError
from ..logic.builder import count
from ..logic.syntax import (
    And,
    Atom,
    Bottom,
    CountTerm,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    PredicateAtom,
    Top,
    free_variables,
)
from ..logic.transform import relativize
from ..structures.builders import string_structure
from ..structures.structure import Structure


def _leq(u: str, v: str) -> Formula:
    return Atom("leq", (u, v))


def _lt(u: str, v: str) -> Formula:
    return And(_leq(u, v), Not(Eq(u, v)))


def is_a(x: str) -> Formula:
    return Atom("P_a", (x,))


def is_b(x: str) -> Formula:
    return Atom("P_b", (x,))


def is_c(x: str) -> Formula:
    return Atom("P_c", (x,))


def run_term(position: str, suffix: str) -> CountTerm:
    """``run(position)``: length of the maximal c-run right after the
    position.  Bound variables are suffixed for capture-freedom."""
    z = f"_rz{suffix}"
    w = f"_rw{suffix}"
    all_c_between = Forall(
        w, Implies(And(_lt(position, w), _leq(w, z)), is_c(w))
    )
    return count([z], And(is_c(z), And(_lt(position, z), all_c_between)))


def same_block(x: str, y: str, suffix: str) -> Formula:
    """Position y lies in the block started by the a-position x: x < y and
    no a-position strictly between them (inclusive of y)."""
    w = f"_bw{suffix}"
    return And(
        _lt(x, y),
        Not(Exists(w, And(is_a(w), And(_lt(x, w), _leq(w, y))))),
    )


def psi_edge(x: str, x_prime: str, suffix: str = "") -> Formula:
    """``psi_E(x, x')`` over strings (see module docstring)."""
    y = f"_sy{suffix}"
    return Exists(
        y,
        And(
            And(is_b(y), same_block(x, y, suffix)),
            PredicateAtom("eq", (run_term(y, f"{suffix}a"), run_term(x_prime, f"{suffix}b"))),
        ),
    )


@dataclass(frozen=True)
class StringReduction:
    """The output of the Theorem 4.3 reduction for one graph."""

    string: Structure
    word: str
    #: graph vertex -> its a-position (1-based) in the word
    vertex_map: Dict[object, int]

    def translate(self, sentence: Formula) -> Formula:
        return translate_sentence(sentence)


def build_string(graph: Structure) -> StringReduction:
    """Construct ``S_G`` (quadratic in ||G||)."""
    if "E" not in graph.signature or graph.signature["E"].arity != 2:
        raise FormulaError("the reduction expects a graph over {E/2}")
    vertices = list(graph.universe_order)
    index = {v: i + 1 for i, v in enumerate(vertices)}
    neighbours: Dict[object, List[int]] = {v: [] for v in vertices}
    for u, v in graph.relation("E"):
        if u != v:
            neighbours[u].append(index[v])

    pieces: List[str] = []
    vertex_map: Dict[object, int] = {}
    position = 0
    for v in vertices:
        i = index[v]
        block = "a" + "c" * i
        for j in sorted(set(neighbours[v])):
            block += "b" + "c" * j
        vertex_map[v] = position + 1
        position += len(block)
        pieces.append(block)
    word = "".join(pieces)
    return StringReduction(
        string_structure(word, alphabet="abc"), word, vertex_map
    )


def translate_sentence(sentence: Formula) -> Formula:
    """``phi -> phi-hat`` over the string signature."""
    if free_variables(sentence):
        raise FormulaError("the reduction translates sentences")
    counter = itertools.count()

    def mark_edges(formula: Formula) -> Formula:
        if isinstance(formula, Atom):
            if formula.relation != "E" or len(formula.args) != 2:
                raise FormulaError("input must be a sentence over {E/2}")
            return Atom("E__graph", formula.args)
        if isinstance(formula, (Eq, Top, Bottom)):
            return formula
        if isinstance(formula, Not):
            return Not(mark_edges(formula.inner))
        if isinstance(formula, Or):
            return Or(mark_edges(formula.left), mark_edges(formula.right))
        if isinstance(formula, And):
            return And(mark_edges(formula.left), mark_edges(formula.right))
        if isinstance(formula, Implies):
            return Implies(mark_edges(formula.left), mark_edges(formula.right))
        if isinstance(formula, Iff):
            return Iff(mark_edges(formula.left), mark_edges(formula.right))
        if isinstance(formula, Exists):
            return Exists(formula.variable, mark_edges(formula.inner))
        if isinstance(formula, Forall):
            return Forall(formula.variable, mark_edges(formula.inner))
        raise FormulaError(
            f"the reduction expects an FO sentence; found {type(formula).__name__}"
        )

    def replace_edges(formula: Formula) -> Formula:
        if isinstance(formula, Atom):
            if formula.relation == "E__graph":
                return psi_edge(formula.args[0], formula.args[1], str(next(counter)))
            return formula
        if isinstance(formula, (Eq, Top, Bottom)):
            return formula
        if isinstance(formula, Not):
            return Not(replace_edges(formula.inner))
        if isinstance(formula, Or):
            return Or(replace_edges(formula.left), replace_edges(formula.right))
        if isinstance(formula, And):
            return And(replace_edges(formula.left), replace_edges(formula.right))
        if isinstance(formula, Implies):
            return Implies(replace_edges(formula.left), replace_edges(formula.right))
        if isinstance(formula, Iff):
            return Iff(replace_edges(formula.left), replace_edges(formula.right))
        if isinstance(formula, Exists):
            return Exists(formula.variable, replace_edges(formula.inner))
        if isinstance(formula, Forall):
            return Forall(formula.variable, replace_edges(formula.inner))
        raise FormulaError(f"unexpected node {type(formula).__name__}")

    marked = mark_edges(sentence)
    guarded = relativize(marked, is_a, relativize_counts=False)
    return replace_edges(guarded)


def reduce_instance(graph: Structure, sentence: Formula) -> Tuple[Structure, Formula]:
    """The full reduction: ``(G, phi) -> (S_G, phi-hat)``."""
    reduction = build_string(graph)
    return reduction.string, reduction.translate(sentence)
