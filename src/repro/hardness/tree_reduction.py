"""Theorem 4.1: a polynomial fpt-reduction from FO model checking on all
graphs to FOC({P=}) model checking on *trees*.

Given a graph G with vertex set [n] and an FO sentence phi over {E/2}, we
build a tree ``T_G`` of height 3 and an FOC({P=}) sentence ``phi-hat`` with
``G |= phi  iff  T_G |= phi-hat``.

Gadget (verbatim from the paper):

* a root ``r`` adjacent to one ``a(i)`` per vertex i;
* each ``a(i)`` carries i+1 pendant paths ``a(i) - b_j(i) - c_j(i)``
  (j in [i+1]), so vertex i is identifiable as "the a-vertex with exactly
  i+1 b-neighbours";
* for each neighbour j of i, a child ``d(i,j)`` of ``a(i)`` with j+1 leaf
  children ``e_k(i,j)`` — the adjacency list written in unary.

The sentence rewriting relativises quantifiers to a-vertices and replaces
each atom ``E(x, x')`` by

    psi_E(x, x') = exists y ( E(x,y) ∧
        P=( #z.(E(y,z) ∧ psi_e(z)),  #z.(E(x',z) ∧ psi_b(z)) ) )

— "x has a d-child whose e-count equals the b-count of x'".  Note psi_E
applies P= to terms with joint free variables {y, x'}, so phi-hat lies in
FOC({P=}) but *outside* FOC1: the reduction is exactly why the paper must
restrict the fragment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import FormulaError
from ..logic.builder import Rel, count
from ..logic.syntax import (
    And,
    Atom,
    Bottom,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    PredicateAtom,
    Top,
    free_variables,
)
from ..logic.transform import relativize
from ..structures.builders import graph_structure
from ..structures.structure import Structure

E = Rel("E", 2)


def _degree_exactly_one(x: str, y: str, z: str) -> Formula:
    """deg(x) = 1, with helper variables y, z."""
    has_neighbour = Exists(y, E(x, y))
    two_neighbours = Exists(
        y, Exists(z, And(And(E(x, y), E(x, z)), Not(Eq(y, z))))
    )
    return And(has_neighbour, Not(two_neighbours))


def _degree_exactly_two(x: str, y: str, z: str, w: str) -> Formula:
    """deg(x) = 2, with helper variables."""
    two = Exists(
        y, Exists(z, And(And(E(x, y), E(x, z)), Not(Eq(y, z))))
    )
    three = Exists(
        y,
        Exists(
            z,
            Exists(
                w,
                And(
                    And(And(E(x, y), E(x, z)), E(x, w)),
                    And(And(Not(Eq(y, z)), Not(Eq(y, w))), Not(Eq(z, w))),
                ),
            ),
        ),
    )
    return And(two, Not(three))


def psi_c(x: str) -> Formula:
    """c-vertices: degree 1 and the unique neighbour has degree 2."""
    return And(
        _degree_exactly_one(x, "_u1", "_u2"),
        Exists(
            "_v",
            And(E(x, "_v"), _degree_exactly_two("_v", "_w1", "_w2", "_w3")),
        ),
    )


def psi_b(x: str) -> Formula:
    """b-vertices: the neighbours of c-vertices."""
    return Exists("_cb", And(E(x, "_cb"), psi_c("_cb")))


def psi_a(x: str) -> Formula:
    """a-vertices: neighbours of b-vertices that are not themselves c-vertices."""
    return And(Exists("_ba", And(E(x, "_ba"), psi_b("_ba"))), Not(psi_c(x)))


def psi_e(x: str) -> Formula:
    """e-vertices: degree-1 vertices that are not c-vertices."""
    return And(_degree_exactly_one(x, "_u1", "_u2"), Not(psi_c(x)))


def psi_edge(x: str, x_prime: str, suffix: str = "") -> Formula:
    """``psi_E(x, x')`` — the FOC({P=}) edge encoding (see module docstring).

    ``suffix`` uniquifies the bound variables so nested replacements cannot
    capture each other.
    """
    y = f"_ey{suffix}"
    z1 = f"_ez{suffix}"
    z2 = f"_ew{suffix}"
    e_count = count([z1], And(E(y, z1), psi_e(z1)))
    b_count = count([z2], And(E(x_prime, z2), psi_b(z2)))
    return Exists(y, And(E(x, y), PredicateAtom("eq", (e_count, b_count))))


@dataclass(frozen=True)
class TreeReduction:
    """The output of the Theorem 4.1 reduction for one graph."""

    tree: Structure
    #: graph vertex -> its a-vertex in the tree
    vertex_map: Dict[object, Tuple]

    def translate(self, sentence: Formula) -> Formula:
        """``phi -> phi-hat``: relativise to a-vertices, encode E atoms."""
        return translate_sentence(sentence)


def build_tree(graph: Structure) -> TreeReduction:
    """Construct ``T_G`` (computable in quadratic time, height 3)."""
    if "E" not in graph.signature or graph.signature["E"].arity != 2:
        raise FormulaError("the reduction expects a graph over {E/2}")
    vertices = list(graph.universe_order)
    index = {v: i + 1 for i, v in enumerate(vertices)}
    edge_rel = graph.relation("E")
    neighbours: Dict[object, List[object]] = {v: [] for v in vertices}
    for u, v in edge_rel:
        if u != v:
            neighbours[u].append(v)

    tree_vertices: List[Tuple] = [("r",)]
    tree_edges: List[Tuple[Tuple, Tuple]] = []
    vertex_map: Dict[object, Tuple] = {}
    for v in vertices:
        i = index[v]
        a = ("a", i)
        vertex_map[v] = a
        tree_vertices.append(a)
        tree_edges.append((("r",), a))
        for j in range(1, i + 2):
            b = ("b", i, j)
            c = ("c", i, j)
            tree_vertices.extend([b, c])
            tree_edges.append((a, b))
            tree_edges.append((b, c))
        for w in sorted(set(neighbours[v]), key=lambda u: index[u]):
            j = index[w]
            d = ("d", i, j)
            tree_vertices.append(d)
            tree_edges.append((a, d))
            for k in range(1, j + 2):
                e = ("e", i, j, k)
                tree_vertices.append(e)
                tree_edges.append((d, e))
    return TreeReduction(
        graph_structure(tree_vertices, tree_edges), vertex_map
    )


def translate_sentence(sentence: Formula) -> Formula:
    """``phi-hat``: computable from phi in polynomial time."""
    if free_variables(sentence):
        raise FormulaError("the reduction translates sentences")
    counter = itertools.count()

    # Relativise phi's own quantifiers to a-vertices *before* substituting
    # psi_E, so the quantifiers inside psi_E / psi_a (which must range over
    # the whole tree) are left untouched.  Graph-level E atoms are marked
    # first so the relativisation guards (which mention tree-level E) are
    # not rewritten afterwards.
    def mark_edges(formula: Formula) -> Formula:
        if isinstance(formula, Atom):
            if formula.relation != "E":
                raise FormulaError("input must be a sentence over {E/2}")
            if len(formula.args) != 2:
                raise FormulaError("E must be binary")
            return Atom("E__graph", formula.args)
        if isinstance(formula, (Eq, Top, Bottom)):
            return formula
        if isinstance(formula, Not):
            return Not(mark_edges(formula.inner))
        if isinstance(formula, Or):
            return Or(mark_edges(formula.left), mark_edges(formula.right))
        if isinstance(formula, And):
            return And(mark_edges(formula.left), mark_edges(formula.right))
        if isinstance(formula, Implies):
            return Implies(mark_edges(formula.left), mark_edges(formula.right))
        if isinstance(formula, Iff):
            return Iff(mark_edges(formula.left), mark_edges(formula.right))
        if isinstance(formula, Exists):
            return Exists(formula.variable, mark_edges(formula.inner))
        if isinstance(formula, Forall):
            return Forall(formula.variable, mark_edges(formula.inner))
        raise FormulaError(
            f"the reduction expects an FO sentence; found {type(formula).__name__}"
        )

    def replace_edges(formula: Formula) -> Formula:
        if isinstance(formula, Atom):
            if formula.relation == "E__graph":
                return psi_edge(formula.args[0], formula.args[1], str(next(counter)))
            return formula
        if isinstance(formula, (Eq, Top, Bottom)):
            return formula
        if isinstance(formula, Not):
            return Not(replace_edges(formula.inner))
        if isinstance(formula, Or):
            return Or(replace_edges(formula.left), replace_edges(formula.right))
        if isinstance(formula, And):
            return And(replace_edges(formula.left), replace_edges(formula.right))
        if isinstance(formula, Implies):
            return Implies(replace_edges(formula.left), replace_edges(formula.right))
        if isinstance(formula, Iff):
            return Iff(replace_edges(formula.left), replace_edges(formula.right))
        if isinstance(formula, Exists):
            return Exists(formula.variable, replace_edges(formula.inner))
        if isinstance(formula, Forall):
            return Forall(formula.variable, replace_edges(formula.inner))
        raise FormulaError(
            f"the reduction expects an FO sentence; found {type(formula).__name__}"
        )

    marked = mark_edges(sentence)
    guarded = relativize(marked, psi_a, relativize_counts=False)
    return replace_edges(guarded)


def reduce_instance(graph: Structure, sentence: Formula) -> Tuple[Structure, Formula]:
    """The full reduction: ``(G, phi) -> (T_G, phi-hat)``."""
    reduction = build_tree(graph)
    return reduction.tree, reduction.translate(sentence)
