"""Section 4 hardness reductions: FO on graphs -> FOC({P=}) on trees and
strings.  The constructive content of Theorems 4.1 and 4.3 — and the reason
FOC(P) must be restricted to FOC1(P) for tractability."""

from .tree_reduction import (
    TreeReduction,
    build_tree,
    psi_a,
    psi_b,
    psi_c,
    psi_e,
    psi_edge,
)
from .tree_reduction import reduce_instance as reduce_to_tree
from .tree_reduction import translate_sentence as translate_for_tree
from .string_reduction import (
    StringReduction,
    build_string,
    is_a,
    is_b,
    is_c,
    run_term,
    same_block,
)
from .string_reduction import reduce_instance as reduce_to_string
from .string_reduction import translate_sentence as translate_for_string

__all__ = [name for name in dir() if not name.startswith("_")]
