"""Shim so `pip install -e .` works without the wheel package installed."""
from setuptools import setup

setup()
