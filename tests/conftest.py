"""Shared fixtures and hypothesis strategies for the test suite.

The central strategies generate (a) small random structures over a graph or
coloured-graph signature and (b) random FO / FOC1(P) expressions, so the
optimized engines can be differential-tested against the literal
Definition 3.1 semantics.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.logic.syntax import (
    And,
    Atom,
    CountTerm,
    Eq,
    Exists,
    Forall,
    Not,
    Or,
    PredicateAtom,
)
from repro.structures.builders import graph_structure
from repro.structures.structure import Structure

VARS = ("x", "y", "z", "w")


# ---------------------------------------------------------------------------
# Structures
# ---------------------------------------------------------------------------


@st.composite
def small_graphs(draw, min_vertices: int = 1, max_vertices: int = 7, directed: bool = False):
    """Random small graph structures over {E/2}."""
    n = draw(st.integers(min_vertices, max_vertices))
    vertices = list(range(1, n + 1))
    pairs = [
        (u, v)
        for u in vertices
        for v in vertices
        if (u < v if not directed else u != v)
    ]
    edges = draw(
        st.lists(st.sampled_from(pairs), max_size=len(pairs), unique=True)
        if pairs
        else st.just([])
    )
    return graph_structure(vertices, edges, symmetric=not directed)


@pytest.fixture
def path5() -> Structure:
    from repro.structures.builders import path_graph

    return path_graph(5)


@pytest.fixture
def triangle() -> Structure:
    return graph_structure([1, 2, 3], [(1, 2), (2, 3), (3, 1)])


@pytest.fixture
def sparse20() -> Structure:
    from repro.sparse.classes import sparse_random_graph

    return sparse_random_graph(20, 2.0, seed=42)


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


def _atoms():
    variable = st.sampled_from(VARS)
    return st.one_of(
        st.builds(lambda a, b: Eq(a, b), variable, variable),
        st.builds(lambda a, b: Atom("E", (a, b)), variable, variable),
    )


@st.composite
def fo_formulas(draw, max_depth: int = 3):
    """Random FO formulas over {E/2} with variables from VARS."""
    if max_depth == 0:
        return draw(_atoms())
    choice = draw(st.integers(0, 5))
    if choice == 0:
        return draw(_atoms())
    if choice == 1:
        return Not(draw(fo_formulas(max_depth=max_depth - 1)))
    if choice == 2:
        return Or(
            draw(fo_formulas(max_depth=max_depth - 1)),
            draw(fo_formulas(max_depth=max_depth - 1)),
        )
    if choice == 3:
        return And(
            draw(fo_formulas(max_depth=max_depth - 1)),
            draw(fo_formulas(max_depth=max_depth - 1)),
        )
    if choice == 4:
        return Exists(
            draw(st.sampled_from(VARS)), draw(fo_formulas(max_depth=max_depth - 1))
        )
    return Forall(
        draw(st.sampled_from(VARS)), draw(fo_formulas(max_depth=max_depth - 1))
    )


@st.composite
def foc1_formulas(draw, max_depth: int = 2):
    """Random FOC1(P) formulas over {E/2}: FO connectives plus numerical
    predicate atoms applied to counting terms with at most one joint free
    variable (rule 4')."""
    if max_depth == 0:
        return draw(_atoms())
    choice = draw(st.integers(0, 6))
    if choice == 0:
        return draw(_atoms())
    if choice == 1:
        return Not(draw(foc1_formulas(max_depth=max_depth - 1)))
    if choice == 2:
        return Or(
            draw(foc1_formulas(max_depth=max_depth - 1)),
            draw(foc1_formulas(max_depth=max_depth - 1)),
        )
    if choice == 3:
        return And(
            draw(foc1_formulas(max_depth=max_depth - 1)),
            draw(foc1_formulas(max_depth=max_depth - 1)),
        )
    if choice == 4:
        return Exists(
            draw(st.sampled_from(VARS)), draw(foc1_formulas(max_depth=max_depth - 1))
        )
    if choice == 5:
        return Forall(
            draw(st.sampled_from(VARS)), draw(foc1_formulas(max_depth=max_depth - 1))
        )
    return draw(foc1_predicate_atoms(max_depth=max_depth - 1))


@st.composite
def foc1_counting_terms(draw, free_variable: str, max_depth: int = 1):
    """Counting terms whose free variables are within {free_variable}."""
    others = [v for v in VARS if v != free_variable]
    bound = draw(st.lists(st.sampled_from(others), min_size=1, max_size=2, unique=True))
    body = draw(foc1_formulas(max_depth=max_depth))
    # Restrict the body's free variables to bound + the free variable by
    # existentially closing everything else.
    from repro.logic.syntax import exists_block, free_variables

    stray = sorted(free_variables(body) - set(bound) - {free_variable})
    body = exists_block(stray, body)
    return CountTerm(tuple(bound), body)


@st.composite
def foc1_predicate_atoms(draw, max_depth: int = 1):
    """Predicate atoms obeying rule (4')."""
    free_variable = draw(st.sampled_from(VARS))
    predicate = draw(st.sampled_from(["geq1", "eq", "leq", "even", "prime"]))
    arity = {"geq1": 1, "eq": 2, "leq": 2, "even": 1, "prime": 1}[predicate]
    terms = []
    for _ in range(arity):
        kind = draw(st.integers(0, 2))
        if kind == 0:
            from repro.logic.syntax import IntTerm

            terms.append(IntTerm(draw(st.integers(-3, 5))))
        else:
            terms.append(
                draw(foc1_counting_terms(free_variable, max_depth=max_depth))
            )
    return PredicateAtom(predicate, tuple(terms))


# ---------------------------------------------------------------------------
# Evaluators
# ---------------------------------------------------------------------------


@pytest.fixture
def fast_evaluator():
    from repro.core.evaluator import Foc1Evaluator

    return Foc1Evaluator()


@pytest.fixture
def brute_evaluator():
    from repro.core.baseline import BruteForceEvaluator

    return BruteForceEvaluator()
